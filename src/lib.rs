//! # footprint-suite
//!
//! Umbrella crate for the reproduction of *"Footprint: Regulating Routing
//! Adaptiveness in Networks-on-Chip"* (Fu & Kim, ISCA 2017).
//!
//! Re-exports the public API of the member crates so that examples and
//! integration tests can use a single dependency:
//!
//! * [`topology`] — 2D mesh geometry.
//! * [`routing`] — DOR / Odd-Even / DBAR / Footprint / XORDET, the
//!   adaptiveness metrics and the cost model.
//! * [`sim`] — the cycle-accurate NoC simulator.
//! * [`traffic`] — synthetic traffic patterns, hotspot and trace workloads.
//! * [`stats`] — measurement, saturation search and congestion analysis.
//! * [`core`](mod@core) — the high-level builder API tying it all together.
//!
//! The blessed surface for applications is [`prelude`]: one import line
//! gives the builder, the execution options and the report types.
//!
//! # Quickstart
//!
//! ```
//! use footprint_suite::prelude::*;
//!
//! let report = SimulationBuilder::mesh(4)
//!     .vcs(4)
//!     .routing(RoutingSpec::Footprint)
//!     .traffic(TrafficSpec::UniformRandom)
//!     .injection_rate(0.1)
//!     .warmup(500)
//!     .measurement(1000)
//!     .seed(7)
//!     .run_with(RunOptions::new())
//!     .expect("valid configuration");
//! assert!(report.latency.mean() > 0.0);
//! ```

#![warn(missing_docs)]

pub use footprint_core as core;
pub use footprint_routing as routing;
pub use footprint_sim as sim;
pub use footprint_stats as stats;
pub use footprint_topology as topology;
pub use footprint_traffic as traffic;

/// The blessed import surface: everything a typical experiment needs.
///
/// ```
/// use footprint_suite::prelude::*;
///
/// let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(0), Direction::East, 0));
/// let report = SimulationBuilder::mesh(4)
///     .vcs(4)
///     .warmup(100)
///     .measurement(200)
///     .run_with(RunOptions::new().faults(plan))?;
/// assert!(report.latency.ejected_packets > 0);
/// # Ok::<(), RunError>(())
/// ```
///
/// Anything deeper (router internals, probes beyond the re-exported ones,
/// analysis helpers) stays behind the member-crate paths
/// ([`crate::sim`], [`crate::stats`], …).
pub mod prelude {
    pub use footprint_core::{
        ClassSummary, ConfigError, FaultStats, NullProbe, Probe, PartitionReport, RecoveryStats,
        RoutingSpec, RunError, RunOptions, RunReport, Scheduler, SimulationBuilder,
        StallDiagnostic, SweepOptions, TenantSpec, TenantSummary, TrafficSpec, UnreachablePolicy,
    };
    pub use footprint_topology::{
        Direction, FaultEvent, FaultKind, FaultPlan, Mesh, NodeId, Ring, TopologySpec, Torus,
    };
    pub use footprint_traffic::{App, DurationDist, ModulationSpec, PacketSize};
}
