//! # footprint-suite
//!
//! Umbrella crate for the reproduction of *"Footprint: Regulating Routing
//! Adaptiveness in Networks-on-Chip"* (Fu & Kim, ISCA 2017).
//!
//! Re-exports the public API of the member crates so that examples and
//! integration tests can use a single dependency:
//!
//! * [`topology`] — 2D mesh geometry.
//! * [`routing`] — DOR / Odd-Even / DBAR / Footprint / XORDET, the
//!   adaptiveness metrics and the cost model.
//! * [`sim`] — the cycle-accurate NoC simulator.
//! * [`traffic`] — synthetic traffic patterns, hotspot and trace workloads.
//! * [`stats`] — measurement, saturation search and congestion analysis.
//! * [`core`](mod@core) — the high-level builder API tying it all together.
//!
//! # Quickstart
//!
//! ```
//! use footprint_suite::core::{SimulationBuilder, RoutingSpec, TrafficSpec};
//!
//! let report = SimulationBuilder::mesh(4)
//!     .vcs(4)
//!     .routing(RoutingSpec::Footprint)
//!     .traffic(TrafficSpec::UniformRandom)
//!     .injection_rate(0.1)
//!     .warmup(500)
//!     .measurement(1000)
//!     .seed(7)
//!     .run()
//!     .expect("valid configuration");
//! assert!(report.latency.mean() > 0.0);
//! ```

#![warn(missing_docs)]

pub use footprint_core as core;
pub use footprint_routing as routing;
pub use footprint_sim as sim;
pub use footprint_stats as stats;
pub use footprint_topology as topology;
pub use footprint_traffic as traffic;
