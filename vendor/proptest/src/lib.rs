//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of proptest that its property tests
//! actually use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`prop_oneof!`],
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `boxed`, [`strategy::Just`], integer/float range strategies and
//!   tuple strategies,
//! * [`arbitrary::any`] (`any::<bool>()` and friends),
//! * [`collection::vec`] (exposed as `prop::collection::vec`).
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the generated inputs' assertion message but is not minimized),
//! and case generation is deterministic per test function (keyed on the
//! test name and case index) rather than OS-entropy seeded. Both are
//! acceptable for regression testing; determinism is arguably an
//! improvement for CI.

pub mod test_runner {
    //! Test execution: configuration, case errors and the deterministic
    //! RNG that drives generation.

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    /// Deterministic splitmix64-based RNG used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        /// Deterministic across runs and platforms.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy simply generates a value from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// returns for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives; built by
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`. Must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs >= 1 option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` — `any::<bool>()` etc.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! impl_any_via {
        ($t:ty, $rng:ident => $gen:expr) => {
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        };
    }

    impl_any_via!(bool, rng => rng.next_u64() & 1 == 1);
    impl_any_via!(u8, rng => rng.next_u64() as u8);
    impl_any_via!(u16, rng => rng.next_u64() as u16);
    impl_any_via!(u32, rng => rng.next_u64() as u32);
    impl_any_via!(u64, rng => rng.next_u64());
    impl_any_via!(usize, rng => rng.next_u64() as usize);
    impl_any_via!(i32, rng => rng.next_u64() as i32);
    impl_any_via!(i64, rng => rng.next_u64() as i64);
    impl_any_via!(f64, rng => rng.next_f64());
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` whose length is drawn from `size` and
    /// whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works like in real
/// proptest.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn` inside becomes a `#[test]` that
/// generates inputs from the given strategies and runs the body once per
/// case; `prop_assume!` rejections are retried, `prop_assert*!` failures
/// panic with the assertion message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __max_attempts: u64 = (__config.cases as u64) * 20 + 100;
            let mut __accepted: u64 = 0;
            let mut __attempt: u64 = 0;
            while __accepted < __config.cases as u64 && __attempt < __max_attempts {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __attempt);
                __attempt += 1;
                $(
                    let $arg_pat =
                        $crate::strategy::Strategy::generate(&($arg_strat), &mut __rng);
                )+
                let __result = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __result {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest case {} of `{}` failed: {}",
                            __accepted,
                            stringify!($name),
                            __msg
                        );
                    }
                }
            }
            assert!(
                __accepted > 0,
                "proptest `{}`: every generated case was rejected",
                stringify!($name)
            );
        }
    )*};
}

/// Uniform choice among the listed strategies (all must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Skips the current case (retrying with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Like `assert!` but fails the property test with the generated case's
/// message instead of panicking inline.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` but fails the property test instead of panicking
/// inline.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = ($a, $b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}`",
                    __a, __b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = ($a, $b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    __a, __b, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Like `assert_ne!` but fails the property test instead of panicking
/// inline.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = ($a, $b);
        if __a == __b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{:?} != {:?}`",
                    __a, __b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = ($a, $b);
        if __a == __b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{:?} != {:?}`: {}",
                    __a, __b, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for case in 0..200u64 {
            let mut rng2 = crate::test_runner::TestRng::for_case("t", case);
            let (a, b) = (1u16..=16, 0usize..5).generate(&mut rng2);
            assert!((1..=16).contains(&a));
            assert!(b < 5);
            let v = prop::collection::vec(0u32..10, 2..4).generate(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for case in 0..64 {
            let mut rng = crate::test_runner::TestRng::for_case("oneof", case);
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn flat_map_sees_inner_value() {
        let s = (2u16..=2).prop_flat_map(|n| (Just(n), 0u16..2));
        let mut rng = crate::test_runner::TestRng::for_case("fm", 1);
        let (n, x) = s.generate(&mut rng);
        assert_eq!(n, 2);
        assert!(x < 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u32..100, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 13);
            if flag {
                prop_assert_eq!(x, x, "identity must hold for {}", x);
            }
        }
    }
}
