//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `rand`'s API that it actually
//! uses:
//!
//! * [`RngCore`] — object-safe core trait (`next_u32` / `next_u64` /
//!   `fill_bytes`);
//! * [`SeedableRng`] — with the `seed_from_u64` convenience constructor;
//! * [`Rng`] — blanket extension trait providing `gen_bool` and
//!   `gen_range` over integer and float ranges;
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic PRNG
//!   (xoshiro256++, the same family the real `rand 0.8` uses for
//!   `SmallRng` on 64-bit targets).
//!
//! Determinism is the only contract the simulator relies on: a given
//! seed must always produce the same stream. Statistical quality is
//! provided by xoshiro256++ which passes BigCrush.

/// The core of a random number generator: uniformly random words.
///
/// Object safe — the routing crate takes `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64
    /// (matching the convention of `rand 0.8`: a weak seed is stretched
    /// into full-width state so nearby seeds give unrelated streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the splitmix64 sequence; used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2^-64 per draw, far below
/// anything a simulation statistic can observe, and it keeps the draw
/// to exactly one `next_u64` so streams are easy to reason about).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        unit_f64(self) < p
    }

    /// Draws one value uniformly from `range`.
    #[inline]
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast PRNG: xoshiro256++ (Blackman & Vigna). The same
    /// algorithm family `rand 0.8` uses for `SmallRng` on 64-bit
    /// platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// The full internal xoshiro256++ state, for exact checkpointing.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured with
        /// [`SmallRng::state`]. The all-zero state (a fixed point of
        /// xoshiro, never produced by a live generator) is remapped the
        /// same way `from_seed` remaps it.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return SmallRng {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0xBF58_476D_1CE4_E5B9,
                        0x94D0_49BB_1331_11EB,
                        0x2545_F491_4F6C_DD1D,
                    ],
                };
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro;
                // remap it to an arbitrary non-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let w: u16 = rng.gen_range(3u16..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_roughly_matches_p() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
