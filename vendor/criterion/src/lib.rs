//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the API subset its benches use: `Criterion`,
//! `benchmark_group` with `throughput` / `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over `sample_size` samples of adaptively-sized batches; the mean
//! time per iteration is printed (with throughput when configured).
//! There is no statistical analysis, outlier detection, or HTML
//! reporting — this is a timing harness, not a statistics package.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures; passed to benchmark functions.
pub struct Bencher {
    /// Mean wall-clock time per iteration of the last `iter` call.
    mean_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one iteration, continuing until ~20ms have
        // elapsed (so cheap closures get a JIT-free cost estimate while
        // expensive ones aren't run more than once here).
        let warmup_budget = Duration::from_millis(20);
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= warmup_budget || warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Measurement: `sample_size` samples, each batch sized so one
        // sample takes roughly 5ms (min 1 iteration), capped so the
        // whole benchmark stays in the ~0.5s range.
        let batch = ((5_000_000.0 / est_ns).ceil() as u64).clamp(1, 1_000_000);
        let samples = self.sample_size.max(1);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t0.elapsed();
            iters += batch;
            if total > Duration::from_millis(500) {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean_ns: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, b.mean_ns);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            mean_ns: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, b.mean_ns);
        self
    }

    fn report(&self, id: &BenchmarkId, mean_ns: f64) {
        let mut line = format!("{}/{}: {}/iter", self.name, id.id, human_time(mean_ns));
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 / (mean_ns * 1e-9);
                line.push_str(&format!("  ({per_sec:.3e} elem/s)"));
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 / (mean_ns * 1e-9);
                line.push_str(&format!("  ({per_sec:.3e} B/s)"));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(BenchmarkId::from(""), f);
        g.finish();
        self
    }

    /// CLI-argument hook (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_reports_without_panicking() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("vendor-smoke");
        g.throughput(Throughput::Elements(4)).sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter("sum"), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
        assert!(human_time(2_000_000_000.0).ends_with('s'));
    }
}
