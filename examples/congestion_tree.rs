//! Congestion-tree anatomy: build the paper's Figure 2 scenario, let the
//! tree grow, and dissect it destination by destination.
//!
//! ```bash
//! cargo run --release --example congestion_tree
//! ```

use footprint_suite::prelude::*;
use footprint_suite::stats::TreeAnalysis;

fn main() -> Result<(), RunError> {
    println!("Congestion-tree anatomy — Figure 2 flows on a 4x4 mesh, 4 VCs\n");
    for spec in [RoutingSpec::Dor, RoutingSpec::Footprint] {
        let (mut net, mut wl) = SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(spec)
            .traffic(TrafficSpec::Figure2)
            .injection_rate(1.0)
            .seed(2)
            .build()?;
        net.run(&mut *wl, 600);
        let analysis = TreeAnalysis::from_snapshot(&net.occupancy_snapshot());
        println!("== {} ==", spec.name());
        println!(
            "{:<6} {:>6} {:>6} {:>10} {:>7}",
            "dest", "links", "VCs", "thickness", "flits"
        );
        for tree in analysis.trees_by_size() {
            println!(
                "{:<6} {:>6} {:>6} {:>10.2} {:>7}",
                tree.dest.to_string(),
                tree.links,
                tree.vcs,
                tree.thickness(),
                tree.flits
            );
        }
        println!(
            "total occupied VCs: {} across {} destination trees\n",
            analysis.occupied_vcs,
            analysis.tree_count()
        );
    }
    println!("n13 is the oversubscribed endpoint: its tree dominates. Compare how");
    println!("many links and VCs each algorithm lets that tree occupy.");
    Ok(())
}
