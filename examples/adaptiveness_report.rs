//! Two-level adaptiveness report (§3.1): quantify each routing algorithm's
//! port adaptiveness (path diversity) and VC adaptiveness on any mesh.
//!
//! ```bash
//! cargo run --release --example adaptiveness_report -- 8
//! ```
//!
//! The optional argument is the mesh radix (default 8).

use footprint_suite::routing::adaptiveness::{
    mean_path_adaptiveness, path_adaptiveness, vc_adaptiveness,
};
use footprint_suite::prelude::{Mesh, NodeId, RoutingSpec};

fn main() {
    let k: u16 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let mesh = Mesh::square(k);
    let num_vcs = 10;
    println!("Two-level adaptiveness on the {mesh} with {num_vcs} VCs\n");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12}",
        "algorithm", "mean P_adapt", "corner-corner", "VC_adapt", "VC_adapt esc"
    );
    let corner_a = NodeId(0);
    let corner_b = NodeId((mesh.len() - 1) as u16);
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
        RoutingSpec::DorXordet,
    ] {
        let algo = spec.build();
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "N/A".to_string(),
        };
        println!(
            "{:<16} {:>12.4} {:>14.6} {:>12} {:>12}",
            spec.name(),
            mean_path_adaptiveness(mesh, &*algo),
            path_adaptiveness(mesh, &*algo, corner_a, corner_b),
            fmt(vc_adaptiveness(&*algo, num_vcs, false)),
            fmt(vc_adaptiveness(&*algo, num_vcs, true)),
        );
    }
    println!("\nmean P_adapt: allowed minimal paths / all minimal paths, averaged over");
    println!("all source-destination pairs. corner-corner: the single hardest pair —");
    println!("deterministic routing allows one of C(2(k-1), k-1) paths.");
}
