//! Trace replay: drive the network from an explicit event trace — the
//! mechanism used for the PARSEC-like workloads of Figure 10 — and verify
//! loss-free, in-order delivery.
//!
//! ```bash
//! cargo run --release --example trace_replay
//! ```

use footprint_suite::prelude::*;
use footprint_suite::sim::{Network, NoTraffic, SimConfig};
use footprint_suite::traffic::{TraceEvent, TraceWorkload};

fn main() -> Result<(), ConfigError> {
    // A small synthetic trace: a burst of requests from the left column to
    // the right column, followed by replies.
    let mut events = Vec::new();
    for t in 0..200u64 {
        for row in 0..4u16 {
            if t % 3 == 0 {
                events.push(TraceEvent {
                    cycle: t,
                    src: NodeId(row * 4),
                    dest: NodeId(row * 4 + 3),
                    size: 3, // request with payload
                    class: 0,
                });
            }
            if t % 5 == 0 && t > 10 {
                events.push(TraceEvent {
                    cycle: t,
                    src: NodeId(row * 4 + 3),
                    dest: NodeId(row * 4),
                    size: 1, // short reply
                    class: 1,
                });
            }
        }
    }
    events.sort_by_key(|e| e.cycle);
    let total = events.len();

    let cfg = SimConfig::small();
    let mut net = Network::new(cfg, RoutingSpec::Footprint.build(), 99)?;
    let mut trace = TraceWorkload::new(cfg.topo().len(), events);
    net.run(&mut trace, 400);
    net.run(&mut NoTraffic, 200); // drain

    let m = net.metrics().total();
    println!("Trace replay on {} — Footprint routing", cfg.topology);
    println!("  events injected : {total}");
    println!("  packets ejected : {}", m.ejected_packets);
    println!("  flits ejected   : {}", m.ejected_flits);
    println!("  mean latency    : {:.1} cycles", m.mean_latency());
    println!("  network drained : {}", net.is_quiescent());
    assert_eq!(m.ejected_packets, total as u64, "loss-free delivery");
    assert!(net.is_quiescent(), "no stuck flits");
    println!("\nEvery trace packet was delivered and the network drained cleanly.");
    Ok(())
}
