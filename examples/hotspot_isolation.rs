//! Hotspot isolation: the paper's headline scenario (§4.2.5, Figure 9).
//!
//! Four endpoints are oversubscribed by eight persistent flows (Table 3)
//! while every other node sends light uniform background traffic. A good
//! routing algorithm keeps the hotspot congestion tree from strangling the
//! background traffic. Run it:
//!
//! ```bash
//! cargo run --release --example hotspot_isolation
//! ```

use footprint_suite::prelude::*;
use footprint_suite::traffic::{BACKGROUND_CLASS, HOTSPOT_CLASS};

fn main() -> Result<(), RunError> {
    println!("Hotspot isolation — Table 3 flows at 0.5 flits/cycle, background 0.3\n");
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "algorithm", "bg latency", "bg throughput", "hs throughput"
    );
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::DorXordet,
        RoutingSpec::Dor,
    ] {
        let report = SimulationBuilder::paper_default()
            .routing(spec)
            .traffic(TrafficSpec::PAPER_HOTSPOT)
            .injection_rate(0.5) // hotspot flow rate
            .warmup(2_000)
            .measurement(4_000)
            .seed(7)
            .run_with(RunOptions::new())?;
        let bg = report.class(BACKGROUND_CLASS);
        let hs = report.class(HOTSPOT_CLASS);
        println!(
            "{:<12} {:>12.1} {:>14.3} {:>14.3}",
            spec.name(),
            bg.mean_latency,
            bg.throughput,
            hs.throughput,
        );
    }
    println!("\nFootprint regulates the hotspot flows onto footprint VCs, so the");
    println!("background traffic keeps flowing where fully adaptive routing lets the");
    println!("congestion tree spread across every VC (tree saturation + HoL blocking).");
    Ok(())
}
