//! Tail latency under hotspot interference: mean latency hides what HoL
//! blocking does to the distribution. This example attaches a histogram
//! probe and compares p50/p95/p99 background latency between Footprint and
//! fully adaptive routing, plus the physical-link load balance.
//!
//! ```bash
//! cargo run --release --example tail_latency
//! ```

use footprint_suite::prelude::*;
use footprint_suite::stats::{load_balance, LatencyHistogramProbe};
use footprint_suite::traffic::BACKGROUND_CLASS;

fn main() -> Result<(), RunError> {
    println!("Background tail latency under hotspot traffic (hotspot 0.45, bg 0.3)\n");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "algorithm", "p50", "p95", "p99", "max", "imbalance"
    );
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
        let mut probe = LatencyHistogramProbe::new(25, 400); // 10k-cycle range for deep congestion
        let builder = SimulationBuilder::paper_default()
            .routing(spec)
            .traffic(TrafficSpec::PAPER_HOTSPOT)
            .injection_rate(0.45)
            .warmup(2_000)
            .measurement(6_000)
            .seed(0x7A11);
        // Use build() to keep the network around for channel loads.
        let (mut net, mut wl) = builder.build()?;
        net.run(&mut *wl, 2_000);
        net.metrics_mut().reset_window();
        net.run_probed(&mut *wl, 6_000, &mut probe);
        let q = |p: f64| {
            probe
                .quantile(BACKGROUND_CLASS, p)
                .map_or("n/a".into(), |v| v.to_string())
        };
        let max = probe
            .stats(BACKGROUND_CLASS)
            .and_then(|s| s.max())
            .unwrap_or(0);
        let lb = load_balance(&net.channel_loads()).expect("network has channels");
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>12.2}",
            spec.name(),
            q(0.50),
            q(0.95),
            q(0.99),
            max,
            lb.imbalance,
        );
    }
    println!("\np99 is where HoL blocking lives: the mean can look acceptable while");
    println!("a fully adaptive algorithm starves a tail of background packets behind");
    println!("the hotspot congestion tree.");
    Ok(())
}
