//! Quickstart: simulate Footprint routing on the paper's baseline network
//! and print a latency/throughput report.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use footprint_suite::prelude::*;

fn main() -> Result<(), RunError> {
    // The paper's Table 2 baseline: 8x8 mesh, 10 VCs, wormhole + credits,
    // single-flit packets. We offer 0.30 flits/node/cycle of transpose
    // traffic and compare the four main routing algorithms.
    println!("Footprint quickstart — 8x8 mesh, 10 VCs, transpose @ 0.30\n");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12}",
        "algorithm", "latency", "throughput", "max lat", "VA blocks"
    );
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
    ] {
        let report = SimulationBuilder::paper_default()
            .routing(spec)
            .traffic(TrafficSpec::Transpose)
            .injection_rate(0.30)
            .warmup(2_000)
            .measurement(4_000)
            .seed(42)
            .run_with(RunOptions::new())?;
        println!(
            "{:<12} {:>10.1} {:>12.3} {:>10} {:>12}",
            spec.name(),
            report.latency.mean_latency,
            report.latency.throughput,
            report.latency.max_latency,
            report.va_blocks,
        );
    }
    println!("\nAdaptive algorithms beat DOR on transpose; Footprint matches full");
    println!("adaptivity while regulating VC usage (fewer, purer blocking events).");
    Ok(())
}
