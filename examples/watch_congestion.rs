//! Watch a congestion tree form in real time: ASCII occupancy maps of the
//! mesh plus the tree-growth timeline while the Figure 9 hotspot workload
//! saturates its endpoints.
//!
//! ```bash
//! cargo run --release --example watch_congestion
//! cargo run --release --example watch_congestion -- dbar   # compare
//! ```

use footprint_suite::prelude::*;
use footprint_suite::stats::TreeTimeline;

fn main() -> Result<(), RunError> {
    let spec: RoutingSpec = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("unknown routing algorithm"))
        .unwrap_or(RoutingSpec::Footprint);
    println!("Hotspot onset under {} (hotspot 0.6, background 0.3)\n", spec.name());

    let (mut net, mut wl) = SimulationBuilder::paper_default()
        .routing(spec)
        .traffic(TrafficSpec::PAPER_HOTSPOT)
        .injection_rate(0.6)
        .seed(0xCAFE)
        .build()?;
    // n63 is one of the four oversubscribed endpoints (Table 3).
    let mut timeline = TreeTimeline::new(NodeId(63));
    for stage in 0..6 {
        net.run(&mut *wl, 400);
        timeline.record(net.cycle(), &net.occupancy_snapshot());
        println!("{}", net.occupancy_map());
        let s = timeline.samples()[stage];
        println!(
            "n63 tree: {} links, {} VCs, {} buffered flits\n",
            s.links, s.vcs, s.flits
        );
    }
    println!(
        "tree peak {} VCs, growth {:.1} VCs/kcycle — try `-- dbar` to watch the",
        timeline.peak_vcs(),
        timeline.growth_rate()
    );
    println!("fully adaptive baseline spread the same congestion across the mesh.");
    Ok(())
}
