//! Profiling driver: the perf harness's single-thread configuration at
//! several run lengths, separating per-run setup cost (network + workload
//! construction) from steady-state cycles/sec. Not a paper figure.

use footprint_core::{RoutingSpec, RunOptions, SimulationBuilder, TrafficSpec};
use std::time::Instant;

fn main() {
    for total in [4_000u64, 8_000, 20_000] {
        let b = SimulationBuilder::paper_default()
            .routing(RoutingSpec::Footprint)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.30)
            .warmup(1_000)
            .measurement(total - 1_000)
            .seed(0xBE_5C);
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t = Instant::now();
            b.run_with(RunOptions::new()).expect("static experiment config");
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!("{total} cycles in {best:.3}s = {:.0} cycles/sec", total as f64 / best);
    }
    // Construction alone.
    let b = SimulationBuilder::paper_default()
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.30);
    let t = Instant::now();
    for _ in 0..20 {
        let (net, wl) = b.build().expect("static experiment config");
        std::hint::black_box((net, wl));
    }
    println!("build() alone: {:.4}s each", t.elapsed().as_secs_f64() / 20.0);
}
