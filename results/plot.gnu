# gnuplot helper: latency-throughput curves from a figN.txt block.
# The experiment binaries emit gnuplot-friendly `offered accepted latency`
# rows per algorithm; extract one block into a .dat file and:
#
#   gnuplot -e "file='footprint.dat'" results/plot.gnu
#
set terminal dumb size 100,30
set xlabel "offered load (flits/node/cycle)"
set ylabel "latency (cycles)"
set yrange [0:300]
plot file using 1:3 with linespoints title file
