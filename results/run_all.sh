#!/bin/sh
# Regenerates every paper table/figure (plus the ablation study).
# Full quality takes ~40-60 min on a laptop core; set FOOTPRINT_QUICK=1
# for a ~5-minute smoke pass of the heavy figures.
set -e
cd "$(dirname "$0")/.."
cargo build --release -p footprint-bench
for exp in table1 table2 table3 cost fig2 fig9 fig5 fig6 fig7 fig10 fig8 ablation fault_sweep; do
  echo "=== $exp ==="
  ./target/release/"$exp" > "results/$exp.txt" 2>&1
  echo "    -> results/$exp.txt"
done
