//! Golden fingerprints of `RunReport`s captured on the pre-SoA
//! (object-of-arrays) datapath.
//!
//! The struct-of-arrays restructuring of the flit/credit datapath is a pure
//! layout change: every run must produce **byte-equal** reports to the
//! object-per-router implementation it replaced. These fingerprints were
//! recorded from the last object-layout build (PR 5); any divergence means
//! the SoA walk changed simulation semantics, not just memory layout.
//!
//! The fingerprint is an FNV-1a hash over the `Debug` rendering of the
//! full `RunReport` (which prints every counter and every f64 with
//! shortest-roundtrip precision), so a single flipped latency sample or
//! purity term shows up as a mismatch.

use footprint_core::{
    PacketSize, RoutingSpec, RunOptions, Scheduler, SimulationBuilder, SweepOptions, TrafficSpec,
};
use footprint_topology::{Direction, FaultEvent, FaultPlan, NodeId};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash a report's Debug rendering against the pinned capture. Report
/// fields added *after* the object-layout capture (and always empty in
/// these single-workload configurations) are erased from the rendering
/// first, so the goldens keep pinning the simulation datapath rather
/// than the report struct's shape:
///
/// * `tenants` (0.7.0) — per-tenant summaries, empty without
///   `SimulationBuilder::tenants`.
/// * `topology` (0.8.0) — the fabric's display name; all goldens ran on
///   the 4×4 / 8×8 meshes the captures were taken on.
/// * `partitions` / `recovery` (0.9.0) — resilience observations,
///   appended at the end of the struct; pure observation, so erasing the
///   rendering suffix restores the 0.8.0 shape byte for byte even for
///   the faulted goldens.
fn golden_hash(debug: &str) -> u64 {
    let stripped = match debug.find(", partitions: ") {
        Some(i) => format!("{} }}", &debug[..i]),
        None => debug.to_string(),
    };
    fnv1a(
        stripped
            .replace(", tenants: []", "")
            .replace(", topology: \"mesh:4x4\"", "")
            .replace(", topology: \"mesh:8x8\"", "")
            .as_bytes(),
    )
}

fn base() -> SimulationBuilder {
    SimulationBuilder::mesh(4)
        .vcs(4)
        .warmup(200)
        .measurement(400)
        .seed(3)
        .injection_rate(0.15)
        .drain(500)
}

fn repair_plan() -> FaultPlan {
    FaultPlan::new()
        .with(FaultEvent::link_down(NodeId(5), Direction::East, 100).repaired_at(250))
}

/// The pinned matrix: (label, fingerprint) per configuration. Captured
/// once on the object-layout build; never regenerate these from a build
/// you are trying to validate.
const GOLDEN: &[(&str, u64)] = &[
    ("footprint", 0xca246d83340da0ec),
    ("footprint+faults", 0x4bd7a34c1716ffbc),
    ("dbar", 0xaa74bb175f6c8571),
    ("dbar+faults", 0xdbb1acb63a17c3a0),
    ("odd-even", 0x25fb0374dc0bdc36),
    ("odd-even+faults", 0x33d6af9a7ef2e545),
    ("dor", 0xa8f5ab1569213023),
    ("dor+faults", 0xde34b7163223f55c),
    ("footprint-multiflit", 0x96585ae002c7c9a0),
    ("paper-8x8-footprint", 0x320b98dd76d27652),
    ("sweep-2pt", 0x454646bffddf8b78),
];

fn fingerprint(spec: RoutingSpec, faults: Option<FaultPlan>, scheduler: Scheduler) -> u64 {
    let mut o = RunOptions::new().scheduler(scheduler).watchdog(10_000);
    if let Some(p) = faults {
        o = o.faults(p);
    }
    let report = base().routing(spec).run_with(o).expect("golden run");
    golden_hash(&format!("{report:?}"))
}

#[test]
fn reports_match_object_layout_goldens() {
    let discover = std::env::var("FOOTPRINT_GOLDEN_PRINT").is_ok();
    let mut got: Vec<(String, u64)> = Vec::new();
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
    ] {
        for faults in [None, Some(repair_plan())] {
            let label = if faults.is_some() {
                format!("{}+faults", spec.name())
            } else {
                spec.name().to_string()
            };
            // Both schedulers must agree with the recorded value, so the
            // golden table stores one fingerprint per configuration.
            let dense = fingerprint(spec, faults.clone(), Scheduler::Dense);
            let active = fingerprint(spec, faults, Scheduler::Active);
            assert_eq!(dense, active, "{label}: dense vs active diverged");
            got.push((label, dense));
        }
    }
    // Multi-flit packets exercise body/tail streaming, joins and drains.
    let multi = base()
        .routing(RoutingSpec::Footprint)
        .packet_size(PacketSize::Fixed(4))
        .injection_rate(0.05)
        .run_with(RunOptions::new().watchdog(10_000))
        .expect("multiflit run");
    got.push(("footprint-multiflit".into(), golden_hash(&format!("{multi:?}"))));
    // The paper's 8×8/10-VC configuration on a short window.
    let paper = SimulationBuilder::paper_default()
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.30)
        .warmup(100)
        .measurement(200)
        .seed(0xBE_5C)
        .run_with(RunOptions::new().watchdog(10_000))
        .expect("paper run");
    got.push(("paper-8x8-footprint".into(), golden_hash(&format!("{paper:?}"))));
    // A two-point sweep through the canonical sweep path (derived seeds).
    let curve = base()
        .routing(RoutingSpec::Footprint)
        .sweep_with(&[0.05, 0.15], SweepOptions::new().threads(1))
        .expect("sweep");
    got.push(("sweep-2pt".into(), golden_hash(&format!("{curve:?}"))));
    // The same sweep as a two-lane lockstep ensemble must reproduce the
    // object-layout golden bit for bit: lane-parallel execution is an
    // execution schedule, not a semantic change.
    let ensemble = base()
        .routing(RoutingSpec::Footprint)
        .sweep_with(&[0.05, 0.15], SweepOptions::new().threads(1).ensemble(2))
        .expect("ensemble sweep");
    assert_eq!(
        golden_hash(&format!("{ensemble:?}")),
        golden_hash(&format!("{curve:?}")),
        "ensemble sweep diverged from the sequential sweep"
    );

    if discover {
        for (label, h) in &got {
            println!("    (\"{label}\", {h:#018x}),");
        }
        return;
    }
    for (label, h) in &got {
        let expected = GOLDEN
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no golden for {label}"));
        assert_eq!(
            *h, expected.1,
            "{label}: report fingerprint diverged from the object-layout golden"
        );
    }
}
