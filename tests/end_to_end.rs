//! End-to-end integration tests: every routing algorithm delivers every
//! workload loss-free, deterministically, on multiple mesh sizes.

use footprint_suite::prelude::*;

const ALL_ALGOS: [RoutingSpec; 8] = [
    RoutingSpec::Footprint,
    RoutingSpec::Dbar,
    RoutingSpec::OddEven,
    RoutingSpec::Dor,
    RoutingSpec::DbarXordet,
    RoutingSpec::OddEvenXordet,
    RoutingSpec::DorXordet,
    RoutingSpec::RandomMinimal,
];

fn quick(k: u16) -> SimulationBuilder {
    SimulationBuilder::mesh(k)
        .vcs(4)
        .warmup(200)
        .measurement(600)
        .drain(800)
        .seed(0xE2E)
}

#[test]
fn every_algorithm_delivers_uniform_traffic_loss_free() {
    for spec in ALL_ALGOS {
        let r = quick(4)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.15)
            .run_with(RunOptions::new())
            .unwrap();
        assert!(
            r.latency.ejected_packets >= r.latency.generated_packets,
            "{}: {} generated vs {} ejected",
            spec.name(),
            r.latency.generated_packets,
            r.latency.ejected_packets
        );
        assert!(r.latency.generated_packets > 100, "{}", spec.name());
    }
}

#[test]
fn every_algorithm_handles_every_pattern() {
    let patterns = [
        TrafficSpec::UniformRandom,
        TrafficSpec::Transpose,
        TrafficSpec::Shuffle,
        TrafficSpec::BitComplement,
        TrafficSpec::BitReverse,
        TrafficSpec::Tornado,
    ];
    for spec in ALL_ALGOS {
        for traffic in patterns {
            let r = quick(4)
                .routing(spec)
                .traffic(traffic)
                .injection_rate(0.1)
                .run_with(RunOptions::new())
                .unwrap();
            assert!(
                r.latency.ejected_packets > 0,
                "{} x {}: nothing delivered",
                spec.name(),
                traffic
            );
            assert!(
                r.delivery_ratio() > 0.95,
                "{} x {}: delivery ratio {}",
                spec.name(),
                traffic,
                r.delivery_ratio()
            );
        }
    }
}

#[test]
fn extended_reference_algorithms_deliver() {
    // The reference extras beyond the paper's Table 2 set.
    for spec in [
        RoutingSpec::WestFirst,
        RoutingSpec::NorthLast,
        RoutingSpec::DorVoqSw,
        RoutingSpec::DbarVoqSw,
        RoutingSpec::OddEvenFootprint,
    ] {
        for traffic in [TrafficSpec::UniformRandom, TrafficSpec::Transpose] {
            let r = quick(4)
                .routing(spec)
                .traffic(traffic)
                .injection_rate(0.12)
                .run_with(RunOptions::new())
                .unwrap();
            assert!(
                r.delivery_ratio() > 0.95,
                "{} x {}: delivery {}",
                spec.name(),
                traffic,
                r.delivery_ratio()
            );
        }
    }
}

#[test]
fn turn_models_have_expected_asymmetry() {
    // West-first is deterministic westbound, adaptive eastbound — tornado
    // (all-eastward on rows) should route fine; a west-heavy permutation
    // degrades to DOR-like behavior but still delivers.
    let east = quick(4)
        .routing(RoutingSpec::WestFirst)
        .traffic(TrafficSpec::Tornado)
        .injection_rate(0.2)
        .run_with(RunOptions::new())
        .unwrap();
    assert!(east.delivery_ratio() > 0.95);
}

#[test]
fn runs_are_deterministic_per_seed() {
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar, RoutingSpec::OddEven] {
        let mk = || {
            quick(4)
                .routing(spec)
                .traffic(TrafficSpec::Shuffle)
                .injection_rate(0.3)
                .run_with(RunOptions::new())
                .unwrap()
        };
        assert_eq!(mk(), mk(), "{} not deterministic", spec.name());
    }
}

#[test]
fn different_seeds_differ() {
    let a = quick(4)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.2)
        .seed(1)
        .run_with(RunOptions::new())
        .unwrap();
    let b = quick(4)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.2)
        .seed(2)
        .run_with(RunOptions::new())
        .unwrap();
    assert_ne!(a, b);
}

#[test]
fn multi_flit_packets_deliver_on_all_algorithms() {
    for spec in ALL_ALGOS {
        let r = quick(4)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .packet_size(PacketSize::PAPER_VARIABLE)
            .injection_rate(0.2)
            .run_with(RunOptions::new())
            .unwrap();
        assert!(
            r.delivery_ratio() > 0.95,
            "{}: ratio {}",
            spec.name(),
            r.delivery_ratio()
        );
        // Mean flits per packet ≈ 3.5.
        let fpp = r.latency.ejected_flits as f64 / r.latency.ejected_packets as f64;
        assert!((2.5..=4.5).contains(&fpp), "{}: {fpp} flits/packet", spec.name());
    }
}

#[test]
fn larger_meshes_work() {
    for k in [2u16, 3, 8] {
        let r = quick(k)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.1)
            .run_with(RunOptions::new())
            .unwrap();
        assert!(r.latency.ejected_packets > 0, "{k}x{k}");
        assert_eq!(r.nodes, (k as usize).pow(2));
    }
}

#[test]
fn rectangular_mesh_works() {
    use footprint_suite::topology::Mesh;
    let r = SimulationBuilder::paper_default()
        .topology(Mesh::new(8, 2))
        .vcs(4)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.1)
        .warmup(200)
        .measurement(400)
        .drain(400)
        .seed(5)
        .run_with(RunOptions::new())
        .unwrap();
    assert!(r.delivery_ratio() > 0.95);
}

#[test]
fn latency_grows_with_load() {
    let low = quick(4)
        .traffic(TrafficSpec::Transpose)
        .injection_rate(0.05)
        .run_with(RunOptions::new())
        .unwrap();
    let high = quick(4)
        .traffic(TrafficSpec::Transpose)
        .injection_rate(0.35)
        .run_with(RunOptions::new())
        .unwrap();
    assert!(
        high.latency.mean_latency > low.latency.mean_latency,
        "{} !> {}",
        high.latency.mean_latency,
        low.latency.mean_latency
    );
}

#[test]
fn zero_load_latency_close_to_hop_count() {
    // A single source-destination pair at trivial load: latency should be
    // within a small factor of the hop count (pipelined router, ~4
    // cycles/hop + injection/ejection).
    let r = quick(4)
        .traffic(TrafficSpec::Figure2)
        .injection_rate(0.02)
        .run_with(RunOptions::new())
        .unwrap();
    assert!(
        r.latency.mean_latency < 40.0,
        "zero-load latency {} too high",
        r.latency.mean_latency
    );
    assert!(r.latency.mean_latency > 5.0);
}
