//! Topology-generalisation acceptance tests (0.8.0).
//!
//! The topology layer is a trait now, and torus/ring fabrics ride the same
//! datapath as the original mesh. These tests pin the structural properties
//! every fabric must satisfy (neighbor symmetry, hop-metric sanity, escape
//! CDG acyclicity) and then drive the paper's four algorithms end-to-end on
//! the new fabrics under the runtime sentinel — the same acceptance bar the
//! mesh clears in `deadlock_freedom.rs`.

use footprint_suite::prelude::*;
use footprint_suite::routing::cdg::ChannelDependencyGraph;
use footprint_suite::topology::{AnyTopology, DIRECTIONS};
use proptest::prelude::*;

/// Any fabric small enough for exhaustive node×node iteration in a test.
fn arb_topo() -> impl Strategy<Value = AnyTopology> {
    prop_oneof![
        (2u16..=6, 2u16..=6).prop_map(|(w, h)| Mesh::new(w, h).into()),
        (3u16..=6, 3u16..=6).prop_map(|(w, h)| Torus::new(w, h).into()),
        (3u16..=16).prop_map(|n| Ring::new(n).into()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Links are bidirectional on every fabric: if `d` leads from `n` to
    /// `m`, then `d.opposite()` leads from `m` back to `n`.
    #[test]
    fn neighbor_symmetry(topo in arb_topo()) {
        for n in topo.nodes() {
            for d in DIRECTIONS {
                if let Some(m) = topo.neighbor(n, d) {
                    prop_assert_eq!(
                        topo.neighbor(m, d.opposite()),
                        Some(n),
                        "{topo}: {n} --{d:?}--> {m} has no reverse link"
                    );
                }
            }
        }
    }

    /// The hop count is a metric: zero on the diagonal, symmetric, and
    /// obeying the triangle inequality through every relay node.
    #[test]
    fn hops_is_a_metric(topo in arb_topo(), seed in 0u64..1000) {
        // Exhaustive pairs are O(n²); sample the relay to keep n³ in check.
        let n = topo.len() as u64;
        let relay = NodeId((seed % n) as u16);
        for a in topo.nodes() {
            prop_assert_eq!(topo.hops(a, a), 0);
            for b in topo.nodes() {
                let ab = topo.hops(a, b);
                prop_assert_eq!(ab, topo.hops(b, a), "{topo}: asymmetric {a}->{b}");
                prop_assert!(
                    ab <= topo.hops(a, relay) + topo.hops(relay, b),
                    "{topo}: {a}->{b} violates triangle via {relay}"
                );
                if a != b {
                    prop_assert!(ab > 0, "{topo}: distinct {a},{b} at distance 0");
                }
            }
        }
    }

    /// Every minimal direction actually makes progress: stepping along it
    /// decreases the hop count by exactly one.
    #[test]
    fn minimal_dirs_descend_hops(topo in arb_topo()) {
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a == b {
                    continue;
                }
                let dirs = topo.minimal_dirs(a, b);
                let mut productive = 0;
                for d in [dirs.x, dirs.y].into_iter().flatten() {
                    let m = topo.neighbor(a, d).expect("minimal dir must have a link");
                    prop_assert_eq!(
                        topo.hops(m, b) + 1,
                        topo.hops(a, b),
                        "{topo}: minimal dir {d:?} from {a} toward {b} not descending"
                    );
                    productive += 1;
                }
                prop_assert!(productive > 0, "{topo}: no minimal dir from {a} to {b}");
            }
        }
    }

    /// The escape network's channel-dependency graph is acyclic on every
    /// fabric — the Duato base case the adaptive layers rest on. On wrapping
    /// fabrics this is exactly the dateline argument: DOR order plus the
    /// pre/post-dateline VC split must leave no dependency cycle.
    #[test]
    fn escape_cdg_is_acyclic(topo in arb_topo()) {
        let cdg = ChannelDependencyGraph::build_escape_classed(topo);
        prop_assert!(
            cdg.is_acyclic(),
            "{topo}: escape CDG has a cycle: {:?}",
            cdg.find_cycle()
        );
    }
}

/// Supported algorithms on wrapping fabrics (xordet/VOQ-SW collapse the
/// dateline freedom and stay mesh-only).
const WRAP_ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::Footprint,
    RoutingSpec::Dbar,
    RoutingSpec::OddEven,
    RoutingSpec::Dor,
];

fn accept(builder: SimulationBuilder, label: &str) {
    for spec in WRAP_ALGOS {
        let report = builder
            .clone()
            .routing(spec)
            .run_with(RunOptions::new().sentinel(true).watchdog(20_000))
            .unwrap_or_else(|e| panic!("{label}/{}: {e}", spec.name()));
        assert!(
            report.latency.ejected_packets > 0,
            "{label}/{}: nothing delivered",
            spec.name()
        );
        // Books close: with the drain phase every window-generated packet
        // ejects (warmup-born packets draining in can push ejected higher).
        assert!(
            report.latency.ejected_packets >= report.latency.generated_packets,
            "{label}/{}: {} generated vs {} ejected after drain",
            spec.name(),
            report.latency.generated_packets,
            report.latency.ejected_packets
        );
    }
}

/// All four paper algorithms complete a sentinel-audited run on a torus,
/// with the books closing exactly.
#[test]
fn torus_runs_all_algorithms_under_sentinel() {
    accept(
        SimulationBuilder::torus(4)
            .vcs(4)
            .warmup(200)
            .measurement(400)
            .drain(2_000)
            .injection_rate(0.10)
            .seed(7),
        "torus:4x4",
    );
}

/// Same acceptance bar on a ring.
#[test]
fn ring_runs_all_algorithms_under_sentinel() {
    accept(
        SimulationBuilder::ring(8)
            .vcs(4)
            .warmup(200)
            .measurement(400)
            .drain(2_000)
            .injection_rate(0.10)
            .seed(7),
        "ring:8",
    );
}

/// Dense and active-set schedulers stay bit-identical on a wrapping fabric
/// — the idle-skip optimisation must not interact with dateline classes.
#[test]
fn torus_schedulers_bit_identical() {
    let run = |s: Scheduler| {
        SimulationBuilder::torus(4)
            .vcs(4)
            .warmup(200)
            .measurement(400)
            .drain(1_000)
            .injection_rate(0.12)
            .seed(11)
            .routing(RoutingSpec::Footprint)
            .run_with(RunOptions::new().scheduler(s).watchdog(20_000))
            .expect("torus run")
    };
    let dense = format!("{:?}", run(Scheduler::Dense));
    let active = format!("{:?}", run(Scheduler::Active));
    assert_eq!(dense, active, "torus: dense vs active scheduler diverged");
}

/// Sweeps on a torus are bit-identical regardless of worker count
/// (per-point derived seeds, no cross-point state).
#[test]
fn torus_sweep_thread_count_invariant() {
    let sweep = |threads: usize| {
        SimulationBuilder::torus(4)
            .vcs(4)
            .warmup(150)
            .measurement(300)
            .drain(1_000)
            .seed(23)
            .routing(RoutingSpec::Footprint)
            .sweep_with(&[0.05, 0.15], SweepOptions::new().threads(threads))
            .expect("torus sweep")
    };
    assert_eq!(
        format!("{:?}", sweep(1)),
        format!("{:?}", sweep(4)),
        "torus sweep: 1-thread vs 4-thread results diverged"
    );
}

/// Reports carry the fabric identity in `TopologySpec` display form.
#[test]
fn reports_record_topology_identity() {
    let report = SimulationBuilder::torus(4)
        .vcs(4)
        .warmup(50)
        .measurement(100)
        .injection_rate(0.05)
        .run_with(RunOptions::new().watchdog(20_000))
        .expect("torus run");
    assert_eq!(report.topology, "torus:4x4");
    let report = SimulationBuilder::mesh(4)
        .warmup(50)
        .measurement(100)
        .injection_rate(0.05)
        .run_with(RunOptions::new().watchdog(20_000))
        .expect("mesh run");
    assert_eq!(report.topology, "mesh:4x4");
}
