//! Deadlock-freedom stress tests (§3.4).
//!
//! Deadlock cannot be proven by simulation, but these tests drive every
//! algorithm far past saturation with adversarial patterns and verify the
//! two observable consequences of deadlock freedom:
//!
//! 1. **Forward progress**: the network keeps ejecting flits in every
//!    window even when totally saturated.
//! 2. **Drainability**: once injection stops, the network empties
//!    completely — no cyclically-blocked flits remain.

use footprint_suite::prelude::*;
use footprint_suite::sim::NoTraffic;

const DUATO_ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::Footprint,
    RoutingSpec::Dbar,
    RoutingSpec::DbarXordet,
    RoutingSpec::RandomMinimal,
];

const NON_ESCAPE_ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::OddEven,
    RoutingSpec::Dor,
    RoutingSpec::OddEvenXordet,
    RoutingSpec::DorXordet,
];

fn stress(spec: RoutingSpec, traffic: TrafficSpec, vcs: usize, rate: f64, seed: u64) {
    let (mut net, mut wl) = SimulationBuilder::mesh(4)
        .vcs(vcs)
        .routing(spec)
        .traffic(traffic)
        .injection_rate(rate)
        .seed(seed)
        .build()
        .unwrap();
    // Saturate.
    net.run(&mut *wl, 800);
    // Forward progress under saturation: every window ejects something.
    for window in 0..6 {
        let before = net.metrics().total().ejected_flits;
        net.run(&mut *wl, 250);
        let after = net.metrics().total().ejected_flits;
        assert!(
            after > before,
            "{} x {} (V={vcs}, rate {rate}): no ejections in window {window}",
            spec.name(),
            traffic,
        );
    }
    // Drainability.
    let mut idle = NoTraffic;
    for _ in 0..40 {
        net.run(&mut idle, 250);
        if net.is_quiescent() {
            break;
        }
    }
    assert!(
        net.is_quiescent(),
        "{} x {} (V={vcs}, rate {rate}): network failed to drain",
        spec.name(),
        traffic,
    );
}

#[test]
fn duato_algorithms_survive_saturated_transpose() {
    for spec in DUATO_ALGOS {
        stress(spec, TrafficSpec::Transpose, 4, 0.9, 0xD1);
    }
}

#[test]
fn duato_algorithms_survive_saturated_shuffle() {
    for spec in DUATO_ALGOS {
        stress(spec, TrafficSpec::Shuffle, 4, 0.9, 0xD2);
    }
}

#[test]
fn turn_model_algorithms_survive_saturated_transpose() {
    for spec in NON_ESCAPE_ALGOS {
        stress(spec, TrafficSpec::Transpose, 4, 0.9, 0xD3);
    }
}

#[test]
fn turn_model_algorithms_survive_saturated_tornado() {
    for spec in NON_ESCAPE_ALGOS {
        stress(spec, TrafficSpec::Tornado, 4, 0.9, 0xD4);
    }
}

#[test]
fn minimum_vc_configurations_are_live() {
    // Duato-based algorithms need exactly 2 VCs (escape + 1 adaptive);
    // turn-model algorithms work with a single VC.
    for spec in DUATO_ALGOS {
        stress(spec, TrafficSpec::Transpose, 2, 0.8, 0xD5);
    }
    for spec in NON_ESCAPE_ALGOS {
        stress(spec, TrafficSpec::Transpose, 1, 0.8, 0xD6);
    }
}

#[test]
fn footprint_survives_oversubscribed_hotspots() {
    // Dedicated endpoint-congestion stress: the footprint chains of §3.4
    // must terminate at the endpoint and never block indefinitely.
    let (mut net, mut wl) = SimulationBuilder::mesh(4)
        .vcs(4)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::Figure2) // includes 2 flows into n13
        .injection_rate(1.0)
        .seed(0xD7)
        .build()
        .unwrap();
    net.run(&mut *wl, 2_000);
    let before = net.metrics().total().ejected_flits;
    net.run(&mut *wl, 500);
    assert!(net.metrics().total().ejected_flits > before);
    let mut idle = NoTraffic;
    for _ in 0..60 {
        net.run(&mut idle, 250);
        if net.is_quiescent() {
            break;
        }
    }
    assert!(net.is_quiescent(), "footprint chains failed to drain");
}

#[test]
fn footprint_join_extension_is_also_live() {
    use footprint_suite::routing::Footprint;
    use footprint_suite::sim::{Network, SimConfig};
    use footprint_suite::traffic::{PacketSize, SyntheticWorkload};

    let mut cfg = SimConfig::small();
    cfg.num_vcs = 4;
    let mut net = Network::new(cfg, Box::new(Footprint::new().with_join()), 0xD8).unwrap();
    let mut wl = SyntheticWorkload::new(
        cfg.topo(),
        Box::new(footprint_suite::traffic::Permutation::figure2_example(cfg.topo())),
        PacketSize::SINGLE,
        1.0,
    );
    net.run(&mut wl, 2_000);
    let before = net.metrics().total().ejected_flits;
    net.run(&mut wl, 500);
    assert!(net.metrics().total().ejected_flits > before, "join variant stalled");
    let mut idle = NoTraffic;
    for _ in 0..60 {
        net.run(&mut idle, 250);
        if net.is_quiescent() {
            break;
        }
    }
    assert!(net.is_quiescent(), "join variant failed to drain");
}

#[test]
fn structural_deadlock_freedom_is_proven_not_just_stressed() {
    // The CDG checker proves the acyclicity half of §3.4's argument for
    // every shipped algorithm on meshes up to 6x6.
    use footprint_suite::routing::cdg::{check_deadlock_freedom, DeadlockVerdict};
    use footprint_suite::topology::Mesh;
    for k in [3u16, 4, 6] {
        let mesh = Mesh::square(k);
        for spec in [
            RoutingSpec::Footprint,
            RoutingSpec::Dbar,
            RoutingSpec::OddEven,
            RoutingSpec::Dor,
            RoutingSpec::WestFirst,
            RoutingSpec::NorthLast,
            RoutingSpec::DorXordet,
            RoutingSpec::DbarXordet,
        ] {
            let verdict = check_deadlock_freedom(mesh, &*spec.build());
            assert!(
                matches!(
                    verdict,
                    DeadlockVerdict::AcyclicCdg | DeadlockVerdict::EscapeNetworkAcyclic
                ),
                "{} on {mesh}: {verdict:?}",
                spec.name()
            );
        }
    }
}
