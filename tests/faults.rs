//! Integration tests for the fault-injection subsystem: graceful
//! degradation of the adaptive algorithms, typed unreachability for DOR,
//! bit-identical faulted sweeps across thread counts, and the guarantee
//! that even a partitioning fault plan never hangs or panics the stack.

use footprint_suite::prelude::*;
use proptest::prelude::*;

/// An 8×8 run whose whole lifetime is the measurement window, drained to
/// quiescence — the configuration under which `generated = delivered +
/// dropped` must hold exactly.
fn accounted(spec: RoutingSpec) -> SimulationBuilder {
    SimulationBuilder::paper_default()
        .routing(spec)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.08)
        .warmup(0)
        .measurement(1_200)
        .drain(3_000)
        .seed(0xFA17)
}

/// One link fault on the 8×8 mesh: the duplex link n9↔n10 (row 1).
fn single_link_fault() -> FaultPlan {
    FaultPlan::new().with(FaultEvent::link_down(NodeId(9), Direction::East, 0))
}

#[test]
fn adaptive_algorithms_deliver_every_deliverable_packet_around_a_fault() {
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar, RoutingSpec::OddEven] {
        let report = accounted(spec)
            .run_with(
                RunOptions::new()
                    .faults(single_link_fault())
                    .watchdog(20_000),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        let f = &report.faults;
        assert!(
            f.fully_accounted(),
            "{}: generated {} != delivered {} + dropped {}",
            spec.name(),
            f.generated(),
            f.delivered(),
            f.dropped()
        );
        assert!(report.latency.ejected_packets > 500, "{}", spec.name());
        // The only losses are the provably unreachable pairs (same-row
        // pairs crossing the cut); everything else routed around, so
        // drops are a small fraction of the traffic.
        assert!(
            (f.dropped() as f64) < 0.1 * f.generated() as f64,
            "{}: dropped {} of {}",
            spec.name(),
            f.dropped(),
            f.generated()
        );
        // Soundness: every reported pair is genuinely unreachable under
        // the algorithm's own routing DAG with the link removed — no
        // packet was dropped that the algorithm could have delivered.
        let state = footprint_suite::sim::FaultState::new(Mesh::square(8), single_link_fault());
        let algo = spec.build();
        for &(src, dest) in &f.unreachable_pairs {
            assert!(
                !state.deliverable(&*algo, src, dest),
                "{}: {src}→{dest} was deliverable but dropped",
                spec.name()
            );
        }
    }
}

#[test]
fn dor_reports_unreachable_pairs_as_a_typed_error() {
    let err = accounted(RoutingSpec::Dor)
        .run_with(
            RunOptions::new()
                .faults(single_link_fault())
                .on_unreachable(UnreachablePolicy::Error)
                .watchdog(20_000),
        )
        .unwrap_err();
    match err {
        RunError::Unreachable(stats) => {
            assert!(!stats.unreachable_pairs.is_empty());
            // XY routing loses every pair that needs the dead hop on its
            // X leg — strictly more than the same-row pairs an adaptive
            // algorithm loses. All of them start left of the cut in row 1
            // or target columns beyond it from row-1 sources.
            assert!(stats.unreachable_pairs.iter().any(|&(s, d)| s.0 / 8 != d.0 / 8));
            assert!(stats.dropped() > 0);
        }
        other => panic!("expected RunError::Unreachable, got {other}"),
    }
}

#[test]
fn faulted_sweeps_are_bit_identical_across_thread_counts() {
    // The PR-1 engine guarantee extended to faulted runs: the fault state
    // is a pure function of (plan, cycle), so per-point derived seeds keep
    // sweeps bit-identical whatever the worker count (the code path
    // `FOOTPRINT_THREADS` selects).
    let rates = [0.05, 0.1];
    let sweep = |threads: usize| {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(RoutingSpec::Footprint)
            .warmup(150)
            .measurement(300)
            .seed(0x5EED)
            .sweep_with(
                &rates,
                SweepOptions::new()
                    .faults(single_link_4x4())
                    .threads(threads)
                    .watchdog(20_000),
            )
            .unwrap()
    };
    let one = sweep(1);
    let four = sweep(4);
    assert_eq!(one, four);
}

fn single_link_4x4() -> FaultPlan {
    FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 0))
}

#[test]
fn partitioning_fault_plan_never_hangs_or_panics() {
    // Cutting every East link out of column 1 splits the 4×4 mesh in two.
    // Onset at cycle 150 — mid-run, with packets in flight across the cut,
    // the worst case for wedged wormholes. The contract: the run either
    // completes with the losses accounted, trips the watchdog with a
    // well-formed diagnostic, or reports typed unreachability — never a
    // panic, never a hang.
    let mut plan = FaultPlan::new();
    for row in 0..4u16 {
        plan.push(FaultEvent::link_down(NodeId(row * 4 + 1), Direction::East, 150));
    }
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
    ] {
        let result = SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.2)
            .warmup(0)
            .measurement(800)
            .drain(800)
            .seed(9)
            .run_with(RunOptions::new().faults(plan.clone()).watchdog(300));
        match result {
            Ok(report) => {
                assert!(
                    !report.faults.unreachable_pairs.is_empty(),
                    "{}: a partition must make pairs unreachable",
                    spec.name()
                );
            }
            Err(RunError::Stalled(diag)) => {
                // Wedged in-flight wormholes are legitimate — but the
                // diagnostic must be well-formed.
                assert!(diag.in_flight > 0, "{}", spec.name());
                assert!(diag.to_string().starts_with("STALL"), "{}", spec.name());
            }
            Err(other) => panic!("{}: unexpected error {other}", spec.name()),
        }
    }
}

#[test]
fn fully_partitioned_ring_completes_with_a_partition_report() {
    // Cutting the wraparound edge 15↔0 and the grid edge 7↔8 splits a
    // 16-ring into {0..=7} and {8..=15}. The wrap cut severs deterministic
    // escape routes, so the run is refused with the typed verdict unless
    // the caller opts into degraded-escape mode — and in that mode it
    // completes without tripping the watchdog, with a partition history
    // covering every node.
    let plan = FaultPlan::new()
        .with(FaultEvent::link_down(NodeId(15), Direction::East, 0))
        .with(FaultEvent::link_down(NodeId(7), Direction::East, 0));
    let build = || {
        SimulationBuilder::ring(16)
            .vcs(4)
            .routing(RoutingSpec::Footprint)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.1)
            .warmup(0)
            .measurement(600)
            .drain(1_500)
            .seed(21)
    };
    // Without the opt-in: refused up front, before any cycle simulates.
    let err = build()
        .run_with(RunOptions::new().faults(plan.clone()).watchdog(20_000))
        .unwrap_err();
    match err {
        RunError::EscapeCompromised {
            severed,
            masked_wrap_channels,
        } => {
            assert!(!severed.is_empty());
            assert_eq!(masked_wrap_channels, 2, "both directions of 15↔0");
        }
        other => panic!("expected EscapeCompromised, got {other}"),
    }
    // Degraded mode: the partitioned run completes gracefully.
    let report = build()
        .run_with(
            RunOptions::new()
                .faults(plan)
                .degraded_escape(true)
                .watchdog(20_000),
        )
        .expect("partitioned ring run must complete in degraded mode");
    assert!(report.partitions.was_partitioned());
    assert_eq!(report.partitions.final_components(), 2);
    assert!(report.partitions.covers_all_nodes(16));
    assert!(report.faults.fully_accounted());
    assert!(report.faults.dropped() > 0, "cross-partition pairs drop");
    assert!(report.latency.ejected_packets > 0, "same-side pairs deliver");
}

#[test]
fn dateline_cut_on_a_torus_yields_a_typed_verdict() {
    // A dateline-biased plan on a 4×4 torus: every cut targets a
    // wraparound edge. The wrap-safety gate rebuilds the escape CDG under
    // the mask and refuses the run with the typed verdict for every
    // escape-classed algorithm; the turn-model algorithms route on the
    // acyclic subgraph and are admitted (their deadlock argument never
    // used the wrap channels).
    let plan = FaultPlan::random_link_faults_biased(Torus::square(4), 2, 0, 0xDA7E).unwrap();
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar, RoutingSpec::Dor] {
        let result = SimulationBuilder::torus(4)
            .vcs(6)
            .routing(spec)
            .warmup(0)
            .measurement(300)
            .seed(4)
            .run_with(RunOptions::new().faults(plan.clone()).watchdog(20_000));
        match result {
            Err(RunError::EscapeCompromised {
                severed,
                masked_wrap_channels,
            }) => {
                assert!(!severed.is_empty(), "{}", spec.name());
                assert!(masked_wrap_channels > 0, "{}", spec.name());
            }
            Ok(_) => panic!(
                "{}: a dateline cut must not be admitted silently",
                spec.name()
            ),
            Err(other) => panic!("{}: unexpected error {other}", spec.name()),
        }
    }
    // Odd-Even never routes on wrap channels: the same plan is admitted.
    let report = SimulationBuilder::torus(4)
        .vcs(6)
        .routing(RoutingSpec::OddEven)
        .warmup(0)
        .measurement(300)
        .drain(1_000)
        .seed(4)
        .run_with(RunOptions::new().faults(plan).watchdog(20_000))
        .expect("acyclic-subgraph routing is unaffected by dateline cuts");
    assert!(report.faults.fully_accounted());
}

#[test]
fn retry_backoff_sweeps_are_bit_identical_across_threads_and_schedulers() {
    // The recovery path's own determinism guarantee: retry jitter derives
    // from (seed, packet, attempt) — never the shared RNG — so a faulted
    // sweep under the Retry policy is bit-identical across worker counts
    // AND across the dense/active cycle loops.
    let rates = [0.05, 0.1];
    let plan = FaultPlan::new()
        .with(FaultEvent::link_down(NodeId(5), Direction::East, 100).repaired_at(400));
    let sweep = |threads: usize, sched: Scheduler| {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(RoutingSpec::Footprint)
            .warmup(0)
            .measurement(600)
            .drain(600)
            .seed(0xBACC)
            .sweep_with(
                &rates,
                SweepOptions::new()
                    .faults(plan.clone())
                    .on_unreachable(UnreachablePolicy::Retry {
                        max_attempts: 8,
                        backoff: 32,
                    })
                    .threads(threads)
                    .scheduler(sched)
                    .watchdog(20_000),
            )
            .unwrap()
    };
    let reference = sweep(1, Scheduler::Dense);
    assert_eq!(reference, sweep(4, Scheduler::Dense));
    assert_eq!(reference, sweep(1, Scheduler::Active));
    assert_eq!(reference, sweep(4, Scheduler::Active));
}

#[test]
fn repaired_outage_reports_recovery_stats() {
    // A mid-run outage with a scheduled repair: the report carries a
    // completed time-to-recover record and an availability timeline that
    // dips during the outage and recovers after the repair.
    let plan = FaultPlan::new()
        .with(FaultEvent::link_down(NodeId(9), Direction::East, 300).repaired_at(900));
    let report = accounted(RoutingSpec::Footprint)
        .run_with(
            RunOptions::new()
                .faults(plan)
                .on_unreachable(UnreachablePolicy::Retry {
                    max_attempts: 50,
                    backoff: 64,
                })
                .watchdog(20_000),
        )
        .unwrap();
    assert!(report.faults.fully_accounted());
    assert_eq!(report.recovery.ttr.len(), 1, "{:?}", report.recovery.ttr);
    assert_eq!(report.recovery.ttr[0].repair_cycle, 900);
    assert!(report.recovery.pending_repair.is_none());
    assert!(!report.recovery.windows.is_empty());
    // Everything offered was eventually delivered (drained run, repairs
    // re-admit the backlog), so the availability books close.
    let (offered, delivered) = report.recovery.totals();
    assert_eq!(offered, delivered);
    // A single mesh link cut never partitions: one epoch, one component.
    assert!(!report.partitions.was_partitioned());
    assert!(report.partitions.covers_all_nodes(64));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single-link fault plan, any algorithm: short faulted runs never
    /// panic and never hang (the watchdog bounds them).
    #[test]
    fn random_single_fault_plans_never_panic(
        node in 0u16..16,
        dir_ix in 0usize..4,
        onset in 0u64..200,
        algo_ix in 0usize..4,
    ) {
        let dir = [Direction::East, Direction::West, Direction::North, Direction::South][dir_ix];
        let spec = [
            RoutingSpec::Footprint,
            RoutingSpec::Dbar,
            RoutingSpec::OddEven,
            RoutingSpec::Dor,
        ][algo_ix];
        let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(node), dir, onset));
        let result = SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.15)
            .warmup(0)
            .measurement(250)
            .seed(u64::from(node) ^ (onset << 8))
            .run_with(RunOptions::new().faults(plan).watchdog(400));
        match result {
            Ok(_) | Err(RunError::Stalled(_)) => {}
            // A link target off the mesh edge is rejected up front.
            Err(RunError::Config(ConfigError::Fault(_))) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Arbitrary biased fault plans on the wrapping fabrics, audited by
    /// the sentinel: every run either completes fully accounted, stalls
    /// inside the watchdog bound, or is refused with the typed
    /// escape verdict — never a panic, never a hang, and bit-identical
    /// across both cycle schedulers.
    #[test]
    fn random_fault_plans_on_wrapping_fabrics_are_audited_and_bounded(
        topo_ix in 0usize..2,
        wrap_cuts in 0usize..3,
        grid_cuts in 0usize..3,
        algo_ix in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let spec = [
            RoutingSpec::Footprint,
            RoutingSpec::Dbar,
            RoutingSpec::OddEven,
            RoutingSpec::Dor,
        ][algo_ix];
        let (plan, nodes, build): (_, usize, fn() -> SimulationBuilder) = if topo_ix == 0 {
            (
                FaultPlan::random_link_faults_biased(Torus::square(4), wrap_cuts, grid_cuts, seed),
                16,
                || SimulationBuilder::torus(4).vcs(6),
            )
        } else {
            (
                FaultPlan::random_link_faults_biased(Ring::new(8), wrap_cuts, grid_cuts, seed),
                8,
                || SimulationBuilder::ring(8).vcs(4),
            )
        };
        let plan = plan.expect("wrapping fabrics always have wrap edges");
        let run = |sched: Scheduler| {
            build()
                .routing(spec)
                .traffic(TrafficSpec::UniformRandom)
                .injection_rate(0.1)
                .warmup(0)
                .measurement(250)
                .drain(600)
                .seed(seed ^ 0x5EED)
                .run_with(
                    RunOptions::new()
                        .faults(plan.clone())
                        .sentinel(true)
                        .scheduler(sched)
                        .watchdog(2_000),
                )
        };
        let dense = run(Scheduler::Dense);
        match &dense {
            Ok(report) => {
                prop_assert!(report.faults.fully_accounted());
                prop_assert!(report.partitions.covers_all_nodes(nodes));
            }
            Err(RunError::Stalled(_)) => {}
            Err(RunError::EscapeCompromised { severed, .. }) => {
                prop_assert!(!severed.is_empty());
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
        match (dense, run(Scheduler::Active)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(RunError::EscapeCompromised { severed: a, .. }),
             Err(RunError::EscapeCompromised { severed: b, .. })) => prop_assert_eq!(a, b),
            (Err(RunError::Stalled(_)), Err(RunError::Stalled(_))) => {}
            (a, b) => prop_assert!(
                false,
                "schedulers disagree: dense {a:?} vs active {b:?}"
            ),
        }
    }
}
