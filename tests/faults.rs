//! Integration tests for the fault-injection subsystem: graceful
//! degradation of the adaptive algorithms, typed unreachability for DOR,
//! bit-identical faulted sweeps across thread counts, and the guarantee
//! that even a partitioning fault plan never hangs or panics the stack.

use footprint_suite::prelude::*;
use proptest::prelude::*;

/// An 8×8 run whose whole lifetime is the measurement window, drained to
/// quiescence — the configuration under which `generated = delivered +
/// dropped` must hold exactly.
fn accounted(spec: RoutingSpec) -> SimulationBuilder {
    SimulationBuilder::paper_default()
        .routing(spec)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.08)
        .warmup(0)
        .measurement(1_200)
        .drain(3_000)
        .seed(0xFA17)
}

/// One link fault on the 8×8 mesh: the duplex link n9↔n10 (row 1).
fn single_link_fault() -> FaultPlan {
    FaultPlan::new().with(FaultEvent::link_down(NodeId(9), Direction::East, 0))
}

#[test]
fn adaptive_algorithms_deliver_every_deliverable_packet_around_a_fault() {
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar, RoutingSpec::OddEven] {
        let report = accounted(spec)
            .run_with(
                RunOptions::new()
                    .faults(single_link_fault())
                    .watchdog(20_000),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        let f = &report.faults;
        assert!(
            f.fully_accounted(),
            "{}: generated {} != delivered {} + dropped {}",
            spec.name(),
            f.generated(),
            f.delivered(),
            f.dropped()
        );
        assert!(report.latency.ejected_packets > 500, "{}", spec.name());
        // The only losses are the provably unreachable pairs (same-row
        // pairs crossing the cut); everything else routed around, so
        // drops are a small fraction of the traffic.
        assert!(
            (f.dropped() as f64) < 0.1 * f.generated() as f64,
            "{}: dropped {} of {}",
            spec.name(),
            f.dropped(),
            f.generated()
        );
        // Soundness: every reported pair is genuinely unreachable under
        // the algorithm's own routing DAG with the link removed — no
        // packet was dropped that the algorithm could have delivered.
        let state = footprint_suite::sim::FaultState::new(Mesh::square(8), single_link_fault());
        let algo = spec.build();
        for &(src, dest) in &f.unreachable_pairs {
            assert!(
                !state.deliverable(&*algo, src, dest),
                "{}: {src}→{dest} was deliverable but dropped",
                spec.name()
            );
        }
    }
}

#[test]
fn dor_reports_unreachable_pairs_as_a_typed_error() {
    let err = accounted(RoutingSpec::Dor)
        .run_with(
            RunOptions::new()
                .faults(single_link_fault())
                .on_unreachable(UnreachablePolicy::Error)
                .watchdog(20_000),
        )
        .unwrap_err();
    match err {
        RunError::Unreachable(stats) => {
            assert!(!stats.unreachable_pairs.is_empty());
            // XY routing loses every pair that needs the dead hop on its
            // X leg — strictly more than the same-row pairs an adaptive
            // algorithm loses. All of them start left of the cut in row 1
            // or target columns beyond it from row-1 sources.
            assert!(stats.unreachable_pairs.iter().any(|&(s, d)| s.0 / 8 != d.0 / 8));
            assert!(stats.dropped() > 0);
        }
        other => panic!("expected RunError::Unreachable, got {other}"),
    }
}

#[test]
fn faulted_sweeps_are_bit_identical_across_thread_counts() {
    // The PR-1 engine guarantee extended to faulted runs: the fault state
    // is a pure function of (plan, cycle), so per-point derived seeds keep
    // sweeps bit-identical whatever the worker count (the code path
    // `FOOTPRINT_THREADS` selects).
    let rates = [0.05, 0.1];
    let sweep = |threads: usize| {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(RoutingSpec::Footprint)
            .warmup(150)
            .measurement(300)
            .seed(0x5EED)
            .sweep_with(
                &rates,
                SweepOptions::new()
                    .faults(single_link_4x4())
                    .threads(threads)
                    .watchdog(20_000),
            )
            .unwrap()
    };
    let one = sweep(1);
    let four = sweep(4);
    assert_eq!(one, four);
}

fn single_link_4x4() -> FaultPlan {
    FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 0))
}

#[test]
fn partitioning_fault_plan_never_hangs_or_panics() {
    // Cutting every East link out of column 1 splits the 4×4 mesh in two.
    // Onset at cycle 150 — mid-run, with packets in flight across the cut,
    // the worst case for wedged wormholes. The contract: the run either
    // completes with the losses accounted, trips the watchdog with a
    // well-formed diagnostic, or reports typed unreachability — never a
    // panic, never a hang.
    let mut plan = FaultPlan::new();
    for row in 0..4u16 {
        plan.push(FaultEvent::link_down(NodeId(row * 4 + 1), Direction::East, 150));
    }
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
    ] {
        let result = SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.2)
            .warmup(0)
            .measurement(800)
            .drain(800)
            .seed(9)
            .run_with(RunOptions::new().faults(plan.clone()).watchdog(300));
        match result {
            Ok(report) => {
                assert!(
                    !report.faults.unreachable_pairs.is_empty(),
                    "{}: a partition must make pairs unreachable",
                    spec.name()
                );
            }
            Err(RunError::Stalled(diag)) => {
                // Wedged in-flight wormholes are legitimate — but the
                // diagnostic must be well-formed.
                assert!(diag.in_flight > 0, "{}", spec.name());
                assert!(diag.to_string().starts_with("STALL"), "{}", spec.name());
            }
            Err(other) => panic!("{}: unexpected error {other}", spec.name()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single-link fault plan, any algorithm: short faulted runs never
    /// panic and never hang (the watchdog bounds them).
    #[test]
    fn random_single_fault_plans_never_panic(
        node in 0u16..16,
        dir_ix in 0usize..4,
        onset in 0u64..200,
        algo_ix in 0usize..4,
    ) {
        let dir = [Direction::East, Direction::West, Direction::North, Direction::South][dir_ix];
        let spec = [
            RoutingSpec::Footprint,
            RoutingSpec::Dbar,
            RoutingSpec::OddEven,
            RoutingSpec::Dor,
        ][algo_ix];
        let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(node), dir, onset));
        let result = SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.15)
            .warmup(0)
            .measurement(250)
            .seed(u64::from(node) ^ (onset << 8))
            .run_with(RunOptions::new().faults(plan).watchdog(400));
        match result {
            Ok(_) | Err(RunError::Stalled(_)) => {}
            // A link target off the mesh edge is rejected up front.
            Err(RunError::Config(ConfigError::Fault(_))) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}
