//! Integration tests for the observability layer: probes must be pure
//! observers (bit-identical results with or without them), the event
//! trace must capture the full flit lifecycle end to end, and the stall
//! watchdog must turn a hung network into a diagnostic bundle.

use footprint_suite::prelude::*;
use footprint_suite::sim::StallWatchdog;
use footprint_suite::routing::{RoutingAlgorithm, RoutingCtx, VcReallocationPolicy, VcRequest};
use footprint_suite::sim::{EventTrace, FlitEventKind, FlowSet, Network, SimConfig, SingleFlow};
use footprint_suite::stats::TimelineProbe;
use rand::RngCore;

fn quick() -> SimulationBuilder {
    SimulationBuilder::mesh(4)
        .vcs(4)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.2)
        .warmup(200)
        .measurement(600)
        .seed(0x0B5E)
}

#[test]
fn probes_do_not_perturb_the_simulation() {
    // The whole observability stack attached vs. nothing attached: the
    // reported metrics must be bit-identical (probes are pure observers).
    let plain = quick().run_with(RunOptions::new()).unwrap();
    let mut timeline = TimelineProbe::new(25).with_router_rows();
    let probed = quick().run_with(RunOptions::new().probe(&mut timeline)).unwrap();
    assert_eq!(plain, probed);
    let mut trace = EventTrace::with_capacity(1 << 16);
    let traced = quick().run_with(RunOptions::new().probe(&mut trace)).unwrap();
    assert_eq!(plain, traced);
    let watched = quick().run_with(RunOptions::new().probe(&mut NullProbe).watchdog(10_000)).unwrap();
    assert_eq!(plain, watched);
}

#[test]
fn event_trace_captures_the_full_flit_lifecycle() {
    let mut trace = EventTrace::with_capacity(1 << 16);
    let report = quick().run_with(RunOptions::new().probe(&mut trace)).unwrap();
    assert!(report.latency.ejected_packets > 0);
    assert_eq!(trace.dropped(), 0, "trace capacity too small for the run");
    for kind in [
        FlitEventKind::Inject,
        FlitEventKind::VcGrant,
        FlitEventKind::SaGrant,
        FlitEventKind::Eject,
    ] {
        assert!(
            trace.records().any(|r| r.kind == kind),
            "no {kind:?} events recorded"
        );
    }
    // Every ejected packet's lifecycle is ordered: inject <= grant <= eject.
    let mut jsonl = Vec::new();
    trace.write_jsonl(&mut jsonl).unwrap();
    let jsonl = String::from_utf8(jsonl).unwrap();
    assert_eq!(jsonl.lines().count(), trace.len());
    assert!(jsonl.lines().all(|l| l.starts_with("{\"cycle\":")));
}

#[test]
fn timelines_track_the_measurement_window() {
    let mut timeline = TimelineProbe::new(50).with_router_rows();
    quick().run_with(RunOptions::new().probe(&mut timeline)).unwrap();
    // Probes attach at the warmup boundary (cycle 200) and sample every
    // 50 cycles of the 600-cycle measurement window.
    assert_eq!(timeline.mesh_samples().len(), 12);
    assert!(timeline.mesh_samples().iter().all(|s| s.cycle >= 200));
    assert!(
        timeline.mesh_samples().iter().skip(1).any(|s| s.link_flits > 0),
        "links must carry traffic at 0.2 flits/node/cycle"
    );
}

/// A routing function that never routes: heads freeze at their first
/// router, which is exactly the failure mode the watchdog exists for.
struct BlackHole;

impl RoutingAlgorithm for BlackHole {
    fn name(&self) -> &'static str {
        "blackhole"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::Atomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn route(&self, _ctx: &RoutingCtx<'_>, _rng: &mut dyn RngCore, _out: &mut Vec<VcRequest>) {}
}

#[test]
fn watchdog_turns_a_hung_network_into_a_diagnostic_bundle() {
    let mut net = Network::new(SimConfig::small(), Box::new(BlackHole), 7).unwrap();
    let mut wl = FlowSet::new(vec![SingleFlow {
        src: NodeId(0),
        dest: NodeId(5),
        rate: 1.0,
        size: 1,
    }]);
    let mut watchdog = StallWatchdog::new(50);
    let diag = net
        .run_watched(&mut wl, 10_000, &mut NullProbe, &mut watchdog)
        .unwrap_err();
    // The run aborted at the trip point instead of spinning to the limit.
    assert!(net.cycle() < 200, "aborted at cycle {}", net.cycle());
    assert!(diag.in_flight > 0);
    assert!(!diag.router_dumps.is_empty());
    let text = diag.to_string();
    assert!(text.starts_with("STALL: no flit moved for"));
    assert!(text.contains("occupancy map:"));
    assert!(text.contains("oldest in-flight packets:"));
    assert!(text.contains("router n0"));
}

#[test]
fn healthy_traffic_never_trips_the_builder_watchdog() {
    match quick().run_with(RunOptions::new().probe(&mut NullProbe).watchdog(200)) {
        Ok(report) => assert!(report.latency.ejected_packets > 0),
        Err(e) => panic!("unexpected failure: {e}"),
    }
}
