//! Property-based integration tests: flow conservation, determinism and
//! drainability over randomized workloads and configurations.

use footprint_suite::prelude::*;
use footprint_suite::sim::{FlowSet, Network, NoTraffic, SimConfig, SingleFlow};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = RoutingSpec> {
    prop_oneof![
        Just(RoutingSpec::Footprint),
        Just(RoutingSpec::Dbar),
        Just(RoutingSpec::OddEven),
        Just(RoutingSpec::Dor),
        Just(RoutingSpec::DorXordet),
        Just(RoutingSpec::DbarXordet),
    ]
}

fn arb_flows(nodes: u16, max_flows: usize) -> impl Strategy<Value = Vec<SingleFlow>> {
    prop::collection::vec(
        (0..nodes, 0..nodes, 0.05f64..0.5, 1u16..4),
        1..=max_flows,
    )
    .prop_map(|v| {
        // Respect the FlowSet contract: flows sharing a source may not
        // offer more than 1.0 flit/cycle in aggregate. Drop any flow that
        // would push its source over budget (keeps the generator simple
        // and the surviving set always valid — the first flow per source,
        // at rate < 0.5, always survives).
        let mut budget = std::collections::HashMap::new();
        v.into_iter()
            .filter(|(s, d, _, _)| s != d)
            .filter_map(|(s, d, rate, size)| {
                let used = budget.entry(s).or_insert(0.0);
                if *used + rate > 1.0 {
                    return None;
                }
                *used += rate;
                Some(SingleFlow {
                    src: NodeId(s),
                    dest: NodeId(d),
                    rate,
                    size,
                })
            })
            .collect()
    })
}

fn cfg(k: u16, vcs: usize) -> SimConfig {
    SimConfig {
        topology: TopologySpec::mesh(k),
        num_vcs: vcs,
        vc_buffer_depth: 4,
        speedup: 2,
        link_latency: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flow conservation: whatever is generated is eventually ejected, once,
    /// with the right flit count, for arbitrary flow sets and algorithms.
    #[test]
    fn conservation_of_packets(
        spec in arb_spec(),
        flows in arb_flows(16, 6),
        seed in 0u64..1000,
    ) {
        prop_assume!(!flows.is_empty());
        let mut net = Network::new(cfg(4, 4), spec.build(), seed).unwrap();
        let mut wl = FlowSet::new(flows);
        net.run(&mut wl, 400);
        let mut idle = NoTraffic;
        for _ in 0..60 {
            net.run(&mut idle, 200);
            if net.is_quiescent() {
                break;
            }
        }
        prop_assert!(net.is_quiescent(), "{}: failed to drain", spec.name());
        let m = net.metrics().total();
        prop_assert_eq!(m.generated_packets, m.ejected_packets);
        prop_assert_eq!(m.generated_flits, m.ejected_flits);
    }

    /// Determinism: identical configuration + seed → identical metrics.
    #[test]
    fn determinism(
        spec in arb_spec(),
        flows in arb_flows(16, 4),
        seed in 0u64..1000,
    ) {
        prop_assume!(!flows.is_empty());
        let run = |flows: Vec<SingleFlow>| {
            let mut net = Network::new(cfg(4, 4), spec.build(), seed).unwrap();
            let mut wl = FlowSet::new(flows);
            net.run(&mut wl, 300);
            let m = net.metrics().total();
            (m.generated_packets, m.ejected_packets, m.latency_sum)
        };
        prop_assert_eq!(run(flows.clone()), run(flows));
    }

    /// Latency sanity: every delivered packet's latency is at least its
    /// minimal hop count (it can't teleport).
    #[test]
    fn latency_at_least_distance(
        spec in arb_spec(),
        src in 0u16..16,
        dest in 0u16..16,
        seed in 0u64..100,
    ) {
        prop_assume!(src != dest);
        let mesh = Mesh::square(4);
        let mut net = Network::new(cfg(4, 4), spec.build(), seed).unwrap();
        let mut wl = FlowSet::new(vec![SingleFlow {
            src: NodeId(src),
            dest: NodeId(dest),
            rate: 0.2,
            size: 1,
        }]);
        net.run(&mut wl, 300);
        let mut idle = NoTraffic;
        net.run(&mut idle, 400);
        let m = net.metrics().total();
        prop_assume!(m.ejected_packets > 0);
        let min_lat = m.latency_sum as f64 / m.ejected_packets as f64;
        prop_assert!(
            min_lat >= mesh.hops(NodeId(src), NodeId(dest)) as f64,
            "{}: mean latency {} below hop count",
            spec.name(),
            min_lat
        );
    }

    /// Occupancy snapshots never contain empty entries or foreign flits.
    #[test]
    fn snapshot_consistency(
        spec in arb_spec(),
        flows in arb_flows(16, 5),
        seed in 0u64..100,
    ) {
        prop_assume!(!flows.is_empty());
        let mut net = Network::new(cfg(4, 4), spec.build(), seed).unwrap();
        let mut wl = FlowSet::new(flows.clone());
        net.run(&mut wl, 250);
        let valid_dests: std::collections::HashSet<_> =
            flows.iter().map(|f| f.dest).collect();
        for entry in net.occupancy_snapshot() {
            prop_assert!(!entry.dests.is_empty());
            for d in &entry.dests {
                prop_assert!(valid_dests.contains(d), "unknown destination {d}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Duato-based algorithms drain even at the 2-VC floor.
    #[test]
    fn minimum_vcs_drain(flows in arb_flows(16, 4), seed in 0u64..50) {
        prop_assume!(!flows.is_empty());
        for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
            let mut net = Network::new(cfg(4, 2), spec.build(), seed).unwrap();
            let mut wl = FlowSet::new(flows.clone());
            net.run(&mut wl, 300);
            let mut idle = NoTraffic;
            for _ in 0..80 {
                net.run(&mut idle, 200);
                if net.is_quiescent() {
                    break;
                }
            }
            prop_assert!(net.is_quiescent(), "{} stuck at 2 VCs", spec.name());
        }
    }
}
