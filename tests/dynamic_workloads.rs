//! Integration tests for the dynamic-workload layer: modulated and
//! multi-tenant runs through the public builder API, pinned to the
//! engine's three standing guarantees — scheduler bit-identity, thread
//! bit-identity and exact accounting.

use footprint_suite::prelude::*;

fn base() -> SimulationBuilder {
    SimulationBuilder::mesh(4)
        .vcs(4)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .seed(0xD1_5EED)
}

/// Long off-phases are the adversarial case for the active-set
/// scheduler: whole stretches where no router has work, then a
/// simultaneous wake across the mesh. The dense loop is the reference;
/// reports must be bit-identical.
#[test]
fn long_off_phases_are_scheduler_invariant() {
    let b = base()
        .injection_rate(0.2)
        .modulation(ModulationSpec::OnOff {
            on: DurationDist::Fixed(50),
            off: DurationDist::Fixed(400),
        })
        .warmup(100)
        .measurement(2_000);
    let run = |s: Scheduler| {
        b.run_with(RunOptions::new().scheduler(s).watchdog(20_000))
            .expect("valid configuration")
    };
    let dense = run(Scheduler::Dense);
    assert_eq!(dense, run(Scheduler::Active), "dense vs active diverged");
    assert!(dense.latency.ejected_packets > 0, "the on-phases must inject");
}

/// The full determinism matrix for a modulated sweep: every
/// (threads × scheduler) combination must reproduce the sequential
/// dense reference bit for bit.
#[test]
fn modulated_sweeps_are_thread_and_scheduler_invariant() {
    let rates = [0.08, 0.2];
    let b = base()
        .modulation(ModulationSpec::OnOff {
            on: DurationDist::Geometric { mean: 30.0 },
            off: DurationDist::Uniform { min: 10, max: 90 },
        })
        .warmup(100)
        .measurement(600);
    let sweep = |threads: usize, s: Scheduler| {
        b.sweep_with(
            &rates,
            SweepOptions::new().threads(threads).scheduler(s).watchdog(20_000),
        )
        .expect("valid configuration")
    };
    let reference = sweep(1, Scheduler::Dense);
    for (threads, s) in [(1, Scheduler::Active), (4, Scheduler::Dense), (4, Scheduler::Active)] {
        assert_eq!(
            reference,
            sweep(threads, s),
            "modulated sweep diverged at {threads} thread(s), {s:?}"
        );
    }
}

fn two_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("web", TrafficSpec::UniformRandom, 0.2).modulation(ModulationSpec::OnOff {
            on: DurationDist::Geometric { mean: 40.0 },
            off: DurationDist::Geometric { mean: 40.0 },
        }),
        TenantSpec::new("batch", TrafficSpec::Transpose, 0.1),
    ]
}

/// A sentinel-audited multi-tenant run is scheduler-invariant, down to
/// the per-tenant summaries (which hash every windowed counter).
#[test]
fn multi_tenant_runs_are_scheduler_invariant_under_audit() {
    let b = base().tenants(two_tenants()).warmup(100).measurement(800);
    let run = |s: Scheduler| {
        b.run_with(RunOptions::new().scheduler(s).sentinel(true).watchdog(20_000))
            .expect("a healthy multi-tenant run must not trip the sentinel")
    };
    let dense = run(Scheduler::Dense);
    assert_eq!(dense, run(Scheduler::Active), "dense vs active diverged");
    assert_eq!(dense.tenants.len(), 2);
}

/// Whole-run measurement plus a drain closes the per-tenant books
/// exactly, and the latency quantiles are ordered.
#[test]
fn drained_tenant_books_close_exactly() {
    let report = base()
        .tenants(two_tenants())
        .warmup(0)
        .measurement(1_000)
        .drain(4_000)
        .run_with(RunOptions::new().watchdog(20_000))
        .expect("valid configuration");
    for name in ["web", "batch"] {
        let t = report.tenant(name).expect("tenant in report");
        assert!(t.offered_packets > 0, "{name}: no traffic");
        assert!(
            t.fully_accounted() && t.in_flight() == 0,
            "{name}: offered {} != delivered {} + in-flight {} + dropped {}",
            t.offered_packets,
            t.delivered_packets,
            t.in_flight(),
            t.dropped_packets
        );
        let (p50, p99) = (t.p50_latency.unwrap(), t.p99_latency.unwrap());
        assert!(p50 <= p99, "{name}: p50 {p50} > p99 {p99}");
        assert!(t.mean_latency > 0.0);
    }
    // Unknown tenants stay unknown.
    assert!(report.tenant("nosuch").is_none());
}

/// A 50%-duty gate at rate `r` must offer ≈ `r/2` — modulation thins
/// the offered load, it does not reshape packets into fewer, larger
/// bursts of the same mass.
#[test]
fn half_duty_offers_half_the_load() {
    let run = |m: ModulationSpec| {
        base()
            .injection_rate(0.2)
            .modulation(m)
            .warmup(200)
            .measurement(4_000)
            .run_with(RunOptions::new().watchdog(20_000))
            .expect("valid configuration")
    };
    let steady = run(ModulationSpec::Steady);
    let bursty = run(ModulationSpec::OnOff {
        on: DurationDist::Fixed(64),
        off: DurationDist::Fixed(64),
    });
    let ratio = bursty.latency.generated_packets as f64 / steady.latency.generated_packets as f64;
    assert!(
        (ratio - 0.5).abs() < 0.08,
        "50% duty offered {ratio:.3}x the steady load"
    );
}

/// Bad dynamic-workload configurations surface as typed configuration
/// errors at run time, not panics or silent clamps.
#[test]
fn invalid_dynamic_configs_are_typed_errors() {
    let cases: Vec<SimulationBuilder> = vec![
        // A zero-length on-phase can never fire.
        base().injection_rate(0.1).modulation(ModulationSpec::OnOff {
            on: DurationDist::Fixed(0),
            off: DurationDist::Fixed(10),
        }),
        // Tenant rates over the per-node injection budget.
        base().tenants(vec![
            TenantSpec::new("a", TrafficSpec::UniformRandom, 0.7),
            TenantSpec::new("b", TrafficSpec::Transpose, 0.6),
        ]),
        // A negative tenant rate.
        base().tenants(vec![TenantSpec::new("a", TrafficSpec::UniformRandom, -0.1)]),
    ];
    for b in cases {
        match b.warmup(10).measurement(20).run_with(RunOptions::new()) {
            Err(RunError::Config(e)) => {
                assert!(e.to_string().contains("workload"), "unexpected error: {e}");
            }
            other => panic!("expected a typed config error, got {other:?}"),
        }
    }
}
