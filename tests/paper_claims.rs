//! Fast qualitative checks of the paper's headline claims — miniature
//! versions of the Figure 5/9/10 experiments that must preserve the
//! *orderings* the paper reports. (The full-scale regenerations live in
//! `crates/bench`.)

use footprint_suite::prelude::*;
use footprint_suite::routing::cost::footprint_storage_bits_per_port;
use footprint_suite::stats::PurityProbe;
use footprint_suite::traffic::BACKGROUND_CLASS;

fn run(spec: RoutingSpec, traffic: TrafficSpec, rate: f64) -> footprint_suite::core::RunReport {
    SimulationBuilder::paper_default()
        .routing(spec)
        .traffic(traffic)
        .injection_rate(rate)
        .warmup(800)
        .measurement(1_600)
        .seed(0xC1A)
        .run_with(RunOptions::new())
        .unwrap()
}

#[test]
fn adaptive_routing_beats_dor_on_transpose() {
    // Figure 5(b): adaptive algorithms exploit path diversity on transpose.
    let fp = run(RoutingSpec::Footprint, TrafficSpec::Transpose, 0.35);
    let dor = run(RoutingSpec::Dor, TrafficSpec::Transpose, 0.35);
    assert!(
        fp.latency.throughput > dor.latency.throughput * 1.3,
        "footprint {} vs dor {}",
        fp.latency.throughput,
        dor.latency.throughput
    );
}

#[test]
fn dor_is_competitive_on_uniform() {
    // Figure 5(a): uniform random self-balances; DOR is the benchmark.
    let fp = run(RoutingSpec::Footprint, TrafficSpec::UniformRandom, 0.35);
    let dor = run(RoutingSpec::Dor, TrafficSpec::UniformRandom, 0.35);
    let ratio = fp.latency.throughput / dor.latency.throughput;
    assert!(
        ratio > 0.93,
        "footprint should be close to DOR on uniform, got ratio {ratio}"
    );
}

#[test]
fn footprint_beats_odd_even_on_shuffle() {
    // Figure 5(c): partial adaptivity leaves throughput on the table.
    let fp = run(RoutingSpec::Footprint, TrafficSpec::Shuffle, 0.40);
    let oe = run(RoutingSpec::OddEven, TrafficSpec::Shuffle, 0.40);
    assert!(
        fp.latency.throughput >= oe.latency.throughput,
        "footprint {} vs odd-even {}",
        fp.latency.throughput,
        oe.latency.throughput
    );
    assert!(
        fp.latency.mean_latency < oe.latency.mean_latency,
        "footprint latency {} vs odd-even {}",
        fp.latency.mean_latency,
        oe.latency.mean_latency
    );
}

#[test]
fn xordet_restricts_adaptive_routing_on_transpose() {
    // §4.2.1: XORDET's static VC assignment hurts adaptive routing on
    // non-uniform patterns. In our simulator the damage shows as latency
    // (the mapped VC serializes each class) — the throughput penalty the
    // paper reports is partially masked by our multi-packet VC FIFOs,
    // which act as deep per-class queues (see EXPERIMENTS.md).
    let db = run(RoutingSpec::Dbar, TrafficSpec::Transpose, 0.40);
    let dbx = run(RoutingSpec::DbarXordet, TrafficSpec::Transpose, 0.40);
    assert!(
        dbx.latency.mean_latency > db.latency.mean_latency * 1.2,
        "dbar lat {} vs dbar+xordet lat {}",
        db.latency.mean_latency,
        dbx.latency.mean_latency
    );
}

#[test]
fn footprint_protects_background_traffic_from_hotspots() {
    // Figure 9: the headline claim. At a hotspot rate past DBAR's collapse
    // point, Footprint's background traffic must be in far better shape.
    let fp = run(RoutingSpec::Footprint, TrafficSpec::PAPER_HOTSPOT, 0.5);
    let db = run(RoutingSpec::Dbar, TrafficSpec::PAPER_HOTSPOT, 0.5);
    let fp_bg = fp.class(BACKGROUND_CLASS);
    let db_bg = db.class(BACKGROUND_CLASS);
    // The paper's claim is the *ordering* plus a wide margin, not an exact
    // ratio: this miniature run (1.6k measured cycles, single seed) lands
    // around 1.45-1.5x and wobbles with the seed, so assert a margin the
    // ordering clears robustly. The full-scale Figure 9 regeneration in
    // `crates/bench` shows the collapse-sized gap.
    assert!(
        fp_bg.throughput > db_bg.throughput * 1.3,
        "bg throughput: footprint {} vs dbar {}",
        fp_bg.throughput,
        db_bg.throughput
    );
    assert!(
        fp_bg.mean_latency < db_bg.mean_latency,
        "bg latency: footprint {} vs dbar {}",
        fp_bg.mean_latency,
        db_bg.mean_latency
    );
}

#[test]
fn footprint_improves_blocking_purity_under_hotspots() {
    // Figure 10(b): blocked packets under Footprint wait predominantly on
    // their own flow (footprint VCs), not on other flows.
    let mut probe_fp = PurityProbe::paper();
    let mut probe_db = PurityProbe::paper();
    for (spec, probe) in [
        (RoutingSpec::Footprint, &mut probe_fp),
        (RoutingSpec::Dbar, &mut probe_db),
    ] {
        SimulationBuilder::paper_default()
            .routing(spec)
            .traffic(TrafficSpec::PAPER_HOTSPOT)
            .injection_rate(0.5)
            .warmup(800)
            .measurement(1_600)
            .seed(0xC1B)
            .run_with(RunOptions::new().probe(probe))
            .unwrap();
    }
    assert!(
        probe_fp.mean_purity() > probe_db.mean_purity(),
        "purity: footprint {} vs dbar {}",
        probe_fp.mean_purity(),
        probe_db.mean_purity()
    );
}

#[test]
fn storage_cost_matches_section_4_4() {
    assert_eq!(footprint_storage_bits_per_port(64, 16), 132);
}

#[test]
fn duato_vc_floor_is_two() {
    // §4.2.3: "the minimum number of required VCs is two."
    let err = SimulationBuilder::mesh(4)
        .vcs(1)
        .routing(RoutingSpec::Footprint)
        .run_with(RunOptions::new())
        .unwrap_err();
    assert!(matches!(
        err,
        RunError::Config(ConfigError::TooFewVcsForRouting { required: 2, .. })
    ));
    // And two is enough to run.
    let ok = SimulationBuilder::mesh(4)
        .vcs(2)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.05)
        .warmup(100)
        .measurement(400)
        .seed(1)
        .run_with(RunOptions::new())
        .unwrap();
    assert!(ok.latency.ejected_packets > 0);
}

#[test]
fn more_vcs_more_throughput_under_load() {
    // Figure 7's premise: VC count matters at high load.
    let small = SimulationBuilder::paper_default()
        .vcs(2)
        .traffic(TrafficSpec::Shuffle)
        .injection_rate(0.45)
        .warmup(800)
        .measurement(1_600)
        .seed(3)
        .run_with(RunOptions::new())
        .unwrap();
    let big = SimulationBuilder::paper_default()
        .vcs(8)
        .traffic(TrafficSpec::Shuffle)
        .injection_rate(0.45)
        .warmup(800)
        .measurement(1_600)
        .seed(3)
        .run_with(RunOptions::new())
        .unwrap();
    assert!(
        big.latency.throughput > small.latency.throughput * 1.2,
        "8 VCs {} vs 2 VCs {}",
        big.latency.throughput,
        small.latency.throughput
    );
}
