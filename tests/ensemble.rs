//! Lane-parallel ensemble simulation is an execution schedule, not a
//! semantic change: every lane of an ensemble sweep must be bit-identical
//! to the same point run standalone, across every routing algorithm, on
//! wrapping and non-wrapping fabrics, under both schedulers. The
//! warm-start snapshot cache carries the same bar — a cache hit must
//! reproduce the cold-start report exactly.

use footprint_core::{RoutingSpec, RunOptions, Scheduler, SimulationBuilder, SweepOptions};

const ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::Footprint,
    RoutingSpec::Dbar,
    RoutingSpec::OddEven,
    RoutingSpec::Dor,
];

const RATES: [f64; 4] = [0.04, 0.08, 0.12, 0.16];

fn fabrics() -> [(&'static str, SimulationBuilder); 2] {
    let configure = |b: SimulationBuilder| {
        b.vcs(4)
            .warmup(150)
            .measurement(300)
            .drain(1_000)
            .seed(29)
    };
    [
        ("mesh:4x4", configure(SimulationBuilder::mesh(4))),
        ("torus:4x4", configure(SimulationBuilder::torus(4))),
    ]
}

/// The full matrix: 4 algorithms × {mesh, torus} × {dense, active}. A
/// four-lane ensemble sweep must equal the sequential single-thread sweep
/// point for point (`Curve` derives `PartialEq` over exact f64 values, and
/// the `Debug` rendering prints shortest-roundtrip floats, so both
/// comparisons are bit-level).
#[test]
fn ensemble_lanes_bit_identical_across_algorithms_fabrics_schedulers() {
    for (fabric, base) in fabrics() {
        for spec in ALGOS {
            for scheduler in [Scheduler::Dense, Scheduler::Active] {
                let sweep = |opts: SweepOptions| {
                    base.clone()
                        .routing(spec)
                        .sweep_with(&RATES, opts.threads(1).scheduler(scheduler))
                        .expect("sweep")
                };
                let sequential = sweep(SweepOptions::new());
                let ensemble = sweep(SweepOptions::new().ensemble(4));
                assert_eq!(
                    format!("{sequential:?}"),
                    format!("{ensemble:?}"),
                    "{}/{fabric}/{scheduler:?}: ensemble lanes diverged from standalone runs",
                    spec.name()
                );
            }
        }
    }
}

/// A warm-start hit replays the cached post-warmup state and must produce
/// the exact report the cold run produced — the cache trades time, never
/// results.
#[test]
fn snapshot_cache_hit_reproduces_cold_start_exactly() {
    let dir = std::env::temp_dir().join(format!("footprint-ensemble-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = || {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .warmup(200)
            .measurement(400)
            .drain(1_000)
            .injection_rate(0.12)
            .seed(41)
            .routing(RoutingSpec::Footprint)
            // Pinned off: the cache is (deliberately) ineligible under the
            // sentinel, and this test must store/hit even on the
            // FOOTPRINT_SENTINEL=1 CI leg.
            .run_with(
                RunOptions::new()
                    .watchdog(20_000)
                    .sentinel(false)
                    .snapshot_cache(&dir),
            )
            .expect("run")
    };
    let cold = run();
    let cached: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir created by the cold run")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        cached.iter().any(|n| n.ends_with(".snap")),
        "cold run stored no snapshot (dir holds {cached:?})"
    );
    let warm = run();
    assert_eq!(
        format!("{cold:?}"),
        format!("{warm:?}"),
        "snapshot-cache hit diverged from the cold-start report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache key includes the injection rate and seed, so sibling sweep
/// points never collide: a four-point ensemble sweep with a shared cache
/// directory stays bit-identical to the uncached sequential sweep on both
/// the cold (store) and warm (hit) passes.
#[test]
fn ensemble_sweep_with_shared_cache_stays_bit_identical() {
    let dir = std::env::temp_dir().join(format!("footprint-ensemble-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = || {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .warmup(150)
            .measurement(300)
            .drain(1_000)
            .seed(53)
            .routing(RoutingSpec::Footprint)
    };
    let reference = base()
        .sweep_with(&RATES, SweepOptions::new().threads(1))
        .expect("reference sweep");
    for pass in ["cold", "warm"] {
        // Sentinel pinned off so the lockstep + cache path runs (rather
        // than falling back) even on the FOOTPRINT_SENTINEL=1 CI leg.
        let curve = base()
            .sweep_with(
                &RATES,
                SweepOptions::new()
                    .threads(1)
                    .sentinel(false)
                    .ensemble(4)
                    .snapshot_cache(&dir),
            )
            .expect("cached ensemble sweep");
        assert_eq!(
            format!("{reference:?}"),
            format!("{curve:?}"),
            "{pass} cached ensemble sweep diverged from the uncached sequential sweep"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
