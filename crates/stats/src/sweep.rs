//! Latency-throughput curves and saturation-throughput extraction.

use core::fmt;

/// One point of a latency-throughput curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered load, flits/node/cycle (the x-axis of Figures 5–7).
    pub offered: f64,
    /// Accepted throughput, flits/node/cycle.
    pub accepted: f64,
    /// Mean packet latency in cycles (the y-axis).
    pub latency: f64,
}

/// Accounting for a partially-completed (checkpointed or resumed) sweep:
/// how many points the full campaign has, how many are done, and how many
/// of those were restored from a checkpoint journal rather than re-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepProgress {
    /// Points in the full sweep.
    pub total: usize,
    /// Points completed (journaled or computed this run).
    pub completed: usize,
    /// Of the completed points, how many were restored from the journal.
    pub resumed: usize,
}

impl SweepProgress {
    /// `true` once every point of the sweep is accounted for.
    pub fn is_complete(&self) -> bool {
        self.completed >= self.total
    }

    /// Points still to run.
    pub fn remaining(&self) -> usize {
        self.total.saturating_sub(self.completed)
    }
}

impl fmt::Display for SweepProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} sweep point(s) complete ({} restored from checkpoint)",
            self.completed, self.total, self.resumed
        )
    }
}

/// How a curve's saturation throughput was determined — or why it could
/// not be.
///
/// [`Curve::saturation_throughput`] collapses all three cases into an
/// `Option<f64>`, which made an unsaturated curve's accepted-throughput
/// plateau indistinguishable from a genuine crossing (and `unwrap_or(0.0)`
/// call sites printed `0.000`, a sentinel that downstream normalization
/// then divided by). This enum keeps the cases apart so reports can say
/// what they actually measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Saturation {
    /// Mean latency crossed `factor ×` zero-load latency at this offered
    /// load (linearly interpolated between the straddling points).
    At(f64),
    /// The curve never saturated in the measured range; the value is the
    /// largest *accepted* throughput observed, a lower bound on the true
    /// saturation point.
    NotReached(f64),
    /// The curve has no points.
    Empty,
}

impl Saturation {
    /// The crossing point, if the curve actually saturated.
    pub fn reached(self) -> Option<f64> {
        match self {
            Saturation::At(x) => Some(x),
            Saturation::NotReached(_) | Saturation::Empty => None,
        }
    }

    /// The best available estimate: the crossing, or the unsaturated
    /// lower bound. `None` only for an empty curve.
    pub fn estimate(self) -> Option<f64> {
        match self {
            Saturation::At(x) | Saturation::NotReached(x) => Some(x),
            Saturation::Empty => None,
        }
    }
}

impl fmt::Display for Saturation {
    /// Renders for report tables: `0.412` for a measured crossing,
    /// `>= 0.412` for an unsaturated lower bound, `n/a` for no data.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Saturation::At(x) => write!(f, "{x:.3}"),
            Saturation::NotReached(x) => write!(f, ">= {x:.3}"),
            Saturation::Empty => f.write_str("n/a"),
        }
    }
}

/// A latency-throughput curve for one (algorithm, workload) pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Curve {
    /// Label (usually the routing-algorithm name).
    pub label: String,
    /// Points in increasing offered-load order.
    pub points: Vec<SweepPoint>,
}

impl Curve {
    /// An empty curve with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Curve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if offered loads are not strictly increasing.
    pub fn push(&mut self, p: SweepPoint) {
        if let Some(last) = self.points.last() {
            assert!(p.offered > last.offered, "offered loads must increase");
        }
        self.points.push(p);
    }

    /// The zero-load latency estimate: the latency of the first point.
    pub fn zero_load_latency(&self) -> Option<f64> {
        self.points.first().map(|p| p.latency)
    }

    /// Saturation throughput: the offered load at which mean latency first
    /// exceeds `factor ×` the zero-load latency, linearly interpolated
    /// between the straddling points. Falls back to the largest *accepted*
    /// throughput when the curve never saturates in the measured range.
    ///
    /// `factor = 3` is the conventional choice and the default used by the
    /// experiment harness.
    pub fn saturation_throughput(&self, factor: f64) -> Option<f64> {
        self.saturation(factor).estimate()
    }

    /// Saturation throughput with the outcome kept explicit (see
    /// [`Saturation`]): a measured crossing, an unsaturated lower bound,
    /// or nothing for an empty curve.
    pub fn saturation(&self, factor: f64) -> Saturation {
        let Some(zero) = self.zero_load_latency() else {
            return Saturation::Empty;
        };
        let threshold = zero * factor;
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.latency <= threshold && b.latency > threshold {
                let t = (threshold - a.latency) / (b.latency - a.latency);
                return Saturation::At(a.offered + t * (b.offered - a.offered));
            }
        }
        if let Some(first) = self.points.first() {
            if first.latency > threshold {
                return Saturation::At(first.offered);
            }
        }
        // Never saturated: the accepted-throughput plateau bounds the
        // crossing from below.
        match self.peak_accepted() {
            Some(peak) => Saturation::NotReached(peak),
            None => Saturation::Empty,
        }
    }

    /// Largest accepted throughput on the curve.
    pub fn peak_accepted(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.accepted)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

impl fmt::Display for Curve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.label)?;
        writeln!(f, "# offered accepted latency")?;
        for p in &self.points {
            writeln!(f, "{:.4} {:.4} {:.2}", p.offered, p.accepted, p.latency)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(offered: f64, accepted: f64, latency: f64) -> SweepPoint {
        SweepPoint {
            offered,
            accepted,
            latency,
        }
    }

    fn rising_curve() -> Curve {
        let mut c = Curve::new("test");
        c.push(pt(0.1, 0.1, 20.0));
        c.push(pt(0.2, 0.2, 22.0));
        c.push(pt(0.3, 0.3, 30.0));
        c.push(pt(0.4, 0.38, 80.0));
        c.push(pt(0.5, 0.39, 400.0));
        c
    }

    #[test]
    fn saturation_interpolates_at_3x_zero_load() {
        let c = rising_curve();
        // zero-load 20, threshold 60: between 0.3 (30) and 0.4 (80).
        let sat = c.saturation_throughput(3.0).unwrap();
        let expected = 0.3 + 0.1 * (60.0 - 30.0) / (80.0 - 30.0);
        assert!((sat - expected).abs() < 1e-9, "{sat} vs {expected}");
    }

    #[test]
    fn unsaturated_curve_reports_accepted_plateau() {
        let mut c = Curve::new("flat");
        c.push(pt(0.1, 0.1, 20.0));
        c.push(pt(0.2, 0.2, 21.0));
        c.push(pt(0.3, 0.3, 22.0));
        assert!((c.saturation_throughput(3.0).unwrap() - 0.3).abs() < 1e-12);
        // The typed API keeps the lower bound distinguishable from a
        // measured crossing.
        let sat = c.saturation(3.0);
        assert_eq!(sat, Saturation::NotReached(0.3));
        assert_eq!(sat.reached(), None);
        assert!((sat.estimate().unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(sat.to_string(), ">= 0.300");
    }

    #[test]
    fn saturation_outcomes_render_distinctly() {
        let crossed = rising_curve().saturation(3.0);
        assert!(matches!(crossed, Saturation::At(_)));
        assert!(crossed.reached().is_some());
        assert!(!crossed.to_string().starts_with(">="));
        let empty = Curve::new("empty").saturation(3.0);
        assert_eq!(empty, Saturation::Empty);
        assert_eq!(empty.reached(), None);
        assert_eq!(empty.estimate(), None);
        assert_eq!(empty.to_string(), "n/a");
    }

    #[test]
    fn empty_curve_has_no_saturation() {
        let c = Curve::new("empty");
        assert_eq!(c.saturation_throughput(3.0), None);
        assert_eq!(c.zero_load_latency(), None);
        assert_eq!(c.peak_accepted(), None);
    }

    #[test]
    fn peak_accepted_is_max() {
        let c = rising_curve();
        assert!((c.peak_accepted().unwrap() - 0.39).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn non_monotonic_offered_rejected() {
        let mut c = Curve::new("bad");
        c.push(pt(0.2, 0.2, 20.0));
        c.push(pt(0.1, 0.1, 20.0));
    }

    #[test]
    fn display_renders_gnuplot_friendly_rows() {
        let c = rising_curve();
        let s = c.to_string();
        assert!(s.contains("# test"));
        assert!(s.contains("0.1000 0.1000 20.00"));
    }

    #[test]
    fn first_point_already_saturated() {
        let mut c = Curve::new("sat");
        c.push(pt(0.4, 0.3, 100.0));
        c.push(pt(0.5, 0.3, 500.0));
        // zero-load = 100 → threshold 300 → crossing between the points.
        let s = c.saturation_throughput(3.0).unwrap();
        assert!(s > 0.4 && s < 0.5);
    }
}
