//! Fault-run accounting: per-class delivery/drop/retry counters plus the
//! reachability deficit a fault plan induced on a finished run.
//!
//! [`FaultStats`] is the run-report-facing summary. It is `Default`-empty —
//! a fault-free run carries an all-zero value, so embedding it in a report
//! struct does not perturb equality comparisons between pre-fault and
//! post-fault builds.

use footprint_sim::Network;
use footprint_topology::NodeId;

/// Packet disposition for one traffic class under the active fault state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassFaultCounts {
    /// Traffic class.
    pub class: u8,
    /// Packets generated (includes dropped and in-flight ones).
    pub generated: u64,
    /// Packets fully ejected at their destination.
    pub delivered: u64,
    /// Packets dropped at the source because their destination was
    /// unreachable (after exhausting retries, if any).
    pub dropped: u64,
    /// Source-retry attempts scheduled under a retry policy.
    pub retry_attempts: u64,
}

/// Fault accounting for one run: per-class disposition counters, the set of
/// source→destination pairs observed unreachable, and any retries still
/// parked at sources when the run ended.
///
/// An all-[`Default`] value means "no fault effects observed" — which is
/// exactly what a run with an empty [`FaultPlan`](footprint_topology::FaultPlan)
/// produces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Per-class counters, indexed by class id.
    pub classes: Vec<ClassFaultCounts>,
    /// Source→destination pairs for which generation was observed while the
    /// routing function could not reach the destination. Sorted,
    /// deduplicated.
    pub unreachable_pairs: Vec<(NodeId, NodeId)>,
    /// Packets still parked for retry when the run ended (nonzero means the
    /// run stopped before the retry queue drained).
    pub parked_retries: usize,
}

impl FaultStats {
    /// Snapshots the fault accounting of a network after a run.
    pub fn collect(net: &Network) -> Self {
        let m = net.metrics();
        let mut classes = Vec::with_capacity(m.num_classes());
        for c in 0..m.num_classes() {
            let class = c as u8;
            let cs = m.class(class);
            classes.push(ClassFaultCounts {
                class,
                generated: cs.generated_packets,
                delivered: cs.ejected_packets,
                dropped: cs.dropped_packets,
                retry_attempts: cs.retry_attempts,
            });
        }
        FaultStats {
            classes,
            unreachable_pairs: net.unreachable_pairs(),
            parked_retries: net.parked_retries(),
        }
    }

    /// Total packets delivered across classes.
    pub fn delivered(&self) -> u64 {
        self.classes.iter().map(|c| c.delivered).sum()
    }

    /// Total packets dropped across classes.
    pub fn dropped(&self) -> u64 {
        self.classes.iter().map(|c| c.dropped).sum()
    }

    /// Total retry attempts across classes.
    pub fn retry_attempts(&self) -> u64 {
        self.classes.iter().map(|c| c.retry_attempts).sum()
    }

    /// Total packets generated across classes.
    pub fn generated(&self) -> u64 {
        self.classes.iter().map(|c| c.generated).sum()
    }

    /// `true` when the run saw no fault effects at all: nothing dropped,
    /// nothing parked, no unreachable pair observed.
    pub fn is_clean(&self) -> bool {
        self.dropped() == 0 && self.parked_retries == 0 && self.unreachable_pairs.is_empty()
    }

    /// `true` when every generated packet is accounted for as delivered or
    /// dropped — the invariant a fully drained faulted run must satisfy
    /// (in-flight packets make this `false`, which is expected mid-run).
    ///
    /// The counters come from the measurement window: a run with a nonzero
    /// warmup has warmup-born packets draining into the window (delivered
    /// without being counted as generated), so delivery-accounting checks
    /// should measure the whole run (warmup 0) and drain to quiescence.
    pub fn fully_accounted(&self) -> bool {
        self.parked_retries == 0
            && self
                .classes
                .iter()
                .all(|c| c.generated == c.delivered + c.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_routing::RoutingSpec;
    use footprint_sim::{
        FlowSet, Network, NoTraffic, SimConfig, SingleFlow, UnreachablePolicy,
    };
    use footprint_topology::{Direction, FaultEvent, FaultPlan};

    #[test]
    fn default_is_clean_and_empty() {
        let s = FaultStats::default();
        assert!(s.is_clean());
        assert!(s.fully_accounted());
        assert_eq!(s.generated(), 0);
        assert_eq!(s, FaultStats::default());
    }

    #[test]
    fn fault_free_run_collects_clean_stats() {
        let mut net = Network::new(SimConfig::small(), RoutingSpec::Dbar.build(), 7).unwrap();
        let mut flow = FlowSet::new(vec![SingleFlow {
            src: NodeId(0),
            dest: NodeId(15),
            rate: 0.4,
            size: 2,
        }]);
        net.run(&mut flow, 300);
        net.run(&mut NoTraffic, 300);
        let s = FaultStats::collect(&net);
        assert!(s.is_clean());
        assert!(s.fully_accounted());
        assert!(s.delivered() > 0);
    }

    #[test]
    fn cut_row_drops_with_full_accounting() {
        // n0→n3 on the bottom row with the n0↔n1 link cut is unreachable
        // even for adaptive routing: every packet must be dropped, and a
        // drained run accounts for all of them.
        let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(0), Direction::East, 0));
        let mut net = Network::with_faults(
            SimConfig::small(),
            RoutingSpec::Footprint.build(),
            11,
            plan,
            UnreachablePolicy::Drop,
        )
        .unwrap();
        let mut flow = FlowSet::new(vec![SingleFlow {
            src: NodeId(0),
            dest: NodeId(3),
            rate: 0.5,
            size: 2,
        }]);
        net.run(&mut flow, 200);
        net.run(&mut NoTraffic, 200);
        let s = FaultStats::collect(&net);
        assert!(!s.is_clean());
        assert!(s.fully_accounted());
        assert_eq!(s.delivered(), 0);
        assert!(s.dropped() > 0);
        assert_eq!(
            s.unreachable_pairs,
            vec![(NodeId(0), NodeId(3))],
            "exactly the cut pair is recorded"
        );
    }
}
