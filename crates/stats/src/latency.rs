//! Streaming latency statistics and histograms.

use core::fmt;

/// Streaming mean/variance/min/max over `u64` samples (Welford's method).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: u64,
    max: u64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: u64) {
        self.n += 1;
        let xf = x as f64;
        let d = xf - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (xf - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += d * other.n as f64 / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={} max={}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min().unwrap_or(0),
            self.max().unwrap_or(0)
        )
    }
}

/// A fixed-width latency histogram with an overflow bucket, for latency
/// distribution reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` cycles.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0, "empty histogram shape");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: u64) {
        let idx = (x / self.bucket_width) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bucket `i` (samples in `[i*w, (i+1)*w)`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Latency below which `q` of the samples fall (`q` in `[0,1]`),
    /// resolved to bucket granularity. `None` when empty or when the
    /// quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        // At least one sample must be covered, so `q = 0` resolves to the
        // first non-empty bucket instead of always the first bucket (which
        // would wrongly return a value for all-overflow histograms).
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return Some((i as u64 + 1) * self.bucket_width);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2u64, 4, 6] {
            s.push(x);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.max(), Some(6));
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<u64> = (0..50).map(|i| (i * 13) % 97).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3);
        for x in [0u64, 9, 10, 29, 30, 1000] {
            h.push(x);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(10, 10);
        for x in 0..100u64 {
            h.push(x);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(100));
        let empty = Histogram::new(10, 10);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let empty = Histogram::new(10, 4);
        assert_eq!(empty.total(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), None, "q={q}");
        }
    }

    #[test]
    fn all_overflow_histogram_has_no_quantiles() {
        let mut h = Histogram::new(10, 4);
        for _ in 0..7 {
            h.push(1_000_000);
        }
        assert_eq!(h.overflow(), 7);
        assert_eq!(h.total(), 7);
        // Every sample is beyond bucket resolution, so no quantile can be
        // resolved — including the degenerate q = 0.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
    }

    #[test]
    fn zero_quantile_resolves_to_first_nonempty_bucket() {
        let mut h = Histogram::new(10, 4);
        h.push(25); // bucket 2
        assert_eq!(h.quantile(0.0), Some(30));
    }

    #[test]
    #[should_panic(expected = "empty histogram shape")]
    fn zero_width_panics() {
        let _ = Histogram::new(0, 4);
    }
}
