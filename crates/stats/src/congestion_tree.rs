//! Congestion-tree extraction and branch-thickness analysis (the paper's
//! §1/§2 metric: the number of VCs contributing to one destination's
//! congestion tree).

use footprint_sim::OccupiedVcEntry;
use footprint_topology::NodeId;
use std::collections::BTreeMap;

/// The congestion tree of a single destination: all buffered VCs holding at
/// least one flit to that destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionTree {
    /// The tree's root destination.
    pub dest: NodeId,
    /// Number of distinct physical channels (router input ports) involved —
    /// the *branches* of the tree.
    pub links: usize,
    /// Number of VCs involved — branches × thickness.
    pub vcs: usize,
    /// Flits buffered for this destination.
    pub flits: usize,
}

impl CongestionTree {
    /// Mean branch thickness in VCs per link (the paper's thin-vs-thick
    /// branch measure). 0 for an empty tree.
    pub fn thickness(&self) -> f64 {
        if self.links == 0 {
            0.0
        } else {
            self.vcs as f64 / self.links as f64
        }
    }
}

/// Analysis over a full occupancy snapshot.
#[derive(Debug, Clone, Default)]
pub struct TreeAnalysis {
    trees: BTreeMap<u16, CongestionTree>,
    /// Total occupied VCs in the snapshot (any destination).
    pub occupied_vcs: usize,
}

impl TreeAnalysis {
    /// Builds per-destination congestion trees from an occupancy snapshot.
    pub fn from_snapshot(snapshot: &[OccupiedVcEntry]) -> Self {
        let mut trees: BTreeMap<u16, CongestionTree> = BTreeMap::new();
        // (dest, node, port) triples already seen, to count links once.
        let mut seen_links = std::collections::BTreeSet::new();
        let mut occupied = 0;
        for e in snapshot {
            occupied += 1;
            let mut per_entry: BTreeMap<u16, usize> = BTreeMap::new();
            for d in &e.dests {
                *per_entry.entry(d.0).or_insert(0) += 1;
            }
            for (dest, flits) in per_entry {
                let t = trees.entry(dest).or_insert(CongestionTree {
                    dest: NodeId(dest),
                    links: 0,
                    vcs: 0,
                    flits: 0,
                });
                t.vcs += 1;
                t.flits += flits;
                if seen_links.insert((dest, e.node.0, e.in_port.index() as u8)) {
                    t.links += 1;
                }
            }
        }
        TreeAnalysis {
            trees,
            occupied_vcs: occupied,
        }
    }

    /// The tree rooted at `dest`, if any traffic to it is buffered.
    pub fn tree(&self, dest: NodeId) -> Option<&CongestionTree> {
        self.trees.get(&dest.0)
    }

    /// All trees, largest (by VCs) first.
    pub fn trees_by_size(&self) -> Vec<&CongestionTree> {
        let mut v: Vec<_> = self.trees.values().collect();
        v.sort_by(|a, b| b.vcs.cmp(&a.vcs).then(a.dest.cmp(&b.dest)));
        v
    }

    /// The largest tree.
    pub fn largest(&self) -> Option<&CongestionTree> {
        self.trees_by_size().into_iter().next()
    }

    /// Number of distinct destination trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::{Direction, Port};

    fn entry(node: u16, port: Port, vc: u8, dests: &[u16]) -> OccupiedVcEntry {
        OccupiedVcEntry {
            node: NodeId(node),
            in_port: port,
            vc,
            dests: dests.iter().map(|&d| NodeId(d)).collect(),
        }
    }

    #[test]
    fn thick_branch_counts_vcs_per_link() {
        // One link (n1, West) with 3 VCs to dest 13 → thickness 3.
        let west = Port::Dir(Direction::West);
        let snap = vec![
            entry(1, west, 0, &[13]),
            entry(1, west, 1, &[13, 13]),
            entry(1, west, 2, &[13]),
        ];
        let a = TreeAnalysis::from_snapshot(&snap);
        let t = a.tree(NodeId(13)).unwrap();
        assert_eq!(t.links, 1);
        assert_eq!(t.vcs, 3);
        assert_eq!(t.flits, 4);
        assert!((t.thickness() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn thin_branches_across_links() {
        // Three links, one VC each → thickness 1.
        let snap = vec![
            entry(1, Port::Dir(Direction::West), 0, &[13]),
            entry(2, Port::Dir(Direction::West), 1, &[13]),
            entry(3, Port::Dir(Direction::South), 2, &[13]),
        ];
        let a = TreeAnalysis::from_snapshot(&snap);
        let t = a.tree(NodeId(13)).unwrap();
        assert_eq!(t.links, 3);
        assert_eq!(t.vcs, 3);
        assert!((t.thickness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_destinations_split_into_trees() {
        let snap = vec![
            entry(1, Port::Dir(Direction::West), 0, &[13, 10]),
            entry(1, Port::Dir(Direction::West), 1, &[10]),
        ];
        let a = TreeAnalysis::from_snapshot(&snap);
        assert_eq!(a.tree_count(), 2);
        assert_eq!(a.tree(NodeId(13)).unwrap().vcs, 1);
        assert_eq!(a.tree(NodeId(10)).unwrap().vcs, 2);
        assert_eq!(a.largest().unwrap().dest, NodeId(10));
        assert_eq!(a.occupied_vcs, 2);
    }

    #[test]
    fn empty_snapshot_has_no_trees() {
        let a = TreeAnalysis::from_snapshot(&[]);
        assert_eq!(a.tree_count(), 0);
        assert!(a.largest().is_none());
        assert_eq!(a.occupied_vcs, 0);
    }

    #[test]
    fn trees_by_size_orders_descending() {
        let snap = vec![
            entry(1, Port::Dir(Direction::West), 0, &[5]),
            entry(2, Port::Dir(Direction::West), 0, &[9]),
            entry(2, Port::Dir(Direction::West), 1, &[9]),
        ];
        let a = TreeAnalysis::from_snapshot(&snap);
        let ordered = a.trees_by_size();
        assert_eq!(ordered[0].dest, NodeId(9));
        assert_eq!(ordered[1].dest, NodeId(5));
    }
}
