//! Blocking-purity tracking (§4.3, Figure 10(b)/(c)).
//!
//! The paper tracks 10,000 packets per trace and measures the *purity of
//! blocking*: of the busy VCs a blocked packet saw, what fraction were
//! footprint VCs (same destination)? High purity means blocking is benign
//! (waiting behind your own flow); low purity means HoL blocking by other
//! flows. The *degree of HoL blocking* multiplies impurity by how often
//! blocking occurred.

use footprint_sim::{EjectedPacket, PacketId, Probe, VaBlockInfo};
use std::collections::HashMap;

/// A [`Probe`] that tracks blocking purity for the first `limit` packets
/// that experience blocking (the paper tracks 10,000).
#[derive(Debug)]
pub struct PurityProbe {
    limit: usize,
    per_packet: HashMap<PacketId, (u64, f64, u64)>, // (blocks, purity_sum, purity_events)
    ejected: u64,
    total_blocks: u64,
}

impl PurityProbe {
    /// Tracks up to `limit` distinct blocked packets.
    pub fn new(limit: usize) -> Self {
        PurityProbe {
            limit,
            per_packet: HashMap::new(),
            ejected: 0,
            total_blocks: 0,
        }
    }

    /// The paper's configuration: 10,000 tracked packets.
    pub fn paper() -> Self {
        Self::new(10_000)
    }

    /// Number of distinct packets that experienced blocking (capped).
    pub fn tracked(&self) -> usize {
        self.per_packet.len()
    }

    /// Total blocking events seen (uncapped).
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Packets ejected while the probe was attached.
    pub fn ejected(&self) -> u64 {
        self.ejected
    }

    /// Mean blocking purity over tracked packets (each packet contributes
    /// its own mean purity; packets whose blocks never saw a busy VC are
    /// skipped).
    pub fn mean_purity(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(_, purity_sum, events) in self.per_packet.values() {
            if events > 0 {
                sum += purity_sum / events as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Degree of HoL blocking: impurity × blocking events per tracked
    /// packet (Figure 10(c)).
    pub fn hol_degree(&self) -> f64 {
        let tracked = self.per_packet.len();
        if tracked == 0 {
            return 0.0;
        }
        let blocks: u64 = self.per_packet.values().map(|&(b, _, _)| b).sum();
        (1.0 - self.mean_purity()) * blocks as f64 / tracked as f64
    }
}

impl Probe for PurityProbe {
    fn va_blocked(&mut self, info: &VaBlockInfo) {
        self.total_blocks += 1;
        let full = self.per_packet.len() >= self.limit;
        let entry = match self.per_packet.get_mut(&info.packet) {
            Some(e) => e,
            None if full => return,
            None => self.per_packet.entry(info.packet).or_insert((0, 0.0, 0)),
        };
        entry.0 += 1;
        if let Some(p) = info.purity() {
            entry.1 += p;
            entry.2 += 1;
        }
    }

    fn packet_ejected(&mut self, _packet: &EjectedPacket) {
        self.ejected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::NodeId;

    fn block(packet: u64, fp: u32, busy: u32) -> VaBlockInfo {
        VaBlockInfo {
            node: NodeId(0),
            packet: PacketId(packet),
            dest: NodeId(1),
            class: 0,
            footprint_vcs: fp,
            busy_vcs: busy,
        }
    }

    #[test]
    fn purity_averages_per_packet_then_across_packets() {
        let mut p = PurityProbe::new(10);
        // Packet 1: purities 1.0 and 0.0 → mean 0.5.
        p.va_blocked(&block(1, 4, 4));
        p.va_blocked(&block(1, 0, 4));
        // Packet 2: purity 1.0.
        p.va_blocked(&block(2, 2, 2));
        assert_eq!(p.tracked(), 2);
        assert!((p.mean_purity() - 0.75).abs() < 1e-12);
        assert_eq!(p.total_blocks(), 3);
    }

    #[test]
    fn hol_degree_combines_impurity_and_block_rate() {
        let mut p = PurityProbe::new(10);
        p.va_blocked(&block(1, 0, 4)); // purity 0
        p.va_blocked(&block(1, 0, 4));
        // 2 blocks over 1 tracked packet, impurity 1.0 → degree 2.0.
        assert!((p.hol_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn limit_caps_tracked_packets_but_not_block_count() {
        let mut p = PurityProbe::new(2);
        for pkt in 0..5 {
            p.va_blocked(&block(pkt, 1, 2));
        }
        assert_eq!(p.tracked(), 2);
        assert_eq!(p.total_blocks(), 5);
        // Existing packets keep accumulating past the cap.
        p.va_blocked(&block(0, 1, 2));
        assert_eq!(p.total_blocks(), 6);
    }

    #[test]
    fn empty_probe_is_zero() {
        let p = PurityProbe::paper();
        assert_eq!(p.mean_purity(), 0.0);
        assert_eq!(p.hol_degree(), 0.0);
        assert_eq!(p.ejected(), 0);
    }
}
