//! Congestion-tree time series: how a destination's tree grows, migrates
//! and collapses over a run — the dynamic view behind the paper's §4.2.5
//! observation that Footprint "could postpone but not prevent the formation
//! of the congestion tree".

use crate::TreeAnalysis;
use footprint_sim::OccupiedVcEntry;
use footprint_topology::NodeId;

/// One sample of a destination's congestion tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeSample {
    /// Cycle the snapshot was taken.
    pub cycle: u64,
    /// Links in the tree.
    pub links: usize,
    /// VCs in the tree.
    pub vcs: usize,
    /// Flits buffered for the destination.
    pub flits: usize,
}

/// Records the evolution of one destination's congestion tree across
/// periodic snapshots.
///
/// ```
/// use footprint_stats::TreeTimeline;
/// use footprint_topology::NodeId;
///
/// let mut tl = TreeTimeline::new(NodeId(13));
/// tl.record(100, &[]); // sample from Network::occupancy_snapshot()
/// assert_eq!(tl.len(), 1);
/// assert_eq!(tl.peak_vcs(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TreeTimeline {
    dest: NodeId,
    samples: Vec<TreeSample>,
}

impl TreeTimeline {
    /// A timeline for the tree rooted at `dest`.
    pub fn new(dest: NodeId) -> Self {
        TreeTimeline {
            dest,
            samples: Vec::new(),
        }
    }

    /// The tracked destination.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Adds a sample from an occupancy snapshot taken at `cycle`.
    pub fn record(&mut self, cycle: u64, snapshot: &[OccupiedVcEntry]) {
        let analysis = TreeAnalysis::from_snapshot(snapshot);
        let (links, vcs, flits) = analysis
            .tree(self.dest)
            .map_or((0, 0, 0), |t| (t.links, t.vcs, t.flits));
        if let Some(last) = self.samples.last() {
            assert!(cycle > last.cycle, "samples must advance in time");
        }
        self.samples.push(TreeSample {
            cycle,
            links,
            vcs,
            flits,
        });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` before any sample is recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples, in time order.
    pub fn samples(&self) -> &[TreeSample] {
        &self.samples
    }

    /// Largest VC count any sample saw.
    pub fn peak_vcs(&self) -> usize {
        self.samples.iter().map(|s| s.vcs).max().unwrap_or(0)
    }

    /// Mean VC count across samples (tree "steady size").
    pub fn mean_vcs(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|s| s.vcs).sum::<usize>() as f64 / self.samples.len() as f64
        }
    }

    /// First cycle at which the tree reached `vcs` VCs, if it ever did —
    /// the tree-formation delay that Footprint postpones.
    pub fn first_reached(&self, vcs: usize) -> Option<u64> {
        self.samples.iter().find(|s| s.vcs >= vcs).map(|s| s.cycle)
    }

    /// Growth rate between the first and the peak sample, VCs per kilocycle
    /// (0 for flat or empty timelines).
    pub fn growth_rate(&self) -> f64 {
        let Some(first) = self.samples.first() else {
            return 0.0;
        };
        let Some(peak) = self
            .samples
            .iter()
            .max_by_key(|s| (s.vcs, std::cmp::Reverse(s.cycle)))
        else {
            return 0.0;
        };
        if peak.cycle <= first.cycle || peak.vcs <= first.vcs {
            return 0.0;
        }
        (peak.vcs - first.vcs) as f64 * 1000.0 / (peak.cycle - first.cycle) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::{Direction, Port};

    fn entry(node: u16, vc: u8, dests: &[u16]) -> OccupiedVcEntry {
        OccupiedVcEntry {
            node: NodeId(node),
            in_port: Port::Dir(Direction::West),
            vc,
            dests: dests.iter().map(|&d| NodeId(d)).collect(),
        }
    }

    #[test]
    fn timeline_tracks_growth() {
        let mut tl = TreeTimeline::new(NodeId(13));
        tl.record(100, &[]);
        tl.record(200, &[entry(1, 0, &[13])]);
        tl.record(300, &[entry(1, 0, &[13]), entry(1, 1, &[13, 13])]);
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.peak_vcs(), 2);
        assert!((tl.mean_vcs() - 1.0).abs() < 1e-12);
        assert_eq!(tl.first_reached(1), Some(200));
        assert_eq!(tl.first_reached(2), Some(300));
        assert_eq!(tl.first_reached(3), None);
        // 2 VCs gained over 200 cycles → 10 VCs/kcycle.
        assert!((tl.growth_rate() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn other_destinations_are_ignored() {
        let mut tl = TreeTimeline::new(NodeId(13));
        tl.record(50, &[entry(1, 0, &[9]), entry(2, 1, &[9, 13])]);
        assert_eq!(tl.samples()[0].vcs, 1);
        assert_eq!(tl.samples()[0].flits, 1);
    }

    #[test]
    fn flat_timeline_has_zero_growth() {
        let mut tl = TreeTimeline::new(NodeId(13));
        tl.record(10, &[entry(1, 0, &[13])]);
        tl.record(20, &[entry(1, 0, &[13])]);
        assert_eq!(tl.growth_rate(), 0.0);
        assert_eq!(TreeTimeline::new(NodeId(0)).growth_rate(), 0.0);
        assert!(TreeTimeline::new(NodeId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "advance in time")]
    fn non_monotonic_samples_rejected() {
        let mut tl = TreeTimeline::new(NodeId(13));
        tl.record(100, &[]);
        tl.record(100, &[]);
    }
}
