//! Measurement and analysis for the Footprint NoC reproduction.
//!
//! * [`OnlineStats`] / [`Histogram`] — streaming latency statistics.
//! * [`Curve`] — latency-throughput curves with the conventional
//!   3×-zero-load saturation-throughput extraction used by Figures 5–8.
//! * [`TreeAnalysis`] — congestion-tree extraction from simulator
//!   occupancy snapshots: branch count and VC thickness per destination
//!   (the paper's thin-vs-thick branch measure, Figure 2).
//! * [`PurityProbe`] — blocking purity and HoL-blocking degree over tracked
//!   packets (§4.3, Figure 10(b)/(c)).
//! * [`Table`] — plain-text table rendering for the experiment binaries.
//!
//! # Example
//!
//! ```
//! use footprint_stats::{Curve, SweepPoint};
//!
//! let mut curve = Curve::new("footprint");
//! for (o, a, l) in [(0.1, 0.1, 20.0), (0.3, 0.3, 35.0), (0.5, 0.42, 300.0)] {
//!     curve.push(SweepPoint { offered: o, accepted: a, latency: l });
//! }
//! let sat = curve.saturation_throughput(3.0).unwrap();
//! assert!(sat > 0.3 && sat < 0.5);
//! ```

#![warn(missing_docs)]

mod congestion_tree;
mod fault_stats;
mod latency;
mod observers;
mod probes;
mod purity;
mod resilience;
mod sweep;
pub mod table;
mod tenant;
mod timeline;

pub use congestion_tree::{CongestionTree, TreeAnalysis};
pub use fault_stats::{ClassFaultCounts, FaultStats};
pub use latency::{Histogram, OnlineStats};
pub use observers::{MeshSample, RouterSample, TimelineProbe};
pub use probes::{load_balance, LatencyHistogramProbe, LoadBalance};
pub use purity::PurityProbe;
pub use resilience::{PartitionReport, RecoveryStats};
pub use sweep::{Curve, Saturation, SweepPoint, SweepProgress};
pub use tenant::{TenantProbe, TenantSummary, WindowCounts};
pub use timeline::{TreeSample, TreeTimeline};
pub use table::Table;
