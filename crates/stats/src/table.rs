//! Plain-text table rendering for the experiment binaries (the harness
//! prints the same rows the paper's tables/figures report).

use core::fmt::Write as _;

/// A simple left-padded ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{cell:>w$}{sep}", w = widths[i]);
            }
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting; intended for numeric experiment output).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float with 3 decimal places (helper for table rows).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a ratio as a signed percentage ("+43.0%").
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["algo", "throughput"]);
        t.row(["footprint", "0.43"]);
        t.row(["dor", "0.3"]);
        let s = t.render();
        assert!(s.contains("algo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width (right-aligned columns).
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn numeric_formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f1(12.34), "12.3");
        assert_eq!(pct(0.43), "+43.0%");
        assert_eq!(pct(-0.015), "-1.5%");
    }
}
