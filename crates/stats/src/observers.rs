//! Timeline subscribers for the simulator's probe bus: per-mesh and
//! per-router occupancy / link-utilization time series sampled on a
//! configurable stride, with CSV exporters for the `results/` directory.

use std::io::{self, Write};

use crate::timeline::TreeTimeline;
use footprint_sim::{Network, OccupiedVcEntry, Probe};
use footprint_topology::NodeId;

/// One mesh-wide timeline sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshSample {
    /// Cycle the sample was taken.
    pub cycle: u64,
    /// Flits buffered across all router inputs.
    pub buffered_flits: usize,
    /// Input VCs holding at least one flit.
    pub occupied_vcs: usize,
    /// Flits launched onto links since the previous sample (all channels).
    pub link_flits: u64,
}

/// One per-router timeline row (only routers holding flits are recorded —
/// the series is sparse, long-format: `cycle,node,buffered,occupied_vcs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSample {
    /// Cycle the sample was taken.
    pub cycle: u64,
    /// The router.
    pub node: NodeId,
    /// Flits buffered at this router's inputs.
    pub buffered_flits: usize,
    /// Input VCs holding at least one flit.
    pub occupied_vcs: usize,
}

/// A [`Probe`] that samples network occupancy and link utilization every
/// `stride` cycles, building mesh-wide and (optionally) per-router
/// timelines plus congestion-tree series for tracked destinations.
///
/// The probe leaves [`Probe::wants_flit_events`] at `false`: it costs one
/// no-op virtual call per cycle off-stride, and one occupancy snapshot
/// (into a reused scratch buffer) on-stride.
#[derive(Debug)]
pub struct TimelineProbe {
    stride: u64,
    per_router: bool,
    scratch: Vec<OccupiedVcEntry>,
    mesh: Vec<MeshSample>,
    routers: Vec<RouterSample>,
    trees: Vec<TreeTimeline>,
    last_link_flits: u64,
}

impl TimelineProbe {
    /// A probe sampling every `stride` cycles (mesh-wide series only).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: u64) -> Self {
        assert!(stride > 0, "sampling stride must be positive");
        TimelineProbe {
            stride,
            per_router: false,
            scratch: Vec::new(),
            mesh: Vec::new(),
            routers: Vec::new(),
            trees: Vec::new(),
            last_link_flits: 0,
        }
    }

    /// Also records the sparse per-router series.
    pub fn with_router_rows(mut self) -> Self {
        self.per_router = true;
        self
    }

    /// Also tracks the congestion tree rooted at `dest` (repeatable).
    pub fn with_tree(mut self, dest: NodeId) -> Self {
        self.trees.push(TreeTimeline::new(dest));
        self
    }

    /// The sampling stride in cycles.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The mesh-wide samples, in time order.
    pub fn mesh_samples(&self) -> &[MeshSample] {
        &self.mesh
    }

    /// The per-router rows (empty unless [`Self::with_router_rows`]).
    pub fn router_samples(&self) -> &[RouterSample] {
        &self.routers
    }

    /// The tracked congestion-tree timelines.
    pub fn trees(&self) -> &[TreeTimeline] {
        &self.trees
    }

    /// Writes the mesh-wide series as CSV
    /// (`cycle,buffered_flits,occupied_vcs,link_flits`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_mesh_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "cycle,buffered_flits,occupied_vcs,link_flits")?;
        for s in &self.mesh {
            writeln!(
                w,
                "{},{},{},{}",
                s.cycle, s.buffered_flits, s.occupied_vcs, s.link_flits
            )?;
        }
        Ok(())
    }

    /// Writes the per-router series as long-format CSV
    /// (`cycle,node,buffered_flits,occupied_vcs`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_router_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "cycle,node,buffered_flits,occupied_vcs")?;
        for s in &self.routers {
            writeln!(
                w,
                "{},{},{},{}",
                s.cycle,
                s.node.index(),
                s.buffered_flits,
                s.occupied_vcs
            )?;
        }
        Ok(())
    }

    /// Writes the mesh-wide CSV to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_mesh_csv(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_mesh_csv(&mut f)?;
        f.flush()
    }

    /// Writes the per-router CSV to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_router_csv(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_router_csv(&mut f)?;
        f.flush()
    }
}

impl Probe for TimelineProbe {
    fn sample(&mut self, cycle: u64, net: &Network) {
        if !cycle.is_multiple_of(self.stride) {
            return;
        }
        net.occupancy_snapshot_into(&mut self.scratch);
        let buffered: usize = self.scratch.iter().map(|e| e.dests.len()).sum();
        let total_link_flits: u64 = net.channel_loads().iter().map(|&(_, _, f)| f).sum();
        self.mesh.push(MeshSample {
            cycle,
            buffered_flits: buffered,
            occupied_vcs: self.scratch.len(),
            link_flits: total_link_flits - self.last_link_flits,
        });
        self.last_link_flits = total_link_flits;
        if self.per_router {
            // The snapshot is grouped by router, so one linear pass folds
            // consecutive entries into per-router rows.
            let mut i = 0;
            while i < self.scratch.len() {
                let node = self.scratch[i].node;
                let (mut flits, mut vcs) = (0usize, 0usize);
                while i < self.scratch.len() && self.scratch[i].node == node {
                    flits += self.scratch[i].dests.len();
                    vcs += 1;
                    i += 1;
                }
                self.routers.push(RouterSample {
                    cycle,
                    node,
                    buffered_flits: flits,
                    occupied_vcs: vcs,
                });
            }
        }
        for tree in &mut self.trees {
            tree.record(cycle, &self.scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_routing::RoutingSpec;
    use footprint_sim::{FlowSet, Network, SimConfig, SingleFlow};

    fn hotspot_net() -> (Network, FlowSet) {
        let net = Network::new(SimConfig::small(), RoutingSpec::Footprint.build(), 11).unwrap();
        let wl = FlowSet::new(vec![
            SingleFlow {
                src: NodeId(0),
                dest: NodeId(5),
                rate: 1.0,
                size: 1,
            },
            SingleFlow {
                src: NodeId(10),
                dest: NodeId(5),
                rate: 1.0,
                size: 1,
            },
        ]);
        (net, wl)
    }

    #[test]
    fn stride_controls_sample_count() {
        let (mut net, mut wl) = hotspot_net();
        let mut tl = TimelineProbe::new(25);
        net.run_probed(&mut wl, 200, &mut tl);
        // Cycles 0, 25, ..., 175.
        assert_eq!(tl.mesh_samples().len(), 8);
        let cycles: Vec<u64> = tl.mesh_samples().iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![0, 25, 50, 75, 100, 125, 150, 175]);
    }

    #[test]
    fn oversubscription_shows_up_in_the_series() {
        let (mut net, mut wl) = hotspot_net();
        let mut tl = TimelineProbe::new(50).with_router_rows().with_tree(NodeId(5));
        net.run_probed(&mut wl, 400, &mut tl);
        let last = tl.mesh_samples().last().unwrap();
        assert!(last.buffered_flits > 0, "hotspot must back up");
        assert!(last.link_flits > 0, "links must carry traffic");
        // Per-router rows exist and sum to the mesh totals per cycle.
        let per_router: usize = tl
            .router_samples()
            .iter()
            .filter(|r| r.cycle == last.cycle)
            .map(|r| r.buffered_flits)
            .sum();
        assert_eq!(per_router, last.buffered_flits);
        // The hotspot's congestion tree grew.
        assert_eq!(tl.trees().len(), 1);
        assert!(tl.trees()[0].peak_vcs() > 0);
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let (mut net, mut wl) = hotspot_net();
        let mut tl = TimelineProbe::new(50).with_router_rows();
        net.run_probed(&mut wl, 200, &mut tl);
        let mut mesh = Vec::new();
        tl.write_mesh_csv(&mut mesh).unwrap();
        let mesh = String::from_utf8(mesh).unwrap();
        assert!(mesh.starts_with("cycle,buffered_flits,occupied_vcs,link_flits\n"));
        assert_eq!(mesh.lines().count(), tl.mesh_samples().len() + 1);
        let mut routers = Vec::new();
        tl.write_router_csv(&mut routers).unwrap();
        let routers = String::from_utf8(routers).unwrap();
        assert!(routers.starts_with("cycle,node,buffered_flits,occupied_vcs\n"));
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = TimelineProbe::new(0);
    }
}
