//! Resilience reporting for faulted runs: partition history and recovery
//! observations, snapshotted off a finished [`Network`] into plain report
//! data.
//!
//! Both types follow the [`FaultStats`](crate::FaultStats) convention: a
//! `Default` value means "no effects observed", which is exactly what a
//! run without a fault plan produces — so embedding them in a report
//! struct does not perturb equality comparisons between pre-fault and
//! post-fault builds.

use footprint_sim::{AvailabilityWindow, Network, PartitionEpoch, TtrRecord};

/// The connectivity history of a faulted run: one [`PartitionEpoch`] per
/// distinct component structure the fault schedule produced, in onset
/// order. A run on a healthy fabric (or with an empty plan) carries no
/// epochs at all; a run whose plan never partitions the fabric carries
/// only single-component epochs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionReport {
    /// Component structures in onset order (first epoch = the healthy
    /// baseline recorded when the plan attaches).
    pub epochs: Vec<PartitionEpoch>,
}

impl PartitionReport {
    /// Snapshots the partition history of a network after a run.
    pub fn collect(net: &Network) -> Self {
        PartitionReport {
            epochs: net.fault_state().partition_history().to_vec(),
        }
    }

    /// `true` if any epoch split the fabric into more than one component.
    pub fn was_partitioned(&self) -> bool {
        self.epochs.iter().any(PartitionEpoch::is_partitioned)
    }

    /// The largest component count any epoch reached (0 for an empty
    /// history).
    pub fn max_components(&self) -> usize {
        self.epochs.iter().map(|e| e.components.len()).max().unwrap_or(0)
    }

    /// The component count of the final epoch (0 for an empty history) —
    /// the connectivity the run ended under.
    pub fn final_components(&self) -> usize {
        self.epochs.last().map_or(0, |e| e.components.len())
    }

    /// `true` when every epoch's components jointly cover exactly `nodes`
    /// endpoints — the completeness check a partition-aware run report
    /// must satisfy (vacuously true for an empty history).
    pub fn covers_all_nodes(&self, nodes: usize) -> bool {
        self.epochs.iter().all(|e| e.node_count() == nodes)
    }
}

/// Recovery observations for a faulted run: completed time-to-recover
/// records, any repair still awaiting its backlog drain, and the windowed
/// availability timeline. Collected from the network's
/// [`RecoveryTracker`](footprint_sim::RecoveryTracker); all-`Default`
/// for a run without a fault plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryStats {
    /// Completed repairs, in repair order.
    pub ttr: Vec<TtrRecord>,
    /// A repair whose retry backlog had not drained when the run ended.
    pub pending_repair: Option<u64>,
    /// Availability windows in time order, including the final partial
    /// window if it observed any traffic.
    pub windows: Vec<AvailabilityWindow>,
}

impl RecoveryStats {
    /// Snapshots the recovery observations of a network after a run.
    pub fn collect(net: &Network) -> Self {
        let t = net.recovery();
        let mut windows = t.windows().to_vec();
        windows.extend(t.partial_window());
        RecoveryStats {
            ttr: t.ttr().to_vec(),
            pending_repair: t.pending_repair(),
            windows,
        }
    }

    /// Mean time-to-recover over the completed repairs, or `None` when no
    /// repair completed.
    pub fn mean_ttr(&self) -> Option<f64> {
        if self.ttr.is_empty() {
            return None;
        }
        let total: u64 = self.ttr.iter().map(TtrRecord::cycles).sum();
        Some(total as f64 / self.ttr.len() as f64)
    }

    /// The worst (lowest) availability any window recorded, or `None`
    /// with no windows. The floor of the run's service level: 1.0 means
    /// no window ever lost traffic.
    pub fn min_availability(&self) -> Option<f64> {
        self.windows
            .iter()
            .map(AvailabilityWindow::availability)
            .min_by(|a, b| a.partial_cmp(b).expect("availability is never NaN"))
    }

    /// Total offered and delivered packets across all windows.
    pub fn totals(&self) -> (u64, u64) {
        self.windows
            .iter()
            .fold((0, 0), |(o, d), w| (o + w.offered, d + w.delivered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_routing::RoutingSpec;
    use footprint_sim::{FlowSet, SimConfig, SingleFlow, UnreachablePolicy};
    use footprint_topology::{Direction, FaultEvent, FaultPlan, NodeId};

    #[test]
    fn defaults_are_empty_and_comparable() {
        let p = PartitionReport::default();
        assert!(!p.was_partitioned());
        assert_eq!(p.max_components(), 0);
        assert!(p.covers_all_nodes(16));
        let r = RecoveryStats::default();
        assert_eq!(r.mean_ttr(), None);
        assert_eq!(r.min_availability(), None);
        assert_eq!(r, RecoveryStats::default());
    }

    #[test]
    fn fault_free_run_collects_empty_reports() {
        let mut net =
            Network::new(SimConfig::small(), RoutingSpec::Footprint.build(), 3).unwrap();
        let mut flow = FlowSet::new(vec![SingleFlow {
            src: NodeId(0),
            dest: NodeId(15),
            rate: 0.3,
            size: 1,
        }]);
        net.run(&mut flow, 200);
        assert_eq!(PartitionReport::collect(&net), PartitionReport::default());
        assert_eq!(RecoveryStats::collect(&net), RecoveryStats::default());
    }

    #[test]
    fn repaired_fault_yields_ttr_and_windows() {
        // One link down at 0, repaired at 150; retry policy parks the cut
        // pair's packets until the repair re-admits them.
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(0), Direction::East, 0).repaired_at(150));
        let mut net = Network::with_faults(
            SimConfig::small(),
            RoutingSpec::Footprint.build(),
            5,
            plan,
            UnreachablePolicy::Retry { max_attempts: 20, backoff: 16 },
        )
        .unwrap();
        let mut flow = FlowSet::new(vec![SingleFlow {
            src: NodeId(0),
            dest: NodeId(3),
            rate: 0.2,
            size: 1,
        }]);
        net.run(&mut flow, 400);
        net.run(&mut footprint_sim::NoTraffic, 300);
        let r = RecoveryStats::collect(&net);
        assert_eq!(r.ttr.len(), 1, "one repair, one recovery: {:?}", r.ttr);
        assert_eq!(r.ttr[0].repair_cycle, 150);
        assert!(r.pending_repair.is_none());
        assert!(!r.windows.is_empty());
        let (offered, delivered) = r.totals();
        assert_eq!(offered, delivered, "drained run delivers everything offered");
        // The partition history is trivial: a duplex cut of one mesh link
        // never splits the fabric.
        let p = PartitionReport::collect(&net);
        assert!(!p.was_partitioned());
        assert!(p.covers_all_nodes(16));
        assert_eq!(p.final_components(), 1);
    }
}
