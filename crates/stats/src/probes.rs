//! Reusable instrumentation probes built on the simulator's `Probe` hook.

use crate::{Histogram, OnlineStats};
use footprint_sim::{EjectedPacket, Probe};
use std::collections::BTreeMap;

/// Records the full latency distribution of ejected packets, per traffic
/// class, as fixed-width histograms plus exact streaming moments.
///
/// Attach to a run via `SimulationBuilder::run_probed` (or
/// `Network::step_probed`) to get percentiles the mean-only metrics can't
/// provide — e.g. tail latency under hotspot interference.
#[derive(Debug)]
pub struct LatencyHistogramProbe {
    bucket_width: u64,
    buckets: usize,
    classes: BTreeMap<u8, (Histogram, OnlineStats)>,
}

impl LatencyHistogramProbe {
    /// Creates a probe with per-class histograms of `buckets` buckets of
    /// `bucket_width` cycles each (latencies beyond the range land in the
    /// overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0, "empty histogram shape");
        LatencyHistogramProbe {
            bucket_width,
            buckets,
            classes: BTreeMap::new(),
        }
    }

    /// A convenient default: 200 buckets of 5 cycles (covers zero-load
    /// through heavy congestion on the paper's meshes).
    pub fn default_shape() -> Self {
        Self::new(5, 200)
    }

    /// The histogram for `class`, if any packet of that class ejected.
    pub fn histogram(&self, class: u8) -> Option<&Histogram> {
        self.classes.get(&class).map(|(h, _)| h)
    }

    /// Streaming latency moments for `class`.
    pub fn stats(&self, class: u8) -> Option<&OnlineStats> {
        self.classes.get(&class).map(|(_, s)| s)
    }

    /// The classes observed, in ascending order.
    pub fn classes(&self) -> Vec<u8> {
        self.classes.keys().copied().collect()
    }

    /// Latency below which a fraction `q` of class `class` packets finished
    /// (bucket-granular).
    pub fn quantile(&self, class: u8, q: f64) -> Option<u64> {
        self.histogram(class)?.quantile(q)
    }
}

impl Probe for LatencyHistogramProbe {
    fn packet_ejected(&mut self, packet: &EjectedPacket) {
        let (hist, stats) = self
            .classes
            .entry(packet.class)
            .or_insert_with(|| (Histogram::new(self.bucket_width, self.buckets), OnlineStats::new()));
        hist.push(packet.latency());
        stats.push(packet.latency());
    }
}

/// Summary of per-channel load distribution — how evenly a routing
/// algorithm spreads traffic over the physical links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadBalance {
    /// Number of channels considered.
    pub channels: usize,
    /// Mean flits per channel.
    pub mean: f64,
    /// Maximum flits on any channel.
    pub max: u64,
    /// Max-over-mean ratio (1.0 = perfectly balanced; the bottleneck factor).
    pub imbalance: f64,
}

/// Computes load balance from `(anything, anything, flits)` channel loads
/// (the shape `Network::channel_loads` returns).
pub fn load_balance<A, B>(loads: &[(A, B, u64)]) -> Option<LoadBalance> {
    if loads.is_empty() {
        return None;
    }
    let total: u64 = loads.iter().map(|&(_, _, f)| f).sum();
    let max = loads.iter().map(|&(_, _, f)| f).max().unwrap_or(0);
    let mean = total as f64 / loads.len() as f64;
    Some(LoadBalance {
        channels: loads.len(),
        mean,
        max,
        imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_sim::PacketId;
    use footprint_topology::NodeId;

    fn pkt(class: u8, latency: u64) -> EjectedPacket {
        EjectedPacket {
            id: PacketId(0),
            src: NodeId(0),
            dest: NodeId(1),
            birth: 0,
            ejected: latency,
            size: 1,
            class,
        }
    }

    #[test]
    fn histogram_probe_separates_classes() {
        let mut p = LatencyHistogramProbe::new(10, 10);
        p.packet_ejected(&pkt(0, 5));
        p.packet_ejected(&pkt(0, 15));
        p.packet_ejected(&pkt(1, 95));
        assert_eq!(p.classes(), vec![0, 1]);
        assert_eq!(p.histogram(0).unwrap().total(), 2);
        assert_eq!(p.histogram(1).unwrap().total(), 1);
        assert!((p.stats(0).unwrap().mean() - 10.0).abs() < 1e-9);
        assert_eq!(p.quantile(0, 0.5), Some(10));
        assert!(p.histogram(7).is_none());
    }

    #[test]
    fn default_shape_covers_typical_latencies() {
        let mut p = LatencyHistogramProbe::default_shape();
        p.packet_ejected(&pkt(0, 999));
        assert_eq!(p.histogram(0).unwrap().overflow(), 0);
        p.packet_ejected(&pkt(0, 1001));
        assert_eq!(p.histogram(0).unwrap().overflow(), 1);
    }

    #[test]
    fn load_balance_math() {
        let loads = [((), (), 10u64), ((), (), 20), ((), (), 30)];
        let lb = load_balance(&loads).unwrap();
        assert_eq!(lb.channels, 3);
        assert!((lb.mean - 20.0).abs() < 1e-12);
        assert_eq!(lb.max, 30);
        assert!((lb.imbalance - 1.5).abs() < 1e-12);
        assert!(load_balance::<(), ()>(&[]).is_none());
    }

    #[test]
    fn zero_load_has_zero_imbalance() {
        let loads = [((), (), 0u64), ((), (), 0)];
        let lb = load_balance(&loads).unwrap();
        assert_eq!(lb.imbalance, 0.0);
    }
}
