//! Per-tenant SLO accounting: offered/delivered counts, latency quantiles
//! and windowed throughput, keyed by traffic class.
//!
//! [`TenantProbe`] rides the simulator's `Probe` hook — the
//! `packet_generated` callback counts *offered* load (including packets
//! later dropped at a faulty source) and `packet_ejected` counts
//! *delivered* load, both bucketed into fixed-width cycle windows so
//! bursty workloads show their time structure instead of vanishing into
//! run-wide averages. [`TenantSummary`] condenses one tenant into the SLO
//! numbers (p50/p99 latency, delivered throughput, accounting closure)
//! that `footprint-core` publishes in its run report.

use crate::{Histogram, OnlineStats};
use footprint_sim::{EjectedPacket, NewPacket, Probe};
use footprint_topology::NodeId;
use std::collections::BTreeMap;

/// Offered/delivered packet counts within one accounting window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounts {
    /// Packets generated in the window.
    pub offered: u64,
    /// Packets whose tail ejected in the window.
    pub delivered: u64,
}

#[derive(Debug)]
struct Track {
    offered_packets: u64,
    offered_flits: u64,
    delivered_packets: u64,
    delivered_flits: u64,
    hist: Histogram,
    stats: OnlineStats,
    windows: Vec<WindowCounts>,
}

impl Track {
    fn new(bucket_width: u64, buckets: usize) -> Self {
        Track {
            offered_packets: 0,
            offered_flits: 0,
            delivered_packets: 0,
            delivered_flits: 0,
            hist: Histogram::new(bucket_width, buckets),
            stats: OnlineStats::new(),
            windows: Vec::new(),
        }
    }

    fn window_mut(&mut self, idx: usize) -> &mut WindowCounts {
        if self.windows.len() <= idx {
            self.windows.resize(idx + 1, WindowCounts::default());
        }
        &mut self.windows[idx]
    }
}

/// Per-class (= per-tenant) offered/delivered/latency accounting probe.
///
/// Attach from `measure_from` onwards (the `footprint-core` builder swaps
/// it in at the measurement boundary), so its offered count equals the
/// metrics window's generated count exactly. Latency moments include only
/// packets *born* at or after `measure_from`, matching the simulator's
/// measured-latency population; delivered counts include warmup stragglers
/// ejecting inside the window, again matching the metrics window.
#[derive(Debug)]
pub struct TenantProbe {
    measure_from: u64,
    window: u64,
    bucket_width: u64,
    buckets: usize,
    tracks: BTreeMap<u8, Track>,
}

impl TenantProbe {
    /// Creates a probe accounting from `measure_from` in windows of
    /// `window` cycles, with the default latency-histogram shape (8-cycle
    /// buckets × 512 — quantiles saturate at 4096 cycles).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(measure_from: u64, window: u64) -> Self {
        Self::with_histogram(measure_from, window, 8, 512)
    }

    /// Creates a probe with an explicit latency-histogram shape.
    ///
    /// # Panics
    ///
    /// Panics if `window`, `bucket_width` or `buckets` is zero.
    pub fn with_histogram(measure_from: u64, window: u64, bucket_width: u64, buckets: usize) -> Self {
        assert!(window > 0, "window must be at least one cycle");
        assert!(bucket_width > 0 && buckets > 0, "empty histogram shape");
        TenantProbe {
            measure_from,
            window,
            bucket_width,
            buckets,
            tracks: BTreeMap::new(),
        }
    }

    fn window_index(&self, cycle: u64) -> usize {
        (cycle.saturating_sub(self.measure_from) / self.window) as usize
    }

    fn track_mut(&mut self, class: u8) -> &mut Track {
        let (bw, nb) = (self.bucket_width, self.buckets);
        self.tracks
            .entry(class)
            .or_insert_with(|| Track::new(bw, nb))
    }

    /// The classes observed so far, ascending.
    pub fn classes(&self) -> Vec<u8> {
        self.tracks.keys().copied().collect()
    }

    /// The accounting window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Condenses one tenant's track into a summary. `dropped_packets`
    /// comes from the fault layer (zero on a fault-free run); `cycles` and
    /// `nodes` normalize delivered throughput to flits/node/cycle.
    pub fn summary(
        &self,
        class: u8,
        name: &str,
        dropped_packets: u64,
        cycles: u64,
        nodes: usize,
    ) -> TenantSummary {
        let empty;
        let t = match self.tracks.get(&class) {
            Some(t) => t,
            None => {
                empty = Track::new(self.bucket_width, self.buckets);
                &empty
            }
        };
        let denom = (cycles as f64) * (nodes as f64);
        TenantSummary {
            name: name.to_string(),
            class,
            offered_packets: t.offered_packets,
            offered_flits: t.offered_flits,
            delivered_packets: t.delivered_packets,
            delivered_flits: t.delivered_flits,
            dropped_packets,
            measured_packets: t.stats.count(),
            mean_latency: t.stats.mean(),
            p50_latency: t.hist.quantile(0.50),
            p99_latency: t.hist.quantile(0.99),
            max_latency: t.stats.max().unwrap_or(0),
            throughput: if denom > 0.0 {
                t.delivered_flits as f64 / denom
            } else {
                0.0
            },
            window_cycles: self.window,
            windows: t.windows.clone(),
        }
    }
}

impl Probe for TenantProbe {
    fn packet_generated(&mut self, _node: NodeId, packet: &NewPacket, cycle: u64) {
        let idx = self.window_index(cycle);
        let size = packet.size as u64;
        let t = self.track_mut(packet.class);
        t.offered_packets += 1;
        t.offered_flits += size;
        t.window_mut(idx).offered += 1;
    }

    fn packet_ejected(&mut self, packet: &EjectedPacket) {
        let idx = self.window_index(packet.ejected);
        let measure_from = self.measure_from;
        let t = self.track_mut(packet.class);
        t.delivered_packets += 1;
        t.delivered_flits += packet.size as u64;
        t.window_mut(idx).delivered += 1;
        // Latency population: packets born inside the measurement span,
        // mirroring the simulator's `measured_packets` semantics.
        if packet.birth >= measure_from {
            t.hist.push(packet.latency());
            t.stats.push(packet.latency());
        }
    }
}

/// One tenant's SLO summary over a measurement span.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSummary {
    /// Tenant display name.
    pub name: String,
    /// Traffic class the tenant's packets carry.
    pub class: u8,
    /// Packets generated during the span.
    pub offered_packets: u64,
    /// Flits generated during the span.
    pub offered_flits: u64,
    /// Packets fully ejected during the span.
    pub delivered_packets: u64,
    /// Flits of fully ejected packets.
    pub delivered_flits: u64,
    /// Packets dropped by the fault layer during the span.
    pub dropped_packets: u64,
    /// Packets in the latency population (born *and* ejected in-span).
    pub measured_packets: u64,
    /// Mean end-to-end latency of the measured population, in cycles.
    pub mean_latency: f64,
    /// Median latency (bucket-granular; `None` if nothing measured or the
    /// median landed in histogram overflow).
    pub p50_latency: Option<u64>,
    /// 99th-percentile latency (bucket-granular; `None` as for p50).
    pub p99_latency: Option<u64>,
    /// Worst measured latency, in cycles.
    pub max_latency: u64,
    /// Delivered throughput in flits/node/cycle over the span.
    pub throughput: f64,
    /// Accounting-window length in cycles.
    pub window_cycles: u64,
    /// Offered/delivered counts per window (ascending, possibly ragged —
    /// trailing all-zero windows are not materialized).
    pub windows: Vec<WindowCounts>,
}

impl TenantSummary {
    /// Packets generated but neither delivered nor dropped — still queued
    /// or in flight when measurement ended. On a drained run this is the
    /// count of warmup stragglers double-ejected into the span (zero when
    /// warmup is zero too).
    pub fn in_flight(&self) -> u64 {
        self.offered_packets
            .saturating_sub(self.delivered_packets)
            .saturating_sub(self.dropped_packets)
    }

    /// The per-tenant accounting invariant: every offered packet is
    /// delivered, dropped, or still in flight. `in_flight` saturates, so
    /// this flags over-delivery (more ejected than generated, as when
    /// warmup stragglers leak into the span) as a violation too.
    pub fn fully_accounted(&self) -> bool {
        self.offered_packets == self.delivered_packets + self.in_flight() + self.dropped_packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(probe: &mut TenantProbe, class: u8, size: u16, cycle: u64) {
        probe.packet_generated(
            NodeId(0),
            &NewPacket {
                dest: NodeId(1),
                size,
                class,
                origin: None,
            },
            cycle,
        );
    }

    fn eject(probe: &mut TenantProbe, class: u8, size: u16, birth: u64, ejected: u64) {
        probe.packet_ejected(&EjectedPacket {
            id: footprint_sim::PacketId(0),
            src: NodeId(0),
            dest: NodeId(1),
            birth,
            ejected,
            size,
            class,
        });
    }

    #[test]
    fn windows_partition_the_span() {
        let mut p = TenantProbe::new(100, 50);
        gen(&mut p, 0, 1, 100); // window 0
        gen(&mut p, 0, 1, 149); // window 0
        gen(&mut p, 0, 1, 150); // window 1
        eject(&mut p, 0, 1, 100, 210); // delivered in window 2
        let s = p.summary(0, "t", 0, 150, 4);
        assert_eq!(s.offered_packets, 3);
        assert_eq!(s.delivered_packets, 1);
        assert_eq!(s.windows.len(), 3);
        assert_eq!(s.windows[0], WindowCounts { offered: 2, delivered: 0 });
        assert_eq!(s.windows[1], WindowCounts { offered: 1, delivered: 0 });
        assert_eq!(s.windows[2], WindowCounts { offered: 0, delivered: 1 });
        assert_eq!(s.in_flight(), 2);
        assert!(s.fully_accounted());
    }

    #[test]
    fn latency_population_excludes_warmup_births() {
        let mut p = TenantProbe::new(1_000, 500);
        // Warmup straggler: ejects in-span, born before — counted as
        // delivered but not measured.
        eject(&mut p, 2, 1, 900, 1_050);
        eject(&mut p, 2, 1, 1_000, 1_020);
        eject(&mut p, 2, 1, 1_100, 1_180);
        let s = p.summary(2, "t", 0, 1_000, 16);
        assert_eq!(s.delivered_packets, 3);
        assert_eq!(s.measured_packets, 2);
        assert_eq!(s.mean_latency, 50.0);
        assert_eq!(s.max_latency, 80);
        assert!(s.p50_latency.is_some() && s.p99_latency.is_some());
        assert!(s.p50_latency <= s.p99_latency);
    }

    #[test]
    fn classes_are_tracked_independently() {
        let mut p = TenantProbe::new(0, 100);
        gen(&mut p, 0, 2, 5);
        gen(&mut p, 7, 3, 5);
        gen(&mut p, 7, 3, 6);
        assert_eq!(p.classes(), vec![0, 7]);
        let a = p.summary(0, "a", 0, 100, 4);
        let b = p.summary(7, "b", 0, 100, 4);
        assert_eq!((a.offered_packets, a.offered_flits), (1, 2));
        assert_eq!((b.offered_packets, b.offered_flits), (2, 6));
        // A class that never appeared still summarizes (to zeros).
        let c = p.summary(9, "c", 0, 100, 4);
        assert_eq!(c.offered_packets, 0);
        assert_eq!(c.p50_latency, None);
        assert!(c.fully_accounted());
    }

    #[test]
    fn throughput_normalizes_by_cycles_and_nodes() {
        let mut p = TenantProbe::new(0, 100);
        eject(&mut p, 1, 4, 10, 20);
        eject(&mut p, 1, 4, 12, 30);
        let s = p.summary(1, "t", 0, 200, 4);
        assert!((s.throughput - 8.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn dropped_packets_close_the_accounting() {
        let mut p = TenantProbe::new(0, 100);
        for c in 0..10 {
            gen(&mut p, 0, 1, c);
        }
        eject(&mut p, 0, 1, 0, 40);
        let s = p.summary(0, "t", 3, 100, 4);
        assert_eq!(s.in_flight(), 6);
        assert!(s.fully_accounted());
        // Over-delivery (ejected > generated) must *fail* the invariant.
        let mut p = TenantProbe::new(0, 100);
        eject(&mut p, 0, 1, 0, 40);
        let s = p.summary(0, "t", 0, 100, 4);
        assert!(!s.fully_accounted());
    }
}
