//! Synthetic Bernoulli workloads over a traffic pattern.

use crate::{PacketSize, TrafficPattern};
use footprint_sim::{NewPacket, Workload};
use footprint_topology::{AnyTopology, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

/// A Bernoulli injection process: every active node generates a packet per
/// cycle with probability `rate / mean_size`, so the *offered load* is
/// `rate` flits per node per cycle — the x-axis of the paper's
/// latency-throughput figures.
pub struct SyntheticWorkload {
    topo: AnyTopology,
    pattern: Box<dyn TrafficPattern>,
    size: PacketSize,
    rate: f64,
    class: u8,
}

impl core::fmt::Debug for SyntheticWorkload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SyntheticWorkload")
            .field("pattern", &self.pattern.name())
            .field("size", &self.size)
            .field("rate", &self.rate)
            .field("class", &self.class)
            .finish()
    }
}

impl SyntheticWorkload {
    /// Creates a workload over `pattern` at `rate` flits/node/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or exceeds 1.0 (a node cannot inject
    /// more than one flit per cycle).
    pub fn new(
        topo: impl Into<AnyTopology>,
        pattern: Box<dyn TrafficPattern>,
        size: PacketSize,
        rate: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0, 1]");
        SyntheticWorkload {
            topo: topo.into(),
            pattern,
            size,
            rate,
            class: 0,
        }
    }

    /// Tags generated packets with a traffic class (default 0).
    pub fn with_class(mut self, class: u8) -> Self {
        self.class = class;
        self
    }

    /// The configured offered load in flits/node/cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The pattern's display name.
    pub fn pattern_name(&self) -> &'static str {
        self.pattern.name()
    }
}

impl Workload for SyntheticWorkload {
    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        let p = (self.rate / self.size.mean()).min(1.0);
        if p <= 0.0 || !rng.gen_bool(p) {
            return None;
        }
        let dest = self.pattern.dest(self.topo, node, rng)?;
        Some(NewPacket {
            dest,
            size: self.size.sample(rng),
            class: self.class,
            origin: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{Transpose, Uniform};
    use footprint_topology::Mesh;
    use rand::SeedableRng;

    #[test]
    fn offered_load_matches_rate() {
        let mesh = Mesh::square(4);
        let mut wl =
            SyntheticWorkload::new(mesh, Box::new(Uniform), PacketSize::SINGLE, 0.25);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut flits = 0u64;
        let cycles = 20_000;
        for c in 0..cycles {
            for n in mesh.nodes() {
                if let Some(p) = wl.generate(n, c, &mut rng) {
                    flits += p.size as u64;
                }
            }
        }
        let rate = flits as f64 / (cycles as f64 * mesh.len() as f64);
        assert!((rate - 0.25).abs() < 0.01, "measured rate {rate}");
    }

    #[test]
    fn variable_sizes_keep_flit_rate() {
        let mesh = Mesh::square(4);
        let mut wl = SyntheticWorkload::new(
            mesh,
            Box::new(Uniform),
            PacketSize::PAPER_VARIABLE,
            0.5,
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let mut flits = 0u64;
        let cycles = 20_000;
        for c in 0..cycles {
            for n in mesh.nodes() {
                if let Some(p) = wl.generate(n, c, &mut rng) {
                    assert!((1..=6).contains(&p.size));
                    flits += p.size as u64;
                }
            }
        }
        let rate = flits as f64 / (cycles as f64 * mesh.len() as f64);
        assert!((rate - 0.5).abs() < 0.02, "measured rate {rate}");
    }

    #[test]
    fn fixed_points_never_generate() {
        let mesh = Mesh::square(4);
        let mut wl =
            SyntheticWorkload::new(mesh, Box::new(Transpose), PacketSize::SINGLE, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for c in 0..100 {
            assert!(wl.generate(NodeId(0), c, &mut rng).is_none()); // (0,0)
            assert!(wl.generate(NodeId(5), c, &mut rng).is_none()); // (1,1)
        }
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn excessive_rate_rejected() {
        let mesh = Mesh::square(4);
        let _ = SyntheticWorkload::new(mesh, Box::new(Uniform), PacketSize::SINGLE, 1.5);
    }

    #[test]
    fn class_tag_propagates() {
        let mesh = Mesh::square(4);
        let mut wl = SyntheticWorkload::new(mesh, Box::new(Uniform), PacketSize::SINGLE, 1.0)
            .with_class(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let p = wl.generate(NodeId(0), 0, &mut rng).unwrap();
        assert_eq!(p.class, 2);
        assert_eq!(wl.rate(), 1.0);
        assert_eq!(wl.pattern_name(), "uniform");
    }
}
