//! Traffic generation for the Footprint NoC reproduction.
//!
//! Everything the paper's evaluation injects into the network:
//!
//! * [`patterns`] — the synthetic patterns of Figures 5–8 (uniform random,
//!   transpose, shuffle) plus the classic extras, and the Figure 2
//!   permutation example.
//! * [`PacketSize`] — single-flit and 1–6-flit-uniform size mixes (Table 2).
//! * [`SyntheticWorkload`] — Bernoulli injection over a pattern at an
//!   offered load in flits/node/cycle.
//! * [`hotspot`] — the Table 3 hotspot + background workload of Figure 9.
//! * [`parsec`] — bursty per-application workloads standing in for the
//!   PARSEC/Netrace traces of Figure 10 (see the module docs for the
//!   substitution rationale).
//! * [`trace`] — generic timestamped trace replay.
//! * [`modulate`] — on/off (bursty) gating, rate ramps and piecewise
//!   schedules over any workload.
//! * [`tenants`] — multi-tenant multiplexing with per-tenant classes.
//!
//! # Example
//!
//! ```
//! use footprint_traffic::{SyntheticWorkload, PacketSize, patterns::Transpose};
//! use footprint_sim::{Network, SimConfig, Workload};
//! use footprint_routing::RoutingSpec;
//!
//! let cfg = SimConfig::small();
//! let mut net = Network::new(cfg, RoutingSpec::Footprint.build(), 1)?;
//! let mut wl = SyntheticWorkload::new(
//!     cfg.topo(), Box::new(Transpose), PacketSize::SINGLE, 0.2,
//! );
//! net.run(&mut wl, 1000);
//! assert!(net.metrics().total().ejected_packets > 0);
//! # Ok::<(), footprint_sim::ConfigError>(())
//! ```

#![warn(missing_docs)]

pub mod hotspot;
pub mod modulate;
mod overlay;
pub mod parsec;
pub mod patterns;
mod size;
mod synthetic;
pub mod tenants;
pub mod trace;

pub use hotspot::{paper_flows, Flow, HotspotWorkload, BACKGROUND_CLASS, HOTSPOT_CLASS};
pub use modulate::{DurationDist, ModulationError, ModulationSpec, Modulator};
pub use overlay::Overlay;
pub use tenants::{Tenant, TenantWorkload};
pub use parsec::{memory_controllers, App, AppProfile, ParsecPairWorkload, APPS};
pub use patterns::{PatternError, PatternSpec, Permutation, TrafficPattern};
pub use size::PacketSize;
pub use synthetic::SyntheticWorkload;
pub use trace::{
    parse_trace, write_trace, ParseTraceError, TraceEvent, TraceRegression, TraceWorkload,
};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A fixed-seed RNG used only for probing whether a node participates in a
/// pattern (see [`TrafficPattern::active_fraction`]).
pub(crate) fn pattern_probe_rng() -> SmallRng {
    SmallRng::seed_from_u64(0xF00D)
}
