//! The paper's hotspot workload (Table 3, Figure 9).
//!
//! Eight persistent flows oversubscribe four endpoints while every
//! non-participating node injects uniform-random *background* traffic at a
//! fixed rate (0.30 in the paper). The experiment measures the latency of
//! the background traffic only — the hotspot flows exist to grow a
//! congestion tree and expose HoL blocking.

use crate::patterns::{TrafficPattern, Uniform};
use crate::PacketSize;
use footprint_sim::{NewPacket, Workload};
use footprint_topology::{AnyTopology, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

/// Traffic class of background packets (latency is measured on this class).
pub const BACKGROUND_CLASS: u8 = 0;
/// Traffic class of hotspot packets (excluded from latency measurement).
pub const HOTSPOT_CLASS: u8 = 1;

/// A persistent flow `src → dest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
}

/// The eight flows of the paper's Table 3 (8×8 mesh):
/// `f1: n0→n63, f2: n32→n63, f3: n7→n56, f4: n39→n56,
///  f5: n63→n0, f6: n31→n0, f7: n56→n7, f8: n24→n7`.
pub fn paper_flows() -> Vec<Flow> {
    [
        (0u16, 63u16),
        (32, 63),
        (7, 56),
        (39, 56),
        (63, 0),
        (31, 0),
        (56, 7),
        (24, 7),
    ]
    .into_iter()
    .map(|(s, d)| Flow {
        src: NodeId(s),
        dest: NodeId(d),
    })
    .collect()
}

/// The hotspot + background workload of Figure 9.
#[derive(Debug)]
pub struct HotspotWorkload {
    topo: AnyTopology,
    flows: Vec<Flow>,
    hotspot_rate: f64,
    background_rate: f64,
    size: PacketSize,
    is_hotspot_src: Vec<bool>,
}

impl HotspotWorkload {
    /// Creates the workload: flows inject at `hotspot_rate` flits/cycle,
    /// everyone else injects uniform background at `background_rate`.
    ///
    /// # Panics
    ///
    /// Panics if a flow endpoint lies outside the fabric or a rate is
    /// outside `[0, 1]`.
    pub fn new(
        topo: impl Into<AnyTopology>,
        flows: Vec<Flow>,
        hotspot_rate: f64,
        background_rate: f64,
        size: PacketSize,
    ) -> Self {
        let topo = topo.into();
        assert!((0.0..=1.0).contains(&hotspot_rate), "hotspot rate");
        assert!((0.0..=1.0).contains(&background_rate), "background rate");
        let mut is_hotspot_src = vec![false; topo.len()];
        for f in &flows {
            assert!(f.src.index() < topo.len(), "flow source outside fabric");
            assert!(f.dest.index() < topo.len(), "flow dest outside fabric");
            is_hotspot_src[f.src.index()] = true;
        }
        HotspotWorkload {
            topo,
            flows,
            hotspot_rate,
            background_rate,
            size,
            is_hotspot_src,
        }
    }

    /// The paper's configuration on an 8×8 mesh: Table 3 flows, background
    /// at 0.30, single-flit packets; hotspot rate is the sweep variable.
    pub fn paper(topo: impl Into<AnyTopology>, hotspot_rate: f64) -> Self {
        let topo = topo.into();
        assert!(
            topo.len() == 64,
            "the Table 3 flow set is defined on the 8x8 mesh"
        );
        Self::new(
            topo,
            paper_flows(),
            hotspot_rate,
            0.30,
            PacketSize::SINGLE,
        )
    }

    /// The flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }
}

impl Workload for HotspotWorkload {
    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if self.is_hotspot_src[node.index()] {
            let p = (self.hotspot_rate / self.size.mean()).min(1.0);
            if p > 0.0 && rng.gen_bool(p) {
                let dest = self
                    .flows
                    .iter()
                    .find(|f| f.src == node)
                    .expect("marked source has a flow")
                    .dest;
                return Some(NewPacket {
                    dest,
                    size: self.size.sample(rng),
                    class: HOTSPOT_CLASS,
                    origin: None,
                });
            }
            None
        } else {
            let p = (self.background_rate / self.size.mean()).min(1.0);
            if p > 0.0 && rng.gen_bool(p) {
                let dest = Uniform.dest(self.topo, node, rng)?;
                Some(NewPacket {
                    dest,
                    size: self.size.sample(rng),
                    class: BACKGROUND_CLASS,
                    origin: None,
                })
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::Mesh;
    use rand::SeedableRng;

    #[test]
    fn paper_flows_match_table_3() {
        let flows = paper_flows();
        assert_eq!(flows.len(), 8);
        assert_eq!(flows[0], Flow { src: NodeId(0), dest: NodeId(63) });
        assert_eq!(flows[7], Flow { src: NodeId(24), dest: NodeId(7) });
        // Four hotspot destinations, each hit by exactly two flows.
        let mut dests: Vec<_> = flows.iter().map(|f| f.dest).collect();
        dests.sort();
        dests.dedup();
        assert_eq!(dests.len(), 4);
        for d in dests {
            assert_eq!(flows.iter().filter(|f| f.dest == d).count(), 2);
        }
    }

    #[test]
    fn hotspot_sources_send_only_their_flow() {
        let mesh = Mesh::square(8);
        let mut wl = HotspotWorkload::paper(mesh, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for c in 0..50 {
            let p = wl.generate(NodeId(0), c, &mut rng).unwrap();
            assert_eq!(p.dest, NodeId(63));
            assert_eq!(p.class, HOTSPOT_CLASS);
        }
    }

    #[test]
    fn background_nodes_send_uniform_class_0() {
        let mesh = Mesh::square(8);
        let mut wl = HotspotWorkload::paper(mesh, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut saw = 0;
        for c in 0..500 {
            if let Some(p) = wl.generate(NodeId(10), c, &mut rng) {
                assert_eq!(p.class, BACKGROUND_CLASS);
                assert_ne!(p.dest, NodeId(10));
                saw += 1;
            }
        }
        // Background rate 0.30 → about 150 packets.
        assert!((100..=200).contains(&saw), "saw {saw}");
    }

    #[test]
    fn zero_hotspot_rate_silences_flows() {
        let mesh = Mesh::square(8);
        let mut wl = HotspotWorkload::paper(mesh, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for c in 0..100 {
            assert!(wl.generate(NodeId(0), c, &mut rng).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "8x8")]
    fn paper_config_requires_8x8() {
        let _ = HotspotWorkload::paper(Mesh::square(4), 0.5);
    }
}
