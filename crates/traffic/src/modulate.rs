//! Dynamic-workload modulation: on/off (bursty) gating, linear rate ramps
//! and piecewise schedules layered over any [`Workload`].
//!
//! Every synthetic source elsewhere in this crate is a *stationary*
//! Bernoulli process; the paper's headline claim — regulated adaptiveness
//! pays off under **transient** congestion — needs sources whose offered
//! load moves over time. [`Modulator`] wraps an inner workload and scales
//! its injection probability by a time-varying factor in `[0, 1]`:
//!
//! * [`ModulationSpec::OnOff`] — alternate between full rate and silence
//!   with per-node seeded on/off durations (the FlowForge "toggler" shape).
//! * [`ModulationSpec::Ramp`] — linear scale from one factor to another
//!   over a cycle span (then hold).
//! * [`ModulationSpec::Piecewise`] — an explicit step schedule.
//!
//! # Determinism
//!
//! The network's generation loop is dense in every scheduler mode: the
//! inner workload is polled for every node on every cycle from the shared
//! simulation RNG (see [`Workload`]). The modulator preserves that
//! contract exactly — when a gate or schedule scales the rate it *thins*
//! the inner process with an accept-coin drawn from the modulator's **own
//! per-node RNG**, never from the shared stream, and when the scale is
//! zero it returns `None` without touching either RNG **after** the inner
//! draw (so the shared-stream consumption per call is unchanged and
//! composed workloads elsewhere on the mesh are unperturbed). Gate state
//! advances as a pure function of the cycle number, so a source waking
//! after a long off-period produces the same packets whether the active-set
//! scheduler skipped its idle routers or not, and whether the sweep ran on
//! one thread or eight.
//!
//! Thinning is exact: accepting a Bernoulli(`p`) event with an independent
//! Bernoulli(`s`) coin yields Bernoulli(`s·p`), so a 50%-duty on/off source
//! at rate `r` offers mean load `r/2`.

use footprint_sim::{NewPacket, Workload};
use footprint_topology::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A distribution over phase durations (in cycles) for on/off gating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationDist {
    /// Every phase lasts exactly this many cycles.
    Fixed(u64),
    /// Durations drawn uniformly from `min..=max`.
    Uniform {
        /// Shortest phase, ≥ 1.
        min: u64,
        /// Longest phase, ≥ `min`.
        max: u64,
    },
    /// Geometric durations with the given mean (memoryless bursts — the
    /// classic two-state Markov-modulated process).
    Geometric {
        /// Mean phase length in cycles, ≥ 1.
        mean: f64,
    },
}

impl DurationDist {
    /// Validates the distribution parameters.
    pub fn validate(self) -> Result<(), ModulationError> {
        match self {
            DurationDist::Fixed(0) => Err(ModulationError::ZeroDuration),
            DurationDist::Uniform { min, max } if min == 0 || max < min => {
                Err(ModulationError::BadUniform { min, max })
            }
            DurationDist::Geometric { mean } if !mean.is_finite() || mean < 1.0 => {
                Err(ModulationError::BadGeometricMean(mean))
            }
            _ => Ok(()),
        }
    }

    /// The mean phase duration in cycles.
    pub fn mean(self) -> f64 {
        match self {
            DurationDist::Fixed(n) => n as f64,
            DurationDist::Uniform { min, max } => (min + max) as f64 / 2.0,
            DurationDist::Geometric { mean } => mean,
        }
    }

    /// Draws a phase duration (always ≥ 1 cycle).
    fn sample(self, rng: &mut SmallRng) -> u64 {
        match self {
            DurationDist::Fixed(n) => n,
            DurationDist::Uniform { min, max } => rng.gen_range(min..=max),
            DurationDist::Geometric { mean } => {
                // Inversion: ceil(ln U / ln(1 - 1/mean)) is Geometric with
                // the given mean; mean == 1.0 degenerates to constant 1.
                if mean <= 1.0 {
                    return 1;
                }
                let u: f64 = rng.gen_range(0.0..1.0);
                let q = 1.0 - 1.0 / mean;
                let d = (1.0 - u).ln() / q.ln();
                (d.ceil() as u64).clamp(1, u64::MAX / 4)
            }
        }
    }
}

/// A time-varying injection-scale schedule applied by [`Modulator`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModulationSpec {
    /// No modulation: the inner workload passes through untouched.
    Steady,
    /// Two-state bursting: alternate between full rate (scale 1) and
    /// silence (scale 0) with independently drawn phase durations per
    /// node. The initial state is randomized per node with probability
    /// equal to the duty cycle, so an ensemble of sources starts in
    /// steady-state rather than synchronized bursts.
    OnOff {
        /// On-phase duration distribution.
        on: DurationDist,
        /// Off-phase duration distribution.
        off: DurationDist,
    },
    /// Linear scale from `from` to `to` over the first `over` cycles,
    /// holding `to` afterwards. Scales are in `[0, 1]`.
    Ramp {
        /// Initial injection scale.
        from: f64,
        /// Final injection scale.
        to: f64,
        /// Ramp length in cycles, ≥ 1.
        over: u64,
    },
    /// Explicit step schedule: `(start_cycle, scale)` pairs with strictly
    /// increasing start cycles, the first at cycle 0. Each scale holds
    /// until the next entry's start cycle.
    Piecewise(Vec<(u64, f64)>),
}

impl ModulationSpec {
    /// Validates schedule parameters.
    pub fn validate(&self) -> Result<(), ModulationError> {
        match self {
            ModulationSpec::Steady => Ok(()),
            ModulationSpec::OnOff { on, off } => {
                on.validate()?;
                off.validate()
            }
            ModulationSpec::Ramp { from, to, over } => {
                for s in [*from, *to] {
                    if !(0.0..=1.0).contains(&s) {
                        return Err(ModulationError::ScaleOutOfRange(s));
                    }
                }
                if *over == 0 {
                    return Err(ModulationError::ZeroDuration);
                }
                Ok(())
            }
            ModulationSpec::Piecewise(steps) => {
                if steps.is_empty() {
                    return Err(ModulationError::EmptySchedule);
                }
                if steps[0].0 != 0 {
                    return Err(ModulationError::ScheduleMustStartAtZero(steps[0].0));
                }
                for w in steps.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err(ModulationError::ScheduleNotIncreasing(w[1].0));
                    }
                }
                for &(_, s) in steps {
                    if !(0.0..=1.0).contains(&s) {
                        return Err(ModulationError::ScaleOutOfRange(s));
                    }
                }
                Ok(())
            }
        }
    }

    /// The long-run mean injection scale (duty cycle for on/off; the held
    /// final value for ramps; the last step for piecewise schedules).
    pub fn steady_state_scale(&self) -> f64 {
        match self {
            ModulationSpec::Steady => 1.0,
            ModulationSpec::OnOff { on, off } => {
                let (m_on, m_off) = (on.mean(), off.mean());
                m_on / (m_on + m_off)
            }
            ModulationSpec::Ramp { to, .. } => *to,
            ModulationSpec::Piecewise(steps) => steps.last().map_or(1.0, |&(_, s)| s),
        }
    }
}

/// Validation error for a [`ModulationSpec`] or [`DurationDist`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModulationError {
    /// A phase or ramp duration of zero cycles.
    ZeroDuration,
    /// `Uniform` bounds with `min == 0` or `max < min`.
    BadUniform {
        /// Offending lower bound.
        min: u64,
        /// Offending upper bound.
        max: u64,
    },
    /// A geometric mean below 1.0 or non-finite.
    BadGeometricMean(f64),
    /// An injection scale outside `[0, 1]`.
    ScaleOutOfRange(f64),
    /// A piecewise schedule with no steps.
    EmptySchedule,
    /// A piecewise schedule whose first step is not at cycle 0.
    ScheduleMustStartAtZero(u64),
    /// A piecewise schedule with non-increasing start cycles.
    ScheduleNotIncreasing(u64),
}

impl fmt::Display for ModulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModulationError::ZeroDuration => f.write_str("durations must be at least one cycle"),
            ModulationError::BadUniform { min, max } => {
                write!(f, "uniform duration bounds {min}..={max} are invalid")
            }
            ModulationError::BadGeometricMean(m) => {
                write!(f, "geometric mean duration {m} must be a finite value >= 1")
            }
            ModulationError::ScaleOutOfRange(s) => {
                write!(f, "injection scale {s} out of [0, 1]")
            }
            ModulationError::EmptySchedule => f.write_str("piecewise schedule has no steps"),
            ModulationError::ScheduleMustStartAtZero(c) => {
                write!(f, "piecewise schedule must start at cycle 0, got {c}")
            }
            ModulationError::ScheduleNotIncreasing(c) => {
                write!(f, "piecewise schedule start cycles must strictly increase (at {c})")
            }
        }
    }
}

impl std::error::Error for ModulationError {}

/// Per-node two-state gate for [`ModulationSpec::OnOff`]. Lazily advanced:
/// `until` is the first cycle of the *next* phase.
#[derive(Debug, Clone)]
struct Gate {
    on: bool,
    until: u64,
    rng: SmallRng,
}

/// Wraps a [`Workload`] with a time-varying injection scale.
///
/// See the [module docs](self) for the determinism argument; the practical
/// summary is that a `Modulator` is bit-identical across Dense/Active
/// schedulers and sweep thread counts whenever the inner workload is,
/// because all modulation randomness comes from private per-node RNGs
/// derived from `seed` and the shared-stream consumption per generate call
/// is exactly the inner workload's.
#[derive(Debug, Clone)]
pub struct Modulator<W> {
    inner: W,
    spec: ModulationSpec,
    seed: u64,
    gates: Vec<Option<Gate>>,
}

/// splitmix64 finalizer — decorrelates per-node gate seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<W: Workload> Modulator<W> {
    /// Wraps `inner` under `spec`. `seed` drives all gate randomness
    /// (phase durations, initial on/off states, thinning coins) through
    /// per-node private RNGs.
    pub fn new(inner: W, spec: ModulationSpec, seed: u64) -> Result<Self, ModulationError> {
        spec.validate()?;
        Ok(Modulator {
            inner,
            spec,
            seed,
            gates: Vec::new(),
        })
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// The schedule this modulator applies.
    pub fn spec(&self) -> &ModulationSpec {
        &self.spec
    }

    fn gate_rng(&self, node: NodeId) -> SmallRng {
        SmallRng::seed_from_u64(mix(self.seed ^ mix(node.index() as u64)))
    }

    /// The injection scale for `node` at `cycle`, advancing gate state.
    fn scale(&mut self, node: NodeId, cycle: u64) -> f64 {
        match &self.spec {
            ModulationSpec::Steady => 1.0,
            ModulationSpec::Ramp { from, to, over } => {
                if cycle >= *over {
                    *to
                } else {
                    from + (to - from) * (cycle as f64 / *over as f64)
                }
            }
            ModulationSpec::Piecewise(steps) => steps
                .iter()
                .rev()
                .find(|&&(start, _)| start <= cycle)
                .map_or(0.0, |&(_, s)| s),
            ModulationSpec::OnOff { on, off } => {
                let (on, off) = (*on, *off);
                let ni = node.index();
                if self.gates.len() <= ni {
                    self.gates.resize_with(ni + 1, || None);
                }
                if self.gates[ni].is_none() {
                    let mut rng = self.gate_rng(node);
                    let duty = self.spec.steady_state_scale();
                    let starts_on = rng.gen_bool(duty.clamp(0.0, 1.0));
                    let first = if starts_on { on } else { off }.sample(&mut rng);
                    self.gates[ni] = Some(Gate {
                        on: starts_on,
                        until: first,
                        rng,
                    });
                }
                let gate = self.gates[ni].as_mut().expect("gate initialized above");
                // Lazily roll the gate forward to `cycle`; each flip draws
                // exactly one duration, so the state at any cycle is a pure
                // function of (seed, node, cycle) regardless of how many
                // calls were skipped in between.
                while cycle >= gate.until {
                    gate.on = !gate.on;
                    let d = if gate.on { on } else { off }.sample(&mut gate.rng);
                    gate.until += d;
                }
                if gate.on {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl<W: Workload> Workload for Modulator<W> {
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        // Always poll the inner workload first so the shared RNG stream
        // advances identically whatever the current scale — modulation must
        // not perturb other sources' draws.
        let packet = self.inner.generate(node, cycle, rng);
        let s = self.scale(node, cycle);
        let packet = packet?;
        if s >= 1.0 {
            return Some(packet);
        }
        if s <= 0.0 {
            return None;
        }
        // Thin with a private coin: Bernoulli(p) accepted w.p. s is exactly
        // Bernoulli(s·p).
        let ni = node.index();
        if self.gates.len() <= ni {
            self.gates.resize_with(ni + 1, || None);
        }
        let gate = self.gates[ni].get_or_insert_with(|| Gate {
            on: true,
            until: u64::MAX,
            rng: SmallRng::seed_from_u64(mix(self.seed ^ mix(ni as u64))),
        });
        if gate.rng.gen_bool(s) {
            Some(packet)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_sim::SingleFlow;
    use footprint_topology::Mesh;

    fn count_flits<W: Workload>(wl: &mut W, mesh: Mesh, cycles: u64, seed: u64) -> u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut flits = 0u64;
        for c in 0..cycles {
            for n in mesh.nodes() {
                if let Some(p) = wl.generate(n, c, &mut rng) {
                    flits += p.size as u64;
                }
            }
        }
        flits
    }

    #[test]
    fn fifty_percent_duty_halves_offered_load() {
        // The ISSUE acceptance test: a 50%-duty bursty source at rate r
        // must deliver mean load r/2, for every duration family.
        let mesh = Mesh::square(4);
        let r = 0.4;
        let cycles = 40_000u64;
        for (on, off) in [
            (DurationDist::Fixed(100), DurationDist::Fixed(100)),
            (
                DurationDist::Uniform { min: 40, max: 160 },
                DurationDist::Uniform { min: 40, max: 160 },
            ),
            (
                DurationDist::Geometric { mean: 80.0 },
                DurationDist::Geometric { mean: 80.0 },
            ),
        ] {
            let inner = crate::SyntheticWorkload::new(
                mesh,
                Box::new(crate::patterns::Uniform),
                crate::PacketSize::SINGLE,
                r,
            );
            let mut wl = Modulator::new(inner, ModulationSpec::OnOff { on, off }, 7).unwrap();
            let flits = count_flits(&mut wl, mesh, cycles, 3);
            let load = flits as f64 / (cycles as f64 * mesh.len() as f64);
            assert!(
                (load - r / 2.0).abs() < 0.02,
                "{on:?}/{off:?}: offered {load}, want {}",
                r / 2.0
            );
        }
    }

    #[test]
    fn modulation_does_not_perturb_shared_rng_stream() {
        // A modulated flow at node 0 must leave the packet sequence of an
        // unmodulated flow at node 1 untouched: all gate/thinning
        // randomness is private.
        let mesh = Mesh::new(4, 2);
        let probe_flow = || SingleFlow::new(NodeId(1), NodeId(5), 0.5, 1);
        let run = |gated: bool| {
            let inner = SingleFlow::new(NodeId(0), NodeId(4), 0.5, 1);
            let spec = if gated {
                ModulationSpec::OnOff {
                    on: DurationDist::Fixed(13),
                    off: DurationDist::Fixed(37),
                }
            } else {
                ModulationSpec::Steady
            };
            let mut a = Modulator::new(inner, spec, 11).unwrap();
            let mut b = probe_flow();
            let mut rng = SmallRng::seed_from_u64(5);
            let mut seq = Vec::new();
            for c in 0..2_000 {
                for n in mesh.nodes() {
                    let _ = a.generate(n, c, &mut rng);
                    if let Some(p) = b.generate(n, c, &mut rng) {
                        seq.push((c, n, p.dest));
                    }
                }
            }
            seq
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn on_off_state_is_a_pure_function_of_seed() {
        let mesh = Mesh::square(2);
        let spec = ModulationSpec::OnOff {
            on: DurationDist::Geometric { mean: 30.0 },
            off: DurationDist::Geometric { mean: 70.0 },
        };
        let run = || {
            let inner = SingleFlow::new(NodeId(0), NodeId(3), 1.0, 1);
            let mut wl = Modulator::new(inner, spec.clone(), 99).unwrap();
            let mut rng = SmallRng::seed_from_u64(1);
            (0..4_000)
                .map(|c| {
                    mesh.nodes()
                        .filter_map(|n| wl.generate(n, c, &mut rng))
                        .count()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ramp_scales_linearly_then_holds() {
        let mesh = Mesh::square(2);
        let spec = ModulationSpec::Ramp {
            from: 0.0,
            to: 1.0,
            over: 10_000,
        };
        let inner = SingleFlow::new(NodeId(0), NodeId(3), 0.8, 1);
        let mut wl = Modulator::new(inner, spec, 1).unwrap();
        // First quarter of the ramp averages scale 1/8; last quarter 7/8.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut quarters = [0u64; 4];
        for c in 0..10_000u64 {
            for n in mesh.nodes() {
                if wl.generate(n, c, &mut rng).is_some() {
                    quarters[(c / 2_500) as usize] += 1;
                }
            }
        }
        assert!(quarters[0] < quarters[3] / 3, "ramp up: {quarters:?}");
        // Held region after the ramp: close to the full 0.8 rate.
        let mut fired = 0u64;
        for c in 10_000..20_000u64 {
            for n in mesh.nodes() {
                if wl.generate(n, c, &mut rng).is_some() {
                    fired += 1;
                }
            }
        }
        let rate = fired as f64 / 10_000.0;
        assert!((rate - 0.8).abs() < 0.03, "held rate {rate}");
    }

    #[test]
    fn piecewise_schedule_steps() {
        let spec = ModulationSpec::Piecewise(vec![(0, 1.0), (100, 0.0), (200, 1.0)]);
        let inner = SingleFlow::new(NodeId(0), NodeId(1), 1.0, 1);
        let mut wl = Modulator::new(inner, spec, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for c in 0..300u64 {
            let fired = wl.generate(NodeId(0), c, &mut rng).is_some();
            let expect = !(100..200).contains(&c);
            assert_eq!(fired, expect, "cycle {c}");
        }
    }

    #[test]
    fn modulators_compose() {
        // A ramp inside an on/off gate: scales multiply (here the ramp
        // holds at 0.5 and the gate is 50% duty → net ≈ rate/4).
        let mesh = Mesh::square(2);
        let inner = SingleFlow::new(NodeId(0), NodeId(3), 0.8, 1);
        let ramp = Modulator::new(
            inner,
            ModulationSpec::Ramp {
                from: 0.5,
                to: 0.5,
                over: 1,
            },
            2,
        )
        .unwrap();
        let mut wl = Modulator::new(
            ramp,
            ModulationSpec::OnOff {
                on: DurationDist::Fixed(50),
                off: DurationDist::Fixed(50),
            },
            3,
        )
        .unwrap();
        let cycles = 40_000;
        let flits = count_flits(&mut wl, mesh, cycles, 8);
        let per_node = flits as f64 / (cycles as f64 * mesh.len() as f64);
        // Only node 0 injects: mesh-average load is 0.8 * 0.25 / 4 nodes.
        let want = 0.8 * 0.25 / mesh.len() as f64;
        assert!((per_node - want).abs() < 0.01, "load {per_node}, want {want}");
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert_eq!(
            DurationDist::Fixed(0).validate(),
            Err(ModulationError::ZeroDuration)
        );
        assert_eq!(
            DurationDist::Uniform { min: 5, max: 2 }.validate(),
            Err(ModulationError::BadUniform { min: 5, max: 2 })
        );
        assert_eq!(
            DurationDist::Geometric { mean: 0.5 }.validate(),
            Err(ModulationError::BadGeometricMean(0.5))
        );
        assert_eq!(
            ModulationSpec::Ramp {
                from: -0.1,
                to: 1.0,
                over: 10
            }
            .validate(),
            Err(ModulationError::ScaleOutOfRange(-0.1))
        );
        assert_eq!(
            ModulationSpec::Piecewise(vec![]).validate(),
            Err(ModulationError::EmptySchedule)
        );
        assert_eq!(
            ModulationSpec::Piecewise(vec![(5, 1.0)]).validate(),
            Err(ModulationError::ScheduleMustStartAtZero(5))
        );
        assert_eq!(
            ModulationSpec::Piecewise(vec![(0, 1.0), (10, 0.5), (10, 0.2)]).validate(),
            Err(ModulationError::ScheduleNotIncreasing(10))
        );
        let inner = SingleFlow::new(NodeId(0), NodeId(1), 0.5, 1);
        assert!(Modulator::new(inner, ModulationSpec::Piecewise(vec![]), 0).is_err());
        // Errors render.
        assert!(ModulationError::ScaleOutOfRange(1.5)
            .to_string()
            .contains("out of [0, 1]"));
    }

    #[test]
    fn geometric_durations_have_the_right_mean() {
        let mut rng = SmallRng::seed_from_u64(77);
        let d = DurationDist::Geometric { mean: 25.0 };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 25.0).abs() < 1.0, "mean {mean}");
        assert_eq!(DurationDist::Geometric { mean: 1.0 }.sample(&mut rng), 1);
    }

    #[test]
    fn steady_state_scale_reports_duty() {
        let spec = ModulationSpec::OnOff {
            on: DurationDist::Fixed(30),
            off: DurationDist::Fixed(90),
        };
        assert!((spec.steady_state_scale() - 0.25).abs() < 1e-12);
        assert_eq!(ModulationSpec::Steady.steady_state_scale(), 1.0);
    }
}
