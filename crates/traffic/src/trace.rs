//! Timestamped trace replay.
//!
//! The paper replays PARSEC 2.0 traces produced by Netrace. Those traces
//! are not redistributable here, so this module provides the replay
//! *mechanism* (any `(cycle, src, dest, size)` event list), and
//! [`crate::parsec`] provides synthetic per-application generators that
//! stand in for the trace content.

use footprint_sim::{NewPacket, Workload};
use footprint_topology::NodeId;
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// One trace event: a packet created at `cycle` on `src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Creation cycle.
    pub cycle: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Size in flits.
    pub size: u16,
    /// Traffic class.
    pub class: u8,
}

/// Replays a list of trace events as a [`Workload`].
///
/// Events whose cycle has passed are queued per source; each source injects
/// at most one packet per cycle (excess events spill into later cycles,
/// modeling a source-queue backlog exactly as a real trace-driven run
/// would).
#[derive(Debug)]
pub struct TraceWorkload {
    events: VecDeque<TraceEvent>,
    pending: Vec<VecDeque<NewPacket>>,
    absorbed_through: Option<u64>,
    last_regression: Option<TraceRegression>,
    regressions: u64,
}

/// A rejected non-monotonic absorb call: the replay was asked to step to a
/// cycle *before* its watermark. This can only happen when the driver's
/// clock moved backwards (e.g. a journal resume rebuilt the network but
/// reused a live workload); replaying would double-inject the events
/// between `attempted` and `last`, so the call is skipped and recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRegression {
    /// The watermark: the last cycle the replay absorbed through.
    pub last: u64,
    /// The earlier cycle the rejected call asked for.
    pub attempted: u64,
}

impl core::fmt::Display for TraceRegression {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "trace replay asked to absorb cycle {} after already absorbing through cycle {}",
            self.attempted, self.last
        )
    }
}

impl TraceWorkload {
    /// Builds a replay over `events` for a network of `nodes` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if events are not sorted by cycle or reference out-of-range
    /// nodes.
    pub fn new(nodes: usize, events: Vec<TraceEvent>) -> Self {
        for w in events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "trace events must be sorted");
        }
        for e in &events {
            assert!(e.src.index() < nodes, "trace source out of range");
            assert!(e.dest.index() < nodes, "trace dest out of range");
            assert!(e.size > 0, "zero-size trace packet");
        }
        TraceWorkload {
            events: events.into(),
            pending: (0..nodes).map(|_| VecDeque::new()).collect(),
            absorbed_through: None,
            last_regression: None,
            regressions: 0,
        }
    }

    /// Events not yet injected (pending + future).
    pub fn remaining(&self) -> usize {
        self.events.len() + self.pending.iter().map(VecDeque::len).sum::<usize>()
    }

    /// The most recent rejected non-monotonic absorb call, if any.
    pub fn last_regression(&self) -> Option<TraceRegression> {
        self.last_regression
    }

    /// How many non-monotonic absorb calls have been rejected.
    pub fn regressions(&self) -> u64 {
        self.regressions
    }

    fn absorb(&mut self, cycle: u64) {
        if let Some(last) = self.absorbed_through {
            if cycle == last {
                return;
            }
            if cycle < last {
                self.last_regression = Some(TraceRegression {
                    last,
                    attempted: cycle,
                });
                self.regressions += 1;
                return;
            }
        }
        while let Some(e) = self.events.front() {
            if e.cycle > cycle {
                break;
            }
            let e = self.events.pop_front().expect("front checked");
            self.pending[e.src.index()].push_back(NewPacket {
                dest: e.dest,
                size: e.size,
                class: e.class,
                origin: Some(e.cycle),
            });
        }
        self.absorbed_through = Some(cycle);
    }
}

impl Workload for TraceWorkload {
    fn generate(&mut self, node: NodeId, cycle: u64, _rng: &mut SmallRng) -> Option<NewPacket> {
        self.absorb(cycle);
        self.pending[node.index()].pop_front()
    }
}

/// Serializes events to the plain-text trace format: one
/// `cycle src dest size class` line per event, `#`-comments allowed.
///
/// The format is the interchange point for external traces (the role
/// Netrace's files play in the paper): dump real traces to this format and
/// replay them with [`TraceWorkload`].
pub fn write_trace<W: std::io::Write>(mut w: W, events: &[TraceEvent]) -> std::io::Result<()> {
    writeln!(w, "# footprint-noc trace: cycle src dest size class")?;
    for e in events {
        writeln!(
            w,
            "{} {} {} {} {}",
            e.cycle, e.src.0, e.dest.0, e.size, e.class
        )?;
    }
    Ok(())
}

/// Error from parsing a text trace.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseTraceError {
    /// A line did not have the five expected fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as an integer.
    BadInteger {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Events were not sorted by cycle.
    Unsorted {
        /// 1-based line number of the out-of-order event.
        line: usize,
    },
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseTraceError::FieldCount { line } => {
                write!(f, "line {line}: expected `cycle src dest size class`")
            }
            ParseTraceError::BadInteger { line, token } => {
                write!(f, "line {line}: `{token}` is not a valid integer")
            }
            ParseTraceError::Unsorted { line } => {
                write!(f, "line {line}: trace events must be sorted by cycle")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the plain-text trace format produced by [`write_trace`].
///
/// # Errors
///
/// Returns a [`ParseTraceError`] describing the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ParseTraceError> {
    let mut events = Vec::new();
    let mut last_cycle = 0u64;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(ParseTraceError::FieldCount { line });
        }
        let parse = |token: &str| -> Result<u64, ParseTraceError> {
            token.parse().map_err(|_| ParseTraceError::BadInteger {
                line,
                token: token.to_string(),
            })
        };
        let cycle = parse(fields[0])?;
        let src = parse(fields[1])? as u16;
        let dest = parse(fields[2])? as u16;
        let size = parse(fields[3])? as u16;
        let class = parse(fields[4])? as u8;
        if cycle < last_cycle {
            return Err(ParseTraceError::Unsorted { line });
        }
        last_cycle = cycle;
        events.push(TraceEvent {
            cycle,
            src: NodeId(src),
            dest: NodeId(dest),
            size,
            class,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ev(cycle: u64, src: u16, dest: u16) -> TraceEvent {
        TraceEvent {
            cycle,
            src: NodeId(src),
            dest: NodeId(dest),
            size: 1,
            class: 0,
        }
    }

    #[test]
    fn replays_in_time_order() {
        let mut tw = TraceWorkload::new(4, vec![ev(0, 0, 1), ev(2, 1, 2)]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(tw.remaining(), 2);
        assert!(tw.generate(NodeId(0), 0, &mut rng).is_some());
        assert!(tw.generate(NodeId(1), 0, &mut rng).is_none());
        assert!(tw.generate(NodeId(1), 1, &mut rng).is_none());
        assert_eq!(
            tw.generate(NodeId(1), 2, &mut rng).unwrap().dest,
            NodeId(2)
        );
        assert_eq!(tw.remaining(), 0);
    }

    #[test]
    fn bursts_spill_across_cycles() {
        let mut tw = TraceWorkload::new(2, vec![ev(0, 0, 1), ev(0, 0, 1), ev(0, 0, 1)]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(tw.generate(NodeId(0), 0, &mut rng).is_some());
        assert!(tw.generate(NodeId(0), 1, &mut rng).is_some());
        assert!(tw.generate(NodeId(0), 2, &mut rng).is_some());
        assert!(tw.generate(NodeId(0), 3, &mut rng).is_none());
    }

    #[test]
    fn backlog_packets_keep_original_birth() {
        // Three same-cycle events from one source spill across three
        // injection cycles, but each must still claim creation cycle 0 so
        // the source-queue delay shows up in measured latency.
        let mut tw = TraceWorkload::new(2, vec![ev(0, 0, 1), ev(0, 0, 1), ev(0, 0, 1)]);
        let mut rng = SmallRng::seed_from_u64(1);
        for cycle in 0..3 {
            let p = tw.generate(NodeId(0), cycle, &mut rng).unwrap();
            assert_eq!(p.origin, Some(0), "spilled packet lost its creation cycle");
        }
    }

    #[test]
    fn source_backlog_counts_toward_network_latency() {
        use footprint_routing::RoutingSpec;
        use footprint_sim::{Network, SimConfig};

        // Eight packets created the same cycle on one node drain through
        // the source at one per cycle; the queueing delay (mean 3.5
        // cycles) must appear in the measured packet latency.
        let latency = |events: Vec<TraceEvent>| {
            let mut net =
                Network::new(SimConfig::small(), RoutingSpec::Dor.build(), 1).unwrap();
            let count = events.len() as u64;
            let mut wl = TraceWorkload::new(16, events);
            net.run(&mut wl, 200);
            let stats = net.metrics().total();
            assert_eq!(stats.ejected_packets, count, "burst must fully drain");
            stats.mean_latency()
        };
        let single = latency(vec![ev(0, 0, 3)]);
        let burst = latency((0..8).map(|_| ev(0, 0, 3)).collect());
        assert!(
            burst > single + 3.0,
            "backlogged packets lost their queueing delay: single {single}, burst {burst}"
        );
    }

    #[test]
    fn non_monotonic_absorb_is_rejected_and_recorded() {
        let mut tw = TraceWorkload::new(2, vec![ev(0, 0, 1), ev(4, 0, 1), ev(9, 0, 1)]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(tw.generate(NodeId(0), 5, &mut rng).is_some());
        assert!(tw.generate(NodeId(0), 6, &mut rng).is_some());
        assert!(tw.last_regression().is_none());

        // The clock steps backwards: the call is skipped (no double
        // absorption, watermark intact) and the regression is recorded.
        assert!(tw.generate(NodeId(0), 3, &mut rng).is_none());
        assert_eq!(
            tw.last_regression(),
            Some(TraceRegression {
                last: 6,
                attempted: 3
            })
        );
        assert_eq!(tw.regressions(), 1);

        // Forward progress resumes normally from the intact watermark.
        let p = tw.generate(NodeId(0), 9, &mut rng).unwrap();
        assert_eq!(p.origin, Some(9));
        assert_eq!(tw.regressions(), 1);
        assert_eq!(tw.remaining(), 0);
        assert!(
            tw.last_regression().unwrap().to_string().contains("cycle 3"),
            "display should name the attempted cycle"
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let _ = TraceWorkload::new(4, vec![ev(5, 0, 1), ev(2, 1, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected() {
        let _ = TraceWorkload::new(2, vec![ev(0, 7, 1)]);
    }

    #[test]
    fn text_format_roundtrips() {
        let events = vec![ev(0, 0, 1), ev(3, 1, 2), ev(3, 2, 3)];
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(parse_trace(&text).unwrap(), events);
    }

    #[test]
    fn parser_skips_comments_and_blank_lines() {
        let text = "# header

0 1 2 3 0  # inline comment
";
        let parsed = parse_trace(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].src, NodeId(1));
        assert_eq!(parsed[0].size, 3);
    }

    #[test]
    fn parser_reports_malformed_lines() {
        assert_eq!(
            parse_trace("1 2 3"),
            Err(ParseTraceError::FieldCount { line: 1 })
        );
        assert!(matches!(
            parse_trace("0 1 x 1 0"),
            Err(ParseTraceError::BadInteger { line: 1, .. })
        ));
        assert_eq!(
            parse_trace("5 0 1 1 0
2 0 1 1 0"),
            Err(ParseTraceError::Unsorted { line: 2 })
        );
        assert!(parse_trace("1 2 3").unwrap_err().to_string().contains("line 1"));
    }
}
