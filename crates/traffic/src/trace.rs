//! Timestamped trace replay.
//!
//! The paper replays PARSEC 2.0 traces produced by Netrace. Those traces
//! are not redistributable here, so this module provides the replay
//! *mechanism* (any `(cycle, src, dest, size)` event list), and
//! [`crate::parsec`] provides synthetic per-application generators that
//! stand in for the trace content.

use footprint_sim::{NewPacket, Workload};
use footprint_topology::NodeId;
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// One trace event: a packet created at `cycle` on `src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Creation cycle.
    pub cycle: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Size in flits.
    pub size: u16,
    /// Traffic class.
    pub class: u8,
}

/// Replays a list of trace events as a [`Workload`].
///
/// Events whose cycle has passed are queued per source; each source injects
/// at most one packet per cycle (excess events spill into later cycles,
/// modeling a source-queue backlog exactly as a real trace-driven run
/// would).
#[derive(Debug)]
pub struct TraceWorkload {
    events: VecDeque<TraceEvent>,
    pending: Vec<VecDeque<NewPacket>>,
    absorbed_through: Option<u64>,
}

impl TraceWorkload {
    /// Builds a replay over `events` for a network of `nodes` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if events are not sorted by cycle or reference out-of-range
    /// nodes.
    pub fn new(nodes: usize, events: Vec<TraceEvent>) -> Self {
        for w in events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "trace events must be sorted");
        }
        for e in &events {
            assert!(e.src.index() < nodes, "trace source out of range");
            assert!(e.dest.index() < nodes, "trace dest out of range");
            assert!(e.size > 0, "zero-size trace packet");
        }
        TraceWorkload {
            events: events.into(),
            pending: (0..nodes).map(|_| VecDeque::new()).collect(),
            absorbed_through: None,
        }
    }

    /// Events not yet injected (pending + future).
    pub fn remaining(&self) -> usize {
        self.events.len() + self.pending.iter().map(VecDeque::len).sum::<usize>()
    }

    fn absorb(&mut self, cycle: u64) {
        if self.absorbed_through == Some(cycle) {
            return;
        }
        while let Some(e) = self.events.front() {
            if e.cycle > cycle {
                break;
            }
            let e = self.events.pop_front().expect("front checked");
            self.pending[e.src.index()].push_back(NewPacket {
                dest: e.dest,
                size: e.size,
                class: e.class,
            });
        }
        self.absorbed_through = Some(cycle);
    }
}

impl Workload for TraceWorkload {
    fn generate(&mut self, node: NodeId, cycle: u64, _rng: &mut SmallRng) -> Option<NewPacket> {
        self.absorb(cycle);
        self.pending[node.index()].pop_front()
    }
}

/// Serializes events to the plain-text trace format: one
/// `cycle src dest size class` line per event, `#`-comments allowed.
///
/// The format is the interchange point for external traces (the role
/// Netrace's files play in the paper): dump real traces to this format and
/// replay them with [`TraceWorkload`].
pub fn write_trace<W: std::io::Write>(mut w: W, events: &[TraceEvent]) -> std::io::Result<()> {
    writeln!(w, "# footprint-noc trace: cycle src dest size class")?;
    for e in events {
        writeln!(
            w,
            "{} {} {} {} {}",
            e.cycle, e.src.0, e.dest.0, e.size, e.class
        )?;
    }
    Ok(())
}

/// Error from parsing a text trace.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseTraceError {
    /// A line did not have the five expected fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as an integer.
    BadInteger {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Events were not sorted by cycle.
    Unsorted {
        /// 1-based line number of the out-of-order event.
        line: usize,
    },
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseTraceError::FieldCount { line } => {
                write!(f, "line {line}: expected `cycle src dest size class`")
            }
            ParseTraceError::BadInteger { line, token } => {
                write!(f, "line {line}: `{token}` is not a valid integer")
            }
            ParseTraceError::Unsorted { line } => {
                write!(f, "line {line}: trace events must be sorted by cycle")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the plain-text trace format produced by [`write_trace`].
///
/// # Errors
///
/// Returns a [`ParseTraceError`] describing the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ParseTraceError> {
    let mut events = Vec::new();
    let mut last_cycle = 0u64;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(ParseTraceError::FieldCount { line });
        }
        let parse = |token: &str| -> Result<u64, ParseTraceError> {
            token.parse().map_err(|_| ParseTraceError::BadInteger {
                line,
                token: token.to_string(),
            })
        };
        let cycle = parse(fields[0])?;
        let src = parse(fields[1])? as u16;
        let dest = parse(fields[2])? as u16;
        let size = parse(fields[3])? as u16;
        let class = parse(fields[4])? as u8;
        if cycle < last_cycle {
            return Err(ParseTraceError::Unsorted { line });
        }
        last_cycle = cycle;
        events.push(TraceEvent {
            cycle,
            src: NodeId(src),
            dest: NodeId(dest),
            size,
            class,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ev(cycle: u64, src: u16, dest: u16) -> TraceEvent {
        TraceEvent {
            cycle,
            src: NodeId(src),
            dest: NodeId(dest),
            size: 1,
            class: 0,
        }
    }

    #[test]
    fn replays_in_time_order() {
        let mut tw = TraceWorkload::new(4, vec![ev(0, 0, 1), ev(2, 1, 2)]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(tw.remaining(), 2);
        assert!(tw.generate(NodeId(0), 0, &mut rng).is_some());
        assert!(tw.generate(NodeId(1), 0, &mut rng).is_none());
        assert!(tw.generate(NodeId(1), 1, &mut rng).is_none());
        assert_eq!(
            tw.generate(NodeId(1), 2, &mut rng).unwrap().dest,
            NodeId(2)
        );
        assert_eq!(tw.remaining(), 0);
    }

    #[test]
    fn bursts_spill_across_cycles() {
        let mut tw = TraceWorkload::new(2, vec![ev(0, 0, 1), ev(0, 0, 1), ev(0, 0, 1)]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(tw.generate(NodeId(0), 0, &mut rng).is_some());
        assert!(tw.generate(NodeId(0), 1, &mut rng).is_some());
        assert!(tw.generate(NodeId(0), 2, &mut rng).is_some());
        assert!(tw.generate(NodeId(0), 3, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let _ = TraceWorkload::new(4, vec![ev(5, 0, 1), ev(2, 1, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected() {
        let _ = TraceWorkload::new(2, vec![ev(0, 7, 1)]);
    }

    #[test]
    fn text_format_roundtrips() {
        let events = vec![ev(0, 0, 1), ev(3, 1, 2), ev(3, 2, 3)];
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(parse_trace(&text).unwrap(), events);
    }

    #[test]
    fn parser_skips_comments_and_blank_lines() {
        let text = "# header

0 1 2 3 0  # inline comment
";
        let parsed = parse_trace(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].src, NodeId(1));
        assert_eq!(parsed[0].size, 3);
    }

    #[test]
    fn parser_reports_malformed_lines() {
        assert_eq!(
            parse_trace("1 2 3"),
            Err(ParseTraceError::FieldCount { line: 1 })
        );
        assert!(matches!(
            parse_trace("0 1 x 1 0"),
            Err(ParseTraceError::BadInteger { line: 1, .. })
        ));
        assert_eq!(
            parse_trace("5 0 1 1 0
2 0 1 1 0"),
            Err(ParseTraceError::Unsorted { line: 2 })
        );
        assert!(parse_trace("1 2 3").unwrap_err().to_string().contains("line 1"));
    }
}
