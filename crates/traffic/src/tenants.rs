//! Multi-tenant workloads: independent traffic sources sharing the mesh.
//!
//! A tenant is a named workload (any pattern, rate and modulation) tagged
//! with a distinct traffic class so the stats layer can attribute every
//! packet. [`TenantWorkload`] multiplexes the tenants onto the single
//! packet-per-node-per-cycle injection budget.
//!
//! # Draw-order contract
//!
//! Each cycle the tenants are polled in declaration order and the **first
//! tenant that generates wins** the node's injection slot — the same
//! first-firing-wins discipline as `FlowSet` in `footprint-sim`, and with
//! the same determinism consequences: every polled tenant draws from the
//! shared RNG whether or not it wins, so the composite sequence is exactly
//! reproducible for a fixed tenant order and seed, while *reordering*
//! tenants produces a different (equally valid) sequence. Earlier tenants
//! thin later tenants' accepted load by at most the product of their
//! injection probabilities; keep aggregate rates within the budget (the
//! `footprint-core` builder enforces the sum ≤ 1.0 flit/node/cycle) and
//! the distortion stays second-order.

use footprint_sim::{NewPacket, Workload};
use footprint_topology::NodeId;
use rand::rngs::SmallRng;

/// One tenant: a named, class-tagged workload share of the mesh.
pub struct Tenant {
    /// Display name, carried into per-tenant summaries.
    pub name: String,
    /// Traffic class stamped on every packet this tenant generates
    /// (overriding any class the inner workload set).
    pub class: u8,
    /// The tenant's traffic source.
    pub workload: Box<dyn Workload>,
}

impl Tenant {
    /// Creates a tenant.
    pub fn new(name: impl Into<String>, class: u8, workload: Box<dyn Workload>) -> Self {
        Tenant {
            name: name.into(),
            class,
            workload,
        }
    }
}

impl core::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

/// Multiplexes tenant workloads onto the shared injection budget (see the
/// [module docs](self) for the draw-order contract).
#[derive(Debug)]
pub struct TenantWorkload {
    tenants: Vec<Tenant>,
}

impl TenantWorkload {
    /// Creates a multi-tenant workload.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or two tenants share a traffic class
    /// (classes are the attribution key for per-tenant accounting).
    pub fn new(tenants: Vec<Tenant>) -> Self {
        assert!(!tenants.is_empty(), "a TenantWorkload needs at least one tenant");
        let mut seen = [false; 256];
        for t in &tenants {
            assert!(
                !std::mem::replace(&mut seen[t.class as usize], true),
                "tenants `{}` and another share class {}",
                t.name,
                t.class
            );
        }
        TenantWorkload { tenants }
    }

    /// Tenant names in declaration (= polling) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tenants.iter().map(|t| t.name.as_str())
    }
}

impl Workload for TenantWorkload {
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        let mut winner: Option<NewPacket> = None;
        // Poll *every* tenant even after one wins: each tenant's RNG
        // consumption must not depend on the other tenants' outcomes, or
        // determinism would hold only for this exact tenant set.
        for t in &mut self.tenants {
            let p = t.workload.generate(node, cycle, rng);
            if winner.is_none() {
                if let Some(mut p) = p {
                    p.class = t.class;
                    winner = Some(p);
                }
            }
        }
        winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_sim::SingleFlow;
    use rand::SeedableRng;

    #[test]
    fn packets_carry_the_tenant_class() {
        let mut wl = TenantWorkload::new(vec![
            Tenant::new("a", 0, Box::new(SingleFlow::new(NodeId(0), NodeId(1), 1.0, 1))),
            Tenant::new("b", 3, Box::new(SingleFlow::new(NodeId(2), NodeId(1), 1.0, 1))),
        ]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(wl.generate(NodeId(0), 0, &mut rng).unwrap().class, 0);
        assert_eq!(wl.generate(NodeId(2), 0, &mut rng).unwrap().class, 3);
        assert!(wl.generate(NodeId(3), 0, &mut rng).is_none());
        assert_eq!(wl.names().collect::<Vec<_>>(), ["a", "b"]);
    }

    #[test]
    fn first_tenant_wins_contended_slots() {
        let mut wl = TenantWorkload::new(vec![
            Tenant::new("hi", 1, Box::new(SingleFlow::new(NodeId(0), NodeId(1), 1.0, 1))),
            Tenant::new("lo", 2, Box::new(SingleFlow::new(NodeId(0), NodeId(2), 1.0, 1))),
        ]);
        let mut rng = SmallRng::seed_from_u64(1);
        for c in 0..50 {
            let p = wl.generate(NodeId(0), c, &mut rng).unwrap();
            assert_eq!(p.class, 1, "declaration order decides the winner");
        }
    }

    #[test]
    fn losing_tenants_still_draw() {
        // The composite's RNG consumption per call is the sum of all
        // tenants' — a winning first tenant must not shield the second
        // tenant's draw. Replay the composite by hand: one Bernoulli per
        // tenant per call, first success wins, regardless of who won.
        use rand::Rng;
        let mut wl = TenantWorkload::new(vec![
            Tenant::new("a", 1, Box::new(SingleFlow::new(NodeId(0), NodeId(1), 0.5, 1))),
            Tenant::new("b", 2, Box::new(SingleFlow::new(NodeId(0), NodeId(2), 0.5, 1))),
        ]);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut manual = SmallRng::seed_from_u64(42);
        for c in 0..400u64 {
            let got = wl.generate(NodeId(0), c, &mut rng).map(|p| p.class);
            let a = manual.gen_bool(0.5);
            let b = manual.gen_bool(0.5);
            let want = if a {
                Some(1)
            } else if b {
                Some(2)
            } else {
                None
            };
            assert_eq!(got, want, "cycle {c}");
        }
    }

    #[test]
    #[should_panic(expected = "share class")]
    fn duplicate_classes_are_rejected() {
        let _ = TenantWorkload::new(vec![
            Tenant::new("a", 1, Box::new(footprint_sim::NoTraffic)),
            Tenant::new("b", 1, Box::new(footprint_sim::NoTraffic)),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_tenant_sets_are_rejected() {
        let _ = TenantWorkload::new(vec![]);
    }
}
