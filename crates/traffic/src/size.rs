//! Packet-size distributions (paper Table 2: single-flit baseline, and
//! uniformly distributed 1–6 flit packets for §4.2.2).

use core::fmt;
use rand::rngs::SmallRng;
use rand::Rng;

/// A packet-size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketSize {
    /// Every packet has exactly this many flits.
    Fixed(u16),
    /// Sizes drawn uniformly from `[lo, hi]` flits.
    Uniform {
        /// Smallest size (≥ 1).
        lo: u16,
        /// Largest size.
        hi: u16,
    },
}

impl PacketSize {
    /// The paper's baseline: single-flit packets.
    pub const SINGLE: PacketSize = PacketSize::Fixed(1);

    /// The paper's variable-size configuration: 1–6 flits uniform.
    pub const PAPER_VARIABLE: PacketSize = PacketSize::Uniform { lo: 1, hi: 6 };

    /// Draws a size.
    ///
    /// # Panics
    ///
    /// Panics on an invalid distribution (zero size or `lo > hi`).
    pub fn sample(&self, rng: &mut SmallRng) -> u16 {
        match *self {
            PacketSize::Fixed(n) => {
                assert!(n > 0, "zero-size packet");
                n
            }
            PacketSize::Uniform { lo, hi } => {
                assert!(lo > 0 && lo <= hi, "invalid uniform size range");
                rng.gen_range(lo..=hi)
            }
        }
    }

    /// The mean size in flits — used to convert a flit injection rate into
    /// a packet generation probability.
    pub fn mean(&self) -> f64 {
        match *self {
            PacketSize::Fixed(n) => n as f64,
            PacketSize::Uniform { lo, hi } => (lo as f64 + hi as f64) / 2.0,
        }
    }
}

impl Default for PacketSize {
    fn default() -> Self {
        PacketSize::SINGLE
    }
}

impl fmt::Display for PacketSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketSize::Fixed(n) => write!(f, "{n}-flit"),
            PacketSize::Uniform { lo, hi } => write!(f, "{lo}..{hi}-flit uniform"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_always_returns_n() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(PacketSize::Fixed(3).sample(&mut rng), 3);
        }
        assert_eq!(PacketSize::Fixed(3).mean(), 3.0);
    }

    #[test]
    fn uniform_stays_in_range_and_centers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = PacketSize::PAPER_VARIABLE;
        let mut sum = 0u64;
        let n = 60_000;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((1..=6).contains(&s));
            sum += s as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - d.mean()).abs() < 0.05, "sampled mean {mean}");
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    #[should_panic(expected = "zero-size packet")]
    fn zero_fixed_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = PacketSize::Fixed(0).sample(&mut rng);
    }

    #[test]
    #[should_panic(expected = "invalid uniform size range")]
    fn inverted_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = PacketSize::Uniform { lo: 4, hi: 2 }.sample(&mut rng);
    }

    #[test]
    fn default_is_single_flit() {
        assert_eq!(PacketSize::default(), PacketSize::SINGLE);
        assert_eq!(PacketSize::SINGLE.to_string(), "1-flit");
        assert_eq!(PacketSize::PAPER_VARIABLE.to_string(), "1..6-flit uniform");
    }
}
