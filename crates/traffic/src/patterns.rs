//! Synthetic traffic patterns.
//!
//! The paper evaluates uniform random, transpose and shuffle (Figures 5–8);
//! the extra classics (bit-complement, bit-reverse, tornado, neighbor) are
//! provided for wider testing and ablations.

use core::fmt;
use footprint_topology::{AnyTopology, Coord, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

/// A destination-selection function over a topology.
///
/// Patterns are *pure* given the RNG: all state lives in the caller. A
/// pattern may exclude a node from participation by returning `None`.
/// Patterns address nodes by id and grid coordinate, so the same pattern
/// drives a mesh, a torus of the same dimensions, or a ring (which presents
/// as a `n×1` grid).
pub trait TrafficPattern: Send + Sync {
    /// Short display name ("uniform", "transpose", ...).
    fn name(&self) -> &'static str;

    /// Picks the destination for a packet injected at `src`, or `None` if
    /// `src` does not participate (e.g. fixed points of a permutation).
    fn dest(&self, topo: AnyTopology, src: NodeId, rng: &mut SmallRng) -> Option<NodeId>;

    /// Fraction of nodes that actively inject (1.0 for the classics;
    /// permutations with fixed points inject from fewer nodes).
    fn active_fraction(&self, topo: AnyTopology) -> f64 {
        let active = topo
            .nodes()
            .filter(|n| {
                // A node participates if it has any possible destination;
                // deterministic patterns are probed directly.
                let mut probe = crate::pattern_probe_rng();
                self.dest(topo, *n, &mut probe).is_some()
            })
            .count();
        active as f64 / topo.len() as f64
    }
}

/// Uniform random: every other node is equally likely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Uniform;

impl TrafficPattern for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn dest(&self, topo: AnyTopology, src: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
        let n = topo.len() as u16;
        if n <= 1 {
            return None;
        }
        let mut d = rng.gen_range(0..n - 1);
        if d >= src.0 {
            d += 1; // skip self
        }
        Some(NodeId(d))
    }
}

/// Transpose: `(x, y) → (y, x)`. Diagonal nodes do not inject.
/// Requires a square grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Transpose;

impl TrafficPattern for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn dest(&self, topo: AnyTopology, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        assert_eq!(topo.width(), topo.height(), "transpose needs a square grid");
        let c = topo.coord(src);
        if c.x == c.y {
            return None;
        }
        Some(topo.node_at(Coord::new(c.y, c.x)))
    }
}

/// Shuffle: destination id is the source id rotated left by one bit
/// (`d_i = s_{i-1 mod b}`). Requires a power-of-two node count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Shuffle;

impl TrafficPattern for Shuffle {
    fn name(&self) -> &'static str {
        "shuffle"
    }

    fn dest(&self, topo: AnyTopology, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let n = topo.len();
        assert!(n.is_power_of_two(), "shuffle needs a power-of-two node count");
        let bits = n.trailing_zeros();
        let s = src.0 as usize;
        let d = ((s << 1) | (s >> (bits - 1) as usize)) & (n - 1);
        if d == s {
            return None;
        }
        Some(NodeId(d as u16))
    }
}

/// Bit-complement: destination id is the bitwise complement of the source.
/// Requires a power-of-two node count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitComplement;

impl TrafficPattern for BitComplement {
    fn name(&self) -> &'static str {
        "bit-complement"
    }

    fn dest(&self, topo: AnyTopology, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let n = topo.len();
        assert!(n.is_power_of_two(), "bit-complement needs a power-of-two node count");
        Some(NodeId((!(src.0 as usize) & (n - 1)) as u16))
    }
}

/// Bit-reverse: destination id is the bit-reversed source id.
/// Requires a power-of-two node count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitReverse;

impl TrafficPattern for BitReverse {
    fn name(&self) -> &'static str {
        "bit-reverse"
    }

    fn dest(&self, topo: AnyTopology, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let n = topo.len();
        assert!(n.is_power_of_two(), "bit-reverse needs a power-of-two node count");
        let bits = n.trailing_zeros();
        let mut s = src.0 as usize;
        let mut d = 0usize;
        for _ in 0..bits {
            d = (d << 1) | (s & 1);
            s >>= 1;
        }
        if d == src.0 as usize {
            None
        } else {
            Some(NodeId(d as u16))
        }
    }
}

/// Tornado: halfway around each dimension
/// (`(x, y) → (x + ⌈w/2⌉ - 1 mod w, y)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tornado;

impl TrafficPattern for Tornado {
    fn name(&self) -> &'static str {
        "tornado"
    }

    fn dest(&self, topo: AnyTopology, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let c = topo.coord(src);
        let w = topo.width();
        let shift = w.div_ceil(2) - 1;
        if shift == 0 {
            return None;
        }
        Some(topo.node_at(Coord::new((c.x + shift) % w, c.y)))
    }
}

/// Neighbor: one hop east, wrapping (stresses single links uniformly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Neighbor;

impl TrafficPattern for Neighbor {
    fn name(&self) -> &'static str {
        "neighbor"
    }

    fn dest(&self, topo: AnyTopology, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        let c = topo.coord(src);
        Some(topo.node_at(Coord::new((c.x + 1) % topo.width(), c.y)))
    }
}

/// An explicit permutation (e.g. the four-flow example of the paper's
/// Figure 2). Nodes without a mapping do not inject.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<Option<NodeId>>,
}

impl Permutation {
    /// Builds a permutation over `topo` from explicit `(src, dest)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a source appears twice or a pair maps a node to itself.
    pub fn from_pairs(topo: impl Into<AnyTopology>, pairs: &[(NodeId, NodeId)]) -> Self {
        let topo = topo.into();
        let mut map = vec![None; topo.len()];
        for &(s, d) in pairs {
            assert_ne!(s, d, "self-pair in permutation");
            assert!(map[s.index()].is_none(), "duplicate source {s}");
            map[s.index()] = Some(d);
        }
        Permutation { map }
    }

    /// The paper's Figure 2 example on a 4×4 mesh:
    /// `{n0→n10, n1→n15, n4→n13, n12→n13}`.
    pub fn figure2_example(topo: impl Into<AnyTopology>) -> Self {
        let topo = topo.into();
        assert!(
            topo.width() >= 4 && topo.height() >= 4,
            "figure 2 example needs at least a 4x4 grid"
        );
        Self::from_pairs(
            topo,
            &[
                (NodeId(0), NodeId(10)),
                (NodeId(1), NodeId(15)),
                (NodeId(4), NodeId(13)),
                (NodeId(12), NodeId(13)),
            ],
        )
    }
}

impl TrafficPattern for Permutation {
    fn name(&self) -> &'static str {
        "permutation"
    }

    fn dest(&self, _topo: AnyTopology, src: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        self.map.get(src.index()).copied().flatten()
    }
}

/// A pattern/topology mismatch caught at construction time: the pattern's
/// destination function is only defined on a power-of-two node count, and
/// the fabric has `nodes` nodes.
///
/// Catching this when the workload is *built* turns what used to be a
/// mid-simulation panic (the first time the pattern computed a destination)
/// into an ordinary configuration error the caller can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternError {
    /// The pattern's display name.
    pub pattern: &'static str,
    /// The offending node count.
    pub nodes: usize,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern `{}` requires a power-of-two node count, got {}",
            self.pattern, self.nodes
        )
    }
}

impl std::error::Error for PatternError {}

/// The named patterns, for CLI/config parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternSpec {
    /// Uniform random.
    Uniform,
    /// Matrix transpose.
    Transpose,
    /// Bit shuffle.
    Shuffle,
    /// Bit complement.
    BitComplement,
    /// Bit reverse.
    BitReverse,
    /// Tornado.
    Tornado,
    /// Nearest neighbor.
    Neighbor,
}

impl PatternSpec {
    /// The three patterns used in the paper's Figures 5–8.
    pub const PAPER_SET: [PatternSpec; 3] = [
        PatternSpec::Uniform,
        PatternSpec::Transpose,
        PatternSpec::Shuffle,
    ];

    /// Instantiates the pattern after checking it is defined on `topo`.
    ///
    /// The bit-manipulating patterns (shuffle, bit-complement, bit-reverse)
    /// only make sense on a power-of-two node count; [`PatternSpec::build`]
    /// defers that check to the first destination computation (a panic deep
    /// inside the simulation), while this constructor rejects the mismatch
    /// up front.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] naming the pattern and node count when the
    /// topology does not satisfy the pattern's structural requirement.
    pub fn build_for(
        self,
        topo: impl Into<AnyTopology>,
    ) -> Result<Box<dyn TrafficPattern>, PatternError> {
        let topo = topo.into();
        let needs_power_of_two = matches!(
            self,
            PatternSpec::Shuffle | PatternSpec::BitComplement | PatternSpec::BitReverse
        );
        if needs_power_of_two && !topo.len().is_power_of_two() {
            return Err(PatternError {
                pattern: self.name(),
                nodes: topo.len(),
            });
        }
        Ok(self.build())
    }

    /// Instantiates the pattern.
    pub fn build(self) -> Box<dyn TrafficPattern> {
        match self {
            PatternSpec::Uniform => Box::new(Uniform),
            PatternSpec::Transpose => Box::new(Transpose),
            PatternSpec::Shuffle => Box::new(Shuffle),
            PatternSpec::BitComplement => Box::new(BitComplement),
            PatternSpec::BitReverse => Box::new(BitReverse),
            PatternSpec::Tornado => Box::new(Tornado),
            PatternSpec::Neighbor => Box::new(Neighbor),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PatternSpec::Uniform => "uniform",
            PatternSpec::Transpose => "transpose",
            PatternSpec::Shuffle => "shuffle",
            PatternSpec::BitComplement => "bit-complement",
            PatternSpec::BitReverse => "bit-reverse",
            PatternSpec::Tornado => "tornado",
            PatternSpec::Neighbor => "neighbor",
        }
    }
}

impl fmt::Display for PatternSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::{Mesh, Ring, Torus};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn square4() -> AnyTopology {
        Mesh::square(4).into()
    }

    #[test]
    fn uniform_never_self_and_covers_nodes() {
        let mesh = square4();
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = Uniform.dest(mesh, NodeId(5), &mut r).unwrap();
            assert_ne!(d, NodeId(5));
            seen[d.index()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 15);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = AnyTopology::from(Mesh::square(8));
        let mut r = rng();
        // (5,1) = n13 → (1,5) = n41.
        assert_eq!(Transpose.dest(mesh, NodeId(13), &mut r), Some(NodeId(41)));
        // Diagonal nodes idle.
        assert_eq!(Transpose.dest(mesh, NodeId(9), &mut r), None); // (1,1)
    }

    #[test]
    fn shuffle_rotates_bits() {
        let mesh = square4(); // 16 nodes, 4 bits
        let mut r = rng();
        // 0b0011 → 0b0110
        assert_eq!(Shuffle.dest(mesh, NodeId(3), &mut r), Some(NodeId(6)));
        // 0b1000 → 0b0001
        assert_eq!(Shuffle.dest(mesh, NodeId(8), &mut r), Some(NodeId(1)));
        // Fixed points (0, 15) idle.
        assert_eq!(Shuffle.dest(mesh, NodeId(0), &mut r), None);
        assert_eq!(Shuffle.dest(mesh, NodeId(15), &mut r), None);
    }

    #[test]
    fn bit_complement_is_involutive() {
        let mesh = square4();
        let mut r = rng();
        for n in mesh.nodes() {
            let d = BitComplement.dest(mesh, n, &mut r).unwrap();
            assert_eq!(BitComplement.dest(mesh, d, &mut r), Some(n));
            assert_ne!(d, n);
        }
    }

    #[test]
    fn bit_reverse_examples() {
        let mesh = square4();
        let mut r = rng();
        // 0b0001 → 0b1000
        assert_eq!(BitReverse.dest(mesh, NodeId(1), &mut r), Some(NodeId(8)));
        // Palindromes idle: 0b0110.
        assert_eq!(BitReverse.dest(mesh, NodeId(6), &mut r), None);
    }

    #[test]
    fn tornado_moves_half_way() {
        let mesh = AnyTopology::from(Mesh::square(8));
        let mut r = rng();
        // shift = ceil(8/2) - 1 = 3: (0,0) → (3,0).
        assert_eq!(Tornado.dest(mesh, NodeId(0), &mut r), Some(NodeId(3)));
        assert_eq!(Tornado.dest(mesh, NodeId(7), &mut r), Some(NodeId(2)));
    }

    #[test]
    fn neighbor_wraps_east() {
        let mesh = square4();
        let mut r = rng();
        assert_eq!(Neighbor.dest(mesh, NodeId(0), &mut r), Some(NodeId(1)));
        assert_eq!(Neighbor.dest(mesh, NodeId(3), &mut r), Some(NodeId(0)));
    }

    #[test]
    fn patterns_agree_across_same_shape_topologies() {
        // Destination functions depend only on ids and grid coordinates, so
        // a torus of the same dimensions sees the identical pattern.
        let mesh = AnyTopology::from(Mesh::square(4));
        let torus = AnyTopology::from(Torus::square(4));
        let mut r1 = rng();
        let mut r2 = rng();
        for n in mesh.nodes() {
            assert_eq!(
                Transpose.dest(mesh, n, &mut r1),
                Transpose.dest(torus, n, &mut r2)
            );
            assert_eq!(
                Tornado.dest(mesh, n, &mut r1),
                Tornado.dest(torus, n, &mut r2)
            );
        }
    }

    #[test]
    fn ring_presents_as_flat_grid_to_patterns() {
        let ring = AnyTopology::from(Ring::new(16));
        let mut r = rng();
        // Neighbor walks the ring east with wraparound.
        assert_eq!(Neighbor.dest(ring, NodeId(15), &mut r), Some(NodeId(0)));
        // Bit patterns work off the node count alone.
        assert_eq!(Shuffle.dest(ring, NodeId(3), &mut r), Some(NodeId(6)));
        assert!(PatternSpec::Shuffle.build_for(ring).is_ok());
    }

    #[test]
    fn figure2_permutation_matches_paper() {
        let mesh = square4();
        let p = Permutation::figure2_example(mesh);
        let mut r = rng();
        assert_eq!(p.dest(mesh, NodeId(0), &mut r), Some(NodeId(10)));
        assert_eq!(p.dest(mesh, NodeId(1), &mut r), Some(NodeId(15)));
        assert_eq!(p.dest(mesh, NodeId(4), &mut r), Some(NodeId(13)));
        assert_eq!(p.dest(mesh, NodeId(12), &mut r), Some(NodeId(13)));
        assert_eq!(p.dest(mesh, NodeId(2), &mut r), None);
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn permutation_rejects_duplicate_sources() {
        let mesh = square4();
        let _ = Permutation::from_pairs(
            mesh,
            &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))],
        );
    }

    #[test]
    fn active_fraction_reflects_fixed_points() {
        let mesh = square4();
        assert!((Uniform.active_fraction(mesh) - 1.0).abs() < 1e-12);
        // Transpose: 4 diagonal nodes idle out of 16.
        assert!((Transpose.active_fraction(mesh) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn power_of_two_patterns_reject_odd_meshes_at_build() {
        // 6×6 = 36 nodes: not a power of two, so the bit patterns must be
        // rejected at construction instead of panicking mid-run.
        let odd = AnyTopology::from(Mesh::square(6));
        for spec in [
            PatternSpec::Shuffle,
            PatternSpec::BitComplement,
            PatternSpec::BitReverse,
        ] {
            let err = spec.build_for(odd).err().expect("6x6 must be rejected");
            assert_eq!(err, PatternError { pattern: spec.name(), nodes: 36 });
            assert!(err.to_string().contains(spec.name()));
            assert!(err.to_string().contains("36"));
        }
        // 8×8 = 64 nodes: accepted.
        let pow2 = AnyTopology::from(Mesh::square(8));
        for spec in [
            PatternSpec::Shuffle,
            PatternSpec::BitComplement,
            PatternSpec::BitReverse,
        ] {
            assert_eq!(spec.build_for(pow2).unwrap().name(), spec.name());
        }
        // Patterns without the structural requirement accept any topology.
        assert!(PatternSpec::Uniform.build_for(odd).is_ok());
        assert!(PatternSpec::Tornado.build_for(odd).is_ok());
    }

    #[test]
    fn spec_builds_matching_names() {
        for spec in [
            PatternSpec::Uniform,
            PatternSpec::Transpose,
            PatternSpec::Shuffle,
            PatternSpec::BitComplement,
            PatternSpec::BitReverse,
            PatternSpec::Tornado,
            PatternSpec::Neighbor,
        ] {
            assert_eq!(spec.build().name(), spec.name());
        }
        assert_eq!(PatternSpec::PAPER_SET.len(), 3);
    }
}
