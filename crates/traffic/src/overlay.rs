//! Workload composition.

use footprint_sim::{NewPacket, Workload};
use footprint_topology::NodeId;
use rand::rngs::SmallRng;

/// Composes two workloads: at each node and cycle the primary workload is
/// consulted first; the secondary only injects where the primary declined.
///
/// This is how foreground/background mixes are built — e.g. the Figure 2
/// permutation flows over a light uniform background:
///
/// ```
/// use footprint_traffic::{Overlay, SyntheticWorkload, PacketSize, Permutation, patterns::Uniform};
/// use footprint_topology::Mesh;
///
/// let mesh = Mesh::square(4);
/// let fg = SyntheticWorkload::new(
///     mesh, Box::new(Permutation::figure2_example(mesh)), PacketSize::SINGLE, 1.0,
/// ).with_class(1);
/// let bg = SyntheticWorkload::new(
///     mesh, Box::new(Uniform), PacketSize::SINGLE, 0.15,
/// );
/// let _mix = Overlay::new(fg, bg);
/// ```
#[derive(Debug)]
pub struct Overlay<A, B> {
    primary: A,
    secondary: B,
}

impl<A: Workload, B: Workload> Overlay<A, B> {
    /// Composes `primary` over `secondary`.
    pub fn new(primary: A, secondary: B) -> Self {
        Overlay { primary, secondary }
    }
}

impl<A: Workload, B: Workload> Workload for Overlay<A, B> {
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        self.primary
            .generate(node, cycle, rng)
            .or_else(|| self.secondary.generate(node, cycle, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_sim::{SingleFlow, NoTraffic};
    use rand::SeedableRng;

    #[test]
    fn primary_takes_precedence() {
        let a = SingleFlow {
            src: NodeId(0),
            dest: NodeId(1),
            rate: 1.0,
            size: 1,
        };
        let b = SingleFlow {
            src: NodeId(0),
            dest: NodeId(2),
            rate: 1.0,
            size: 1,
        };
        let mut o = Overlay::new(a, b);
        let mut rng = SmallRng::seed_from_u64(1);
        let p = o.generate(NodeId(0), 0, &mut rng).unwrap();
        assert_eq!(p.dest, NodeId(1));
    }

    #[test]
    fn secondary_fills_gaps() {
        let b = SingleFlow {
            src: NodeId(3),
            dest: NodeId(2),
            rate: 1.0,
            size: 1,
        };
        let mut o = Overlay::new(NoTraffic, b);
        let mut rng = SmallRng::seed_from_u64(1);
        let p = o.generate(NodeId(3), 0, &mut rng).unwrap();
        assert_eq!(p.dest, NodeId(2));
        assert!(o.generate(NodeId(0), 0, &mut rng).is_none());
    }
}
