//! Packets and flits.

use core::fmt;
use footprint_topology::NodeId;

/// Globally unique packet identifier (monotonic per simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet: carries the routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit: releases the VCs it passes through.
    Tail,
    /// Single-flit packet: head and tail at once (the paper's baseline
    /// packet size).
    Single,
}

impl FlitKind {
    /// `true` for `Head` and `Single`.
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// `true` for `Tail` and `Single`.
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }

    /// The kind of flit `seq` (0-based) in a packet of `size` flits.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= size` or `size == 0`.
    pub fn for_position(seq: u16, size: u16) -> FlitKind {
        assert!(size > 0 && seq < size, "flit position out of range");
        match (seq, size) {
            (_, 1) => FlitKind::Single,
            (0, _) => FlitKind::Head,
            (s, n) if s + 1 == n => FlitKind::Tail,
            _ => FlitKind::Body,
        }
    }
}

/// A flow-control digit: the unit of buffering and link transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Kind (head/body/tail/single).
    pub kind: FlitKind,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Flit index within the packet (0 = head).
    pub seq: u16,
    /// Packet size in flits.
    pub size: u16,
    /// Cycle the packet was created at the source (start of source
    /// queueing — packet latency is measured from here, as in BookSim).
    pub birth: u64,
    /// Traffic class tag (0 = default; used e.g. to separate hotspot flows
    /// from background traffic in the Figure 9 experiment).
    pub class: u8,
    /// VC this flit travels on over the *current* link; rewritten at every
    /// hop by the switch-traversal stage.
    pub vc: u8,
}

impl Flit {
    /// `true` if this flit carries the routing information of its packet.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.kind.is_head()
    }

    /// `true` if this flit releases resources held by its packet.
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.kind.is_tail()
    }
}

/// A freshly generated packet, before flit decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewPacket {
    /// Destination endpoint.
    pub dest: NodeId,
    /// Size in flits (≥ 1).
    pub size: u16,
    /// Traffic class tag.
    pub class: u8,
    /// The cycle the packet was *created*, when that differs from the
    /// cycle the workload hands it to the network. Replayed traces set
    /// this to the recorded event cycle so packets backlogged behind the
    /// one-injection-per-cycle source still account their queueing delay;
    /// synthetic workloads leave it `None` (born at the generation cycle).
    pub origin: Option<u64>,
}

/// A packet waiting in (or streaming from) a source queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingPacket {
    /// Packet id.
    pub id: PacketId,
    /// Source endpoint (the node that owns the queue).
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Size in flits.
    pub size: u16,
    /// Creation cycle.
    pub birth: u64,
    /// Traffic class tag.
    pub class: u8,
    /// Next flit index to send (0 = nothing sent yet).
    pub sent: u16,
}

impl PendingPacket {
    /// Builds the next flit to transmit on VC `vc`.
    ///
    /// # Panics
    ///
    /// Panics if the packet has already been fully sent.
    pub fn next_flit(&mut self, vc: u8) -> Flit {
        let seq = self.sent;
        assert!(seq < self.size, "packet already fully sent");
        self.sent += 1;
        Flit {
            packet: self.id,
            kind: FlitKind::for_position(seq, self.size),
            src: self.src,
            dest: self.dest,
            seq,
            size: self.size,
            birth: self.birth,
            class: self.class,
            vc,
        }
    }

    /// `true` once every flit has been transmitted.
    #[inline]
    pub fn done(&self) -> bool {
        self.sent == self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_for_position() {
        assert_eq!(FlitKind::for_position(0, 1), FlitKind::Single);
        assert_eq!(FlitKind::for_position(0, 3), FlitKind::Head);
        assert_eq!(FlitKind::for_position(1, 3), FlitKind::Body);
        assert_eq!(FlitKind::for_position(2, 3), FlitKind::Tail);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kind_for_bad_position_panics() {
        let _ = FlitKind::for_position(3, 3);
    }

    #[test]
    fn single_is_head_and_tail() {
        assert!(FlitKind::Single.is_head());
        assert!(FlitKind::Single.is_tail());
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
    }

    #[test]
    fn pending_packet_streams_flits_in_order() {
        let mut p = PendingPacket {
            id: PacketId(7),
            src: NodeId(0),
            dest: NodeId(5),
            size: 3,
            birth: 100,
            class: 0,
            sent: 0,
        };
        let f0 = p.next_flit(2);
        assert!(f0.is_head());
        assert_eq!(f0.vc, 2);
        assert_eq!(f0.seq, 0);
        assert!(!p.done());
        let f1 = p.next_flit(2);
        assert_eq!(f1.kind, FlitKind::Body);
        let f2 = p.next_flit(2);
        assert!(f2.is_tail());
        assert!(p.done());
    }

    #[test]
    fn packet_id_displays() {
        assert_eq!(PacketId(3).to_string(), "p3");
    }
}
