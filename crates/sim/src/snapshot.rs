//! Binary codec for warm-start checkpoints.
//!
//! A snapshot is a flat little-endian byte stream: every component writes
//! its dynamic state in a fixed field order and reads it back in the same
//! order, validating geometry echoes as it goes. There is no schema or
//! tagging — the stream is only ever read by the build that wrote it (the
//! cache key upstream binds the full configuration), so corruption or a
//! version mismatch surfaces as a length/geometry error and the caller
//! falls back to a cold start.

use crate::packet::{Flit, FlitKind, PacketId};
use footprint_topology::NodeId;

/// Appends fixed-width little-endian fields to a growing buffer.
pub(crate) struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize` stored as `u64` (snapshots move between processes, not
    /// architectures, but the width is pinned anyway).
    #[inline]
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    #[inline]
    pub fn flit(&mut self, f: &Flit) {
        self.u64(f.packet.0);
        self.u8(match f.kind {
            FlitKind::Head => 0,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::Single => 3,
        });
        self.u16(f.src.0);
        self.u16(f.dest.0);
        self.u16(f.seq);
        self.u16(f.size);
        self.u64(f.birth);
        self.u8(f.class);
        self.u8(f.vc);
    }
}

/// Reads the fields back in writer order; every error is a `String` so the
/// caller can fold any failure into "cache miss, run cold".
pub(crate) struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("snapshot offset overflow")?;
        if end > self.buf.len() {
            return Err(format!(
                "snapshot truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    #[inline]
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    #[inline]
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    #[inline]
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    #[inline]
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    #[inline]
    pub fn usize(&mut self) -> Result<usize, String> {
        Ok(self.u64()? as usize)
    }

    /// Reads a `usize` and checks it against the live structure's value —
    /// the geometry echo that catches a snapshot applied to the wrong
    /// configuration.
    pub fn expect_usize(&mut self, expected: usize, what: &str) -> Result<(), String> {
        let got = self.usize()?;
        if got != expected {
            return Err(format!("snapshot {what} mismatch: stored {got}, live {expected}"));
        }
        Ok(())
    }

    pub fn flit(&mut self) -> Result<Flit, String> {
        let packet = PacketId(self.u64()?);
        let kind = match self.u8()? {
            0 => FlitKind::Head,
            1 => FlitKind::Body,
            2 => FlitKind::Tail,
            3 => FlitKind::Single,
            k => return Err(format!("snapshot flit kind {k} out of range")),
        };
        let src = NodeId(self.u16()?);
        let dest = NodeId(self.u16()?);
        let seq = self.u16()?;
        let size = self.u16()?;
        let birth = self.u64()?;
        let class = self.u8()?;
        let vc = self.u8()?;
        Ok(Flit {
            packet,
            kind,
            src,
            dest,
            seq,
            size,
            birth,
            class,
            vc,
        })
    }

    /// Fails unless every byte has been consumed — trailing garbage means
    /// the stream and the reader disagree about the state inventory.
    pub fn done(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "snapshot has {} unread trailing bytes",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.usize(12345);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        r.done().unwrap();
    }

    #[test]
    fn flit_round_trip() {
        let f = Flit {
            packet: PacketId(99),
            kind: FlitKind::Tail,
            src: NodeId(3),
            dest: NodeId(60),
            seq: 2,
            size: 3,
            birth: 1_000_000,
            class: 5,
            vc: 9,
        };
        let mut w = SnapWriter::new();
        w.flit(&f);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.flit().unwrap(), f);
        r.done().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_errors() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert!(r.u64().is_err());
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 1);
        assert!(r.done().is_err());
    }

    #[test]
    fn geometry_echo_catches_mismatch() {
        let mut w = SnapWriter::new();
        w.usize(16);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.expect_usize(64, "nodes").is_err());
    }
}
