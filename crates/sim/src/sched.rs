//! The active-set cycle scheduler: per-node activity tracking that lets
//! [`Network::step`](crate::Network::step) walk only the components with
//! work instead of the full mesh.
//!
//! # Why skipping is bit-exact
//!
//! Every skippable component is provably a no-op when idle:
//!
//! * A router with no resident flits has no staged launches, no waiting
//!   heads (so VC allocation evaluates no routing function and draws no
//!   randomness), and no active switch requests. The only state a dense
//!   tick would still mutate is the pair of switch-allocator round-robin
//!   pointers, which advance unconditionally — the scheduler compensates
//!   by advancing them for the skipped span when the router next wakes
//!   ([`Router::advance_arbiters`](crate::router::Router::advance_arbiters)).
//! * A source with an empty queue and no active VC returns before its
//!   first RNG draw or round-robin bump.
//! * A sink with empty buffers pops nothing and leaves its round-robin
//!   pointer untouched.
//! * A quiescent wire's tick is a rotation of empty stage buffers.
//!
//! Packet generation is the one per-node duty that can never be skipped:
//! the Bernoulli draw per node per cycle comes from the shared simulation
//! RNG, so the generation loop stays dense in every mode.
//!
//! Because all of the above are exact no-ops, any *over*-approximation of
//! the active set is harmless — a stale live bit costs a wasted visit, not
//! a divergence. The live sets here are conservative: a router is live
//! while any flit is resident in its input buffers or output stages, a
//! sink while it buffers flits, a source while its queue or active VC is
//! non-empty, and a wire while anything is in flight.
//!
//! # Layout
//!
//! The activity state the per-cycle walk touches is kept out of the
//! component structs, in the parallel arrays of [`SchedState`] — a
//! structure-of-arrays layout so the skip test for node *n* reads one bit
//! (or one counter) from a dense array instead of chasing the router's
//! heap-allocated internals.

/// Which cycle loop [`Network::step`](crate::Network::step) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Walk every router, wire and endpoint every cycle (the reference
    /// loop; what the simulator did before the active-set scheduler).
    Dense,
    /// Walk only components with pending work, waking them on flit
    /// arrival, credit return, workload injection, fault transitions and
    /// probe-requested full ticks. Bit-identical to [`Scheduler::Dense`].
    #[default]
    Active,
}

/// A fixed-capacity bitset over node indices, iterated in ascending order
/// (the order the dense loop visits nodes, which the shared RNG requires).
#[derive(Debug, Clone)]
pub(crate) struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    pub fn new(nodes: usize) -> Self {
        NodeSet {
            words: vec![0; nodes.div_ceil(64)],
        }
    }

    #[inline]
    pub fn insert(&mut self, node: usize) {
        self.words[node / 64] |= 1 << (node % 64);
    }

    #[inline]
    pub fn remove(&mut self, node: usize) {
        self.words[node / 64] &= !(1 << (node % 64));
    }

    #[cfg(test)]
    pub fn contains(&self, node: usize) -> bool {
        self.words[node / 64] & (1 << (node % 64)) != 0
    }

    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Appends every member to `out` in ascending order — the order the
    /// dense loop visits nodes, which the shared RNG requires. Snapshotting
    /// into a scratch buffer lets the caller mutate the set (and the rest
    /// of the network) while walking the members.
    pub fn collect_into(&self, out: &mut Vec<usize>) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }
}

/// Per-node activity state for the active-set scheduler, in parallel
/// (structure-of-arrays) layout.
#[derive(Debug)]
pub(crate) struct SchedState {
    /// Routers with at least one resident flit (input buffers or output
    /// stages). Persistent: set on flit delivery, cleared when the count
    /// returns to zero after processing.
    pub live: NodeSet,
    /// Resident flits per router, the counter behind `live`.
    pub router_work: Vec<u32>,
    /// The cycle each router expects to be processed next; the gap to the
    /// current cycle is the span its switch arbiters must catch up.
    pub next_expected: Vec<u64>,
    /// Nodes whose delivery stage must run this cycle (receivable wire
    /// content). Rebuilt every cycle during the wire scan.
    pub deliver: NodeSet,
    /// Sinks holding buffered flits.
    pub sink_live: NodeSet,
    /// Routers whose input occupancy changed since the side band last
    /// refreshed (flit pushed or switch-traversal pop).
    pub sideband_dirty: NodeSet,
    /// Scratch index buffer for bitset traversals.
    pub scratch: Vec<usize>,
}

impl SchedState {
    pub fn new(nodes: usize) -> Self {
        SchedState {
            live: NodeSet::new(nodes),
            router_work: vec![0; nodes],
            next_expected: vec![0; nodes],
            deliver: NodeSet::new(nodes),
            sink_live: NodeSet::new(nodes),
            sideband_dirty: NodeSet::new(nodes),
            scratch: Vec::with_capacity(nodes),
        }
    }

    /// Rebuilds the persistent sets from actual component state — the
    /// recovery path after white-box router mutation (tests that plant or
    /// corrupt state behind the bookkeeping's back). Arbiter lag accrued
    /// before the rebuild is applied, not discarded.
    pub fn resync(
        &mut self,
        routers: &mut [crate::router::Router],
        soa: &crate::soa::NocSoa,
        sinks: &[crate::endpoint::Sink],
        cycle: u64,
    ) {
        self.live.clear();
        self.sink_live.clear();
        for (ni, router) in routers.iter_mut().enumerate() {
            let lag = cycle.saturating_sub(self.next_expected[ni]);
            if lag > 0 {
                router.advance_arbiters(lag);
            }
            self.next_expected[ni] = cycle;
            let work = crate::cast::idx_u32(router.resident_flits(soa));
            self.router_work[ni] = work;
            if work > 0 {
                self.live.insert(ni);
            }
            self.sideband_dirty.insert(ni);
        }
        for (ni, sink) in sinks.iter().enumerate() {
            if sink.buffered() > 0 {
                self.sink_live.insert(ni);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodeset_insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        s.remove(64);
        assert!(!s.contains(64));
        s.clear();
        assert!(!s.contains(0) && !s.contains(129));
    }

    #[test]
    fn nodeset_iterates_ascending() {
        let mut s = NodeSet::new(200);
        for n in [150, 3, 64, 0, 199, 65] {
            s.insert(n);
        }
        let mut seen = Vec::new();
        s.collect_into(&mut seen);
        assert_eq!(seen, vec![0, 3, 64, 65, 150, 199]);
    }

    #[test]
    fn scheduler_defaults_to_active() {
        assert_eq!(Scheduler::default(), Scheduler::Active);
    }
}
