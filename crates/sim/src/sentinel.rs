//! The runtime invariant sentinel: an opt-in, always-compilable checker
//! that audits conservation and protocol invariants of the live network
//! every few cycles and turns the first violation into a typed report.
//!
//! The simulator's unit tests check behaviour at module boundaries; the
//! sentinel checks the *global* properties that hold across them on every
//! cycle of a real run:
//!
//! 1. **Flit conservation** — every injected flit is either resident
//!    somewhere (a wire, an input FIFO, an output stage, a sink buffer) or
//!    has been ejected. Packets dropped by the fault subsystem never become
//!    flits (they are discarded at generation, before the source queue), so
//!    the census is exact under any fault plan.
//! 2. **Credit conservation** — for every (channel, VC), the sum of
//!    upstream credits, staged flits, in-flight flits, in-flight credits
//!    and downstream buffered flits equals the buffer capacity. A leak
//!    here is the classic silent NoC bug: throughput quietly degrades
//!    with no crash to bisect.
//! 3. **VC state legality** — input route state, output allocation state,
//!    the holder relation between them, and Algorithm 1's owner-register
//!    discipline (audited through
//!    [`footprint_routing::invariant::audit_footprint_owner`]).
//! 4. **Protocol deadlock** — a liveness fixpoint over the wait-for
//!    structure of input-VC buffers that distinguishes a true cyclic
//!    deadlock (or an unroutable head) from watchdog-visible congestion.
//!
//! The sentinel is a [`Probe`]: attach it with
//! [`Network::run_probed`](crate::Network::run_probed) (or opt in through
//! the experiment layer's `FOOTPRINT_SENTINEL=1`). It observes only —
//! attaching it never perturbs RNG draws or simulation state, so a
//! sentinel-on run produces bit-identical results to a sentinel-off run.
//! On the first violation it stops checking and holds a
//! [`SentinelReport`] carrying the violation, the cycle it was detected,
//! and a state excerpt rendered through the dump machinery.

use std::fmt;

use crate::input::RouteState;
use crate::metrics::Probe;
use crate::network::Network;
use crate::observe::{FlitEvent, FlitEventKind};
use crate::output::OutVcState;
use crate::packet::PacketId;
use footprint_routing::{invariant, VcId, VcRequest};
use footprint_topology::{NodeId, Port, PORT_COUNT};
use rand::RngCore;

/// Upper bound on VCs per channel (mirrors the config validator's cap);
/// sizes the stack-allocated per-VC counting buffers.
const MAX_VCS: usize = 64;

/// The channel a credit-conservation violation was found on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentinelChannel {
    /// The source → router injection channel of the node.
    Injection,
    /// A router output channel (`Local` = the ejection channel).
    Output(Port),
}

impl fmt::Display for SentinelChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SentinelChannel::Injection => f.write_str("injection channel"),
            SentinelChannel::Output(p) => write!(f, "output channel {p}"),
        }
    }
}

/// One input-VC buffer participating in a deadlock finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlockMember {
    /// Router holding the buffer.
    pub node: NodeId,
    /// Input port of the buffer.
    pub in_port: Port,
    /// VC index.
    pub vc: u8,
    /// The packet at the front of the buffer.
    pub packet: PacketId,
    /// Its destination.
    pub dest: NodeId,
}

impl fmt::Display for DeadlockMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}/vc{} (packet {} -> {})",
            self.node, self.in_port, self.vc, self.packet.0, self.dest
        )
    }
}

/// What the deadlock detector found: a genuine wait-for cycle, or a head
/// that can never route at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockFinding {
    /// A cyclic wait: every member waits (directly or through a holder) on
    /// the next, and the last waits on the first. This is a protocol
    /// deadlock — no arbitration order can make progress.
    Cycle(Vec<DeadlockMember>),
    /// A waiting head whose routing function emits an empty request set:
    /// it will never be granted anything, cycles or not.
    DeadRoute(DeadlockMember),
    /// A waiting head stranded by the active fault mask: it has no viable
    /// route because its destination is unreachable under the algorithm's
    /// routing relation with the dead channels removed. Expected on
    /// faulted runs — severed routes strand packets by design — so the
    /// sentinel reports it as a classification, never as a violation.
    FaultStranded(DeadlockMember),
}

impl fmt::Display for DeadlockFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlockFinding::Cycle(members) => {
                write!(f, "wait-for cycle over {} input VCs: ", members.len())?;
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" -> ")?;
                    }
                    write!(f, "{m}")?;
                }
                f.write_str(" -> (back to start)")
            }
            DeadlockFinding::DeadRoute(m) => write!(
                f,
                "dead route: {m} has an empty request set — the routing \
                 function can never grant it an output"
            ),
            DeadlockFinding::FaultStranded(m) => write!(
                f,
                "fault-stranded head: {m} cannot reach its destination \
                 under the active fault mask (expected under faults, not a \
                 protocol deadlock)"
            ),
        }
    }
}

/// A violated runtime invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum SentinelViolation {
    /// The flit census does not balance: `injected != ejected + resident`.
    FlitConservation {
        /// Flits injected since the sentinel attached.
        injected: u64,
        /// Flits ejected since the sentinel attached.
        ejected: u64,
        /// Flits currently resident in wires, buffers, stages and sinks.
        resident: u64,
    },
    /// A (channel, VC) credit equation does not balance.
    CreditConservation {
        /// Upstream node of the channel.
        node: NodeId,
        /// Which channel of the node.
        channel: SentinelChannel,
        /// The VC.
        vc: u8,
        /// Upstream free-slot credits.
        upstream_credits: u32,
        /// Flits staged at the output port for this VC.
        staged: u32,
        /// Flits in flight on the forward wire.
        wire_flits: u32,
        /// Credits in flight on the reverse wire.
        wire_credits: u32,
        /// Flits buffered downstream.
        downstream: u32,
        /// The downstream buffer capacity the equation must sum to.
        capacity: u32,
    },
    /// An input or output VC is in a state the protocol cannot produce.
    IllegalVcState {
        /// Router (or source endpoint) with the illegal state.
        node: NodeId,
        /// The port of the offending VC (input or output per `detail`).
        port: Port,
        /// The VC.
        vc: u8,
        /// Human-readable description of the illegality.
        detail: String,
    },
    /// The wait-for analysis found buffers that can never make progress.
    ProtocolDeadlock(DeadlockFinding),
}

impl fmt::Display for SentinelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SentinelViolation::FlitConservation {
                injected,
                ejected,
                resident,
            } => write!(
                f,
                "flit conservation broken: {injected} injected != {ejected} ejected + \
                 {resident} resident (delta {})",
                *injected as i128 - (*ejected as i128 + *resident as i128)
            ),
            SentinelViolation::CreditConservation {
                node,
                channel,
                vc,
                upstream_credits,
                staged,
                wire_flits,
                wire_credits,
                downstream,
                capacity,
            } => write!(
                f,
                "credit conservation broken on {channel} VC {vc} at {node}: \
                 {upstream_credits} credits + {staged} staged + {wire_flits} wire flits + \
                 {wire_credits} wire credits + {downstream} downstream = {}, capacity {capacity}",
                upstream_credits + staged + wire_flits + wire_credits + downstream
            ),
            SentinelViolation::IllegalVcState {
                node,
                port,
                vc,
                detail,
            } => write!(f, "illegal VC state at {node} {port}/vc{vc}: {detail}"),
            SentinelViolation::ProtocolDeadlock(finding) => {
                write!(f, "protocol deadlock: {finding}")
            }
        }
    }
}

/// The sentinel's first-failure report: what was violated, when, and a
/// rendered excerpt of the implicated state.
#[derive(Debug, Clone)]
pub struct SentinelReport {
    /// Cycle the violation was detected (checks run at cycle end, so this
    /// is the first cycle whose post-state is inconsistent, up to the
    /// configured check interval).
    pub cycle: u64,
    /// The violated invariant.
    pub violation: SentinelViolation,
    /// State excerpt (router dumps / occupancy map) for the report.
    pub excerpt: String,
}

impl fmt::Display for SentinelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SENTINEL: invariant violated at cycle {}: {}",
            self.cycle, self.violation
        )?;
        if !self.excerpt.is_empty() {
            writeln!(f, "\n{}", self.excerpt)?;
        }
        Ok(())
    }
}

impl std::error::Error for SentinelReport {}

/// The runtime invariant checker. See the [module docs](self) for the
/// invariants it audits.
///
/// First-failure semantics: after the first violation the sentinel stops
/// checking (the report describes the *origin* of the corruption; later
/// cycles would only report its propagation) and keeps the report until
/// [`Sentinel::take_report`] is called.
#[derive(Debug)]
pub struct Sentinel {
    injected: u64,
    ejected: u64,
    /// Conservation/state checks run on cycles `c % interval == 0`.
    interval: u64,
    /// The deadlock fixpoint runs on cycles `c % deadlock_interval == 0`
    /// (deadlocks are persistent, so a coarser stride loses nothing but
    /// detection latency).
    deadlock_interval: u64,
    report: Option<Box<SentinelReport>>,
}

impl Default for Sentinel {
    fn default() -> Self {
        Self::new()
    }
}

impl Sentinel {
    /// Default check cadence: conservation and state legality every 8
    /// cycles, the deadlock fixpoint every 64. All audited conditions are
    /// persistent (a leaked credit or a dead cycle does not self-heal), so
    /// the stride only bounds detection latency, never detection itself —
    /// these defaults keep the audit within a few percent of wall-clock
    /// while still catching any corruption within 64 cycles.
    pub fn new() -> Self {
        Self::with_intervals(8, 64)
    }

    /// A sentinel with explicit check strides. Tests asserting exact
    /// first-failure cycles use `with_intervals(1, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if either interval is zero.
    pub fn with_intervals(interval: u64, deadlock_interval: u64) -> Self {
        assert!(
            interval > 0 && deadlock_interval > 0,
            "sentinel intervals must be positive"
        );
        Sentinel {
            injected: 0,
            ejected: 0,
            interval,
            deadlock_interval,
            report: None,
        }
    }

    /// `true` when `FOOTPRINT_SENTINEL` is set to a truthy value
    /// (`1`/`true`/`on`/`yes`) — the opt-in the experiment layer honours.
    pub fn env_enabled() -> bool {
        matches!(
            std::env::var("FOOTPRINT_SENTINEL").ok().as_deref(),
            Some("1") | Some("true") | Some("on") | Some("yes")
        )
    }

    /// `true` once a violation has been recorded.
    pub fn tripped(&self) -> bool {
        self.report.is_some()
    }

    /// The recorded violation, if any.
    pub fn report(&self) -> Option<&SentinelReport> {
        self.report.as_deref()
    }

    /// Takes the recorded violation, leaving the sentinel armed again.
    pub fn take_report(&mut self) -> Option<Box<SentinelReport>> {
        self.report.take()
    }

    /// Flits injected while the sentinel was attached.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Flits ejected while the sentinel was attached.
    pub fn ejected(&self) -> u64 {
        self.ejected
    }

    /// Runs every enabled check against the current network state,
    /// recording (and returning) the first violation found. Exposed for
    /// tests and tools that want an on-demand audit; the [`Probe`] wiring
    /// calls it automatically on the configured strides.
    pub fn audit(&mut self, cycle: u64, net: &Network) -> Option<&SentinelReport> {
        if self.report.is_some() {
            return self.report();
        }
        let violation = check_flit_conservation(net, self.injected, self.ejected)
            .or_else(|| check_credit_conservation(net))
            .or_else(|| check_vc_states(net))
            .or_else(|| deadlock_violation(net))?;
        let excerpt = render_excerpt(net, &violation);
        self.report = Some(Box::new(SentinelReport {
            cycle,
            violation,
            excerpt,
        }));
        self.report()
    }
}

impl Probe for Sentinel {
    fn wants_flit_events(&self) -> bool {
        true
    }

    /// Only the census endpoints matter here: the conservation ledger
    /// counts injects and ejects, so the allocators' grant events can stay
    /// un-constructed — which is most of an audited run's overhead now
    /// that the datapath itself is cheap.
    fn wants_flit_events_of(&self, kind: FlitEventKind) -> bool {
        matches!(kind, FlitEventKind::Inject | FlitEventKind::Eject)
    }

    /// The census must see the whole network on audit cycles: the
    /// active-set scheduler falls back to a full tick on every
    /// conservation and deadlock stride so no router state is stale when
    /// [`Sentinel::audit`] walks the mesh.
    fn wants_full_tick(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.interval) || cycle.is_multiple_of(self.deadlock_interval)
    }

    fn flit_event(&mut self, ev: &FlitEvent) {
        match ev.kind {
            FlitEventKind::Inject => self.injected += 1,
            FlitEventKind::Eject => self.ejected += 1,
            _ => {}
        }
    }

    fn sample(&mut self, cycle: u64, net: &Network) {
        if self.report.is_some() {
            return;
        }
        let check = cycle.is_multiple_of(self.interval);
        let check_deadlock = cycle.is_multiple_of(self.deadlock_interval);
        if !check && !check_deadlock {
            return;
        }
        let violation = if check {
            check_flit_conservation(net, self.injected, self.ejected)
                .or_else(|| check_credit_conservation(net))
                .or_else(|| check_vc_states(net))
        } else {
            None
        }
        .or_else(|| {
            if check_deadlock {
                deadlock_violation(net)
            } else {
                None
            }
        });
        if let Some(violation) = violation {
            let excerpt = render_excerpt(net, &violation);
            self.report = Some(Box::new(SentinelReport {
                cycle,
                violation,
                excerpt,
            }));
        }
    }
}

/// Runs the deadlock detector and decides whether its finding is a
/// violation:
///
/// * a [`DeadlockFinding::FaultStranded`] head is expected under an
///   active mask (severed routes strand packets by design) — never a
///   violation;
/// * a [`DeadlockFinding::Cycle`] under an active mask can be
///   fault-induced (escape routes severed while packets are mid-flight),
///   so only the fault-free network must stay cycle-free;
/// * a [`DeadlockFinding::DeadRoute`] — an unroutable head whose
///   destination the routing relation can still reach — is a routing bug
///   and is reported even on faulted runs.
fn deadlock_violation(net: &Network) -> Option<SentinelViolation> {
    find_protocol_deadlock(net).and_then(|finding| match finding {
        DeadlockFinding::FaultStranded(_) => None,
        DeadlockFinding::Cycle(_) if net.fault_state().any_active() => None,
        other => Some(SentinelViolation::ProtocolDeadlock(other)),
    })
}

/// Renders the state excerpt for a violation: the implicated router dumps
/// plus the occupancy map for network-wide findings.
fn render_excerpt(net: &Network, violation: &SentinelViolation) -> String {
    const MAX_DUMPS: usize = 4;
    let mut out = String::new();
    let dump = |node: NodeId, out: &mut String| {
        out.push_str(&net.dump_router(node));
        out.push('\n');
    };
    match violation {
        SentinelViolation::FlitConservation { .. } => {
            out.push_str(&net.occupancy_map());
        }
        SentinelViolation::CreditConservation { node, channel, .. } => {
            dump(*node, &mut out);
            if let SentinelChannel::Output(Port::Dir(d)) = channel {
                if let Some(nb) = net.topo().neighbor(*node, *d) {
                    dump(nb, &mut out);
                }
            }
        }
        SentinelViolation::IllegalVcState { node, .. } => dump(*node, &mut out),
        SentinelViolation::ProtocolDeadlock(finding) => {
            out.push_str(&net.occupancy_map());
            out.push('\n');
            let members: &[DeadlockMember] = match finding {
                DeadlockFinding::Cycle(ms) => ms,
                DeadlockFinding::DeadRoute(m) | DeadlockFinding::FaultStranded(m) => {
                    std::slice::from_ref(m)
                }
            };
            let mut dumped: Vec<NodeId> = Vec::new();
            for m in members {
                if dumped.len() >= MAX_DUMPS {
                    break;
                }
                if !dumped.contains(&m.node) {
                    dumped.push(m.node);
                    dump(m.node, &mut out);
                }
            }
        }
    }
    out
}

/// Invariant 1: `injected == ejected + resident`, where residency counts
/// every place a flit can legally sit at cycle end.
fn check_flit_conservation(net: &Network, injected: u64, ejected: u64) -> Option<SentinelViolation> {
    let mut resident: u64 = 0;
    for w in net.inj_wires() {
        resident += w.flits.in_flight() as u64;
    }
    for node in net.topo().nodes() {
        // Inputs + output stages, exactly the router-resident places.
        resident += net.datapath().resident_flits(node) as u64;
    }
    for node in net.topo().nodes() {
        for port in 0..PORT_COUNT {
            if let Some(w) = net.out_wire(node, port) {
                resident += w.flits.in_flight() as u64;
            }
        }
    }
    for sink in net.sinks() {
        resident += sink.buffered() as u64;
    }
    if injected == ejected + resident {
        None
    } else {
        Some(SentinelViolation::FlitConservation {
            injected,
            ejected,
            resident,
        })
    }
}

/// Invariant 2: per-(channel, VC) credit conservation, for all three
/// channel kinds (injection, router-to-router, ejection).
fn check_credit_conservation(net: &Network) -> Option<SentinelViolation> {
    let num_vcs = net.config().num_vcs;
    let mesh = net.topo();
    let mut wire_flits = [0u32; MAX_VCS];
    let mut wire_credits = [0u32; MAX_VCS];
    let mut staged = [0u32; MAX_VCS];
    for node in mesh.nodes() {
        let ni = node.index();
        // Injection channel: source OutVcs vs the router's Local input.
        let wire = &net.inj_wires()[ni];
        count_wire(wire, num_vcs, &mut wire_flits, &mut wire_credits);
        let local_input = net.datapath().input(node, Port::Local.index());
        for (v, up) in net.sources()[ni].vcs().iter().enumerate() {
            let downstream = local_input.vc(v).len() as u32;
            let sum = up.credits() + wire_flits[v] + wire_credits[v] + downstream;
            if sum != up.capacity() {
                return Some(SentinelViolation::CreditConservation {
                    node,
                    channel: SentinelChannel::Injection,
                    vc: crate::cast::vc_u8(v),
                    upstream_credits: up.credits(),
                    staged: 0,
                    wire_flits: wire_flits[v],
                    wire_credits: wire_credits[v],
                    downstream,
                    capacity: up.capacity(),
                });
            }
        }
        // Output channels: router OutVcs + stage vs the downstream buffer
        // (a neighbor's input port, or the sink for the ejection channel).
        for port in 0..PORT_COUNT {
            let Some(wire) = net.out_wire(node, port) else {
                continue;
            };
            count_wire(wire, num_vcs, &mut wire_flits, &mut wire_credits);
            staged[..num_vcs].fill(0);
            let output = net.datapath().output(node, port);
            for f in output.staged_flits() {
                staged[f.vc as usize] += 1;
            }
            let port = Port::from_index(port);
            for v in 0..num_vcs {
                let up = output.vc(v);
                let downstream = match port {
                    Port::Local => net.sinks()[ni].buffered_in(v) as u32,
                    Port::Dir(d) => {
                        let nb = mesh.neighbor(node, d).expect("wire implies neighbor");
                        net.datapath()
                            .input(nb, Port::Dir(d.opposite()).index())
                            .vc(v)
                            .len() as u32
                    }
                };
                let sum =
                    up.credits() + staged[v] + wire_flits[v] + wire_credits[v] + downstream;
                if sum != up.capacity() {
                    return Some(SentinelViolation::CreditConservation {
                        node,
                        channel: SentinelChannel::Output(port),
                        vc: crate::cast::vc_u8(v),
                        upstream_credits: up.credits(),
                        staged: staged[v],
                        wire_flits: wire_flits[v],
                        wire_credits: wire_credits[v],
                        downstream,
                        capacity: up.capacity(),
                    });
                }
            }
        }
    }
    None
}

/// Tallies a wire's in-flight flits and credits per VC.
fn count_wire(
    wire: &crate::wire::Wire,
    num_vcs: usize,
    flits: &mut [u32; MAX_VCS],
    credits: &mut [u32; MAX_VCS],
) {
    flits[..num_vcs].fill(0);
    credits[..num_vcs].fill(0);
    for f in wire.flits.iter() {
        flits[f.vc as usize] += 1;
    }
    for c in wire.credits.iter() {
        credits[c.vc as usize] += 1;
    }
}

/// Invariant 3: VC state-machine legality — input route states, output
/// allocation states, the holder relation between them, and the owner
/// register discipline.
fn check_vc_states(net: &Network) -> Option<SentinelViolation> {
    let num_vcs = net.config().num_vcs;
    // holder[out_port * num_vcs + out_vc] = (in_port, in_vc, packet)
    let mut holders: Vec<Option<(usize, usize, PacketId)>> = vec![None; PORT_COUNT * num_vcs];
    let soa = net.datapath();
    for node in net.topo().nodes() {
        holders.iter_mut().for_each(|h| *h = None);
        for pi in 0..PORT_COUNT {
            let input = soa.input(node, pi);
            let in_port = Port::from_index(pi);
            for (vi, invc) in input.vcs().enumerate() {
                let illegal = |detail: String| {
                    Some(SentinelViolation::IllegalVcState {
                        node,
                        port: in_port,
                        vc: crate::cast::vc_u8(vi),
                        detail,
                    })
                };
                if invc.len() > invc.capacity() {
                    return illegal(format!(
                        "input buffer holds {} flits, capacity {}",
                        invc.len(),
                        invc.capacity()
                    ));
                }
                match invc.route() {
                    RouteState::Idle => {
                        if !invc.is_empty() {
                            return illegal(format!(
                                "route state Idle with {} buffered flit(s) — orphaned flits \
                                 with no head packet",
                                invc.len()
                            ));
                        }
                    }
                    RouteState::Waiting => match invc.front() {
                        None => {
                            return illegal(
                                "route state Waiting with an empty buffer".to_string(),
                            )
                        }
                        Some(f) if !f.is_head() => {
                            return illegal(format!(
                                "route state Waiting but the front flit (packet {}, {:?}) \
                                 is not a head",
                                f.packet.0, f.kind
                            ))
                        }
                        Some(_) => {}
                    },
                    RouteState::Active {
                        packet,
                        out_port,
                        out_vc,
                    } => {
                        let ov = out_vc as usize;
                        if ov >= num_vcs {
                            return illegal(format!(
                                "grant to out VC {ov} beyond the configured {num_vcs} VCs"
                            ));
                        }
                        if let Some(f) = invc.front() {
                            if f.packet != packet {
                                return illegal(format!(
                                    "active on packet {} but the front flit belongs to \
                                     packet {}",
                                    packet.0, f.packet.0
                                ));
                            }
                        }
                        let out_state = soa.output(node, out_port.index()).vc(ov).state();
                        if out_state != OutVcState::Active(packet) {
                            return illegal(format!(
                                "holds a grant on {out_port}/vc{ov} for packet {} but that \
                                 VC is {:?}",
                                packet.0, out_state
                            ));
                        }
                        let slot = &mut holders[out_port.index() * num_vcs + ov];
                        if let Some((opi, ovi, opk)) = *slot {
                            return illegal(format!(
                                "output VC {out_port}/vc{ov} granted to two inputs at once: \
                                 {}/vc{} (packet {}) and {}/vc{} (packet {})",
                                Port::from_index(opi),
                                ovi,
                                opk.0,
                                in_port,
                                vi,
                                packet.0
                            ));
                        }
                        *slot = Some((pi, vi, packet));
                    }
                }
            }
        }
        // Output side: credits within capacity, Active VCs held by exactly
        // one input, busy VCs carry an owner (Algorithm 1's register).
        for pi in 0..PORT_COUNT {
            let output = soa.output(node, pi);
            let port = Port::from_index(pi);
            for (vi, ovc) in output.vcs().enumerate() {
                let illegal = |detail: String| {
                    Some(SentinelViolation::IllegalVcState {
                        node,
                        port,
                        vc: crate::cast::vc_u8(vi),
                        detail,
                    })
                };
                if ovc.credits() > ovc.capacity() {
                    return illegal(format!(
                        "output VC carries {} credits, capacity {}",
                        ovc.credits(),
                        ovc.capacity()
                    ));
                }
                if let Err(e) = invariant::audit_footprint_owner(
                    node,
                    port,
                    VcId(crate::cast::vc_u8(vi)),
                    ovc.state() == OutVcState::Idle,
                    ovc.owner(),
                ) {
                    return illegal(e.to_string());
                }
                if let OutVcState::Active(pkt) = ovc.state() {
                    match holders[pi * num_vcs + vi] {
                        Some((_, _, held)) if held == pkt => {}
                        Some((_, _, held)) => {
                            return illegal(format!(
                                "output VC active on packet {} but its holder streams \
                                 packet {}",
                                pkt.0, held.0
                            ));
                        }
                        None => {
                            return illegal(format!(
                                "output VC active on packet {} with no holding input VC",
                                pkt.0
                            ));
                        }
                    }
                }
            }
        }
    }
    // Source-side output VCs (the injection channel's upstream end) obey
    // the same credit/owner discipline.
    for (node, source) in net.topo().nodes().zip(net.sources()) {
        for (vi, ovc) in source.vcs().iter().enumerate() {
            if ovc.credits() > ovc.capacity() {
                return Some(SentinelViolation::IllegalVcState {
                    node,
                    port: Port::Local,
                    vc: crate::cast::vc_u8(vi),
                    detail: format!(
                        "injection VC carries {} credits, capacity {}",
                        ovc.credits(),
                        ovc.capacity()
                    ),
                });
            }
            if let Err(e) = invariant::audit_footprint_owner(
                node,
                Port::Local,
                VcId(crate::cast::vc_u8(vi)),
                ovc.state() == OutVcState::Idle,
                ovc.owner(),
            ) {
                return Some(SentinelViolation::IllegalVcState {
                    node,
                    port: Port::Local,
                    vc: crate::cast::vc_u8(vi),
                    detail: e.to_string(),
                });
            }
        }
    }
    None
}

/// An RNG that returns a constant — used to evaluate both outcomes of the
/// routing function's tie-break coin deterministically.
struct ConstRng(u64);

impl RngCore for ConstRng {
    fn next_u32(&mut self) -> u32 {
        self.0 as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.0
    }
}

/// Per-buffer state for the liveness fixpoint.
#[derive(Clone, Copy)]
enum BufState {
    /// Empty buffer: trivially live.
    Empty,
    /// Streaming through a granted output VC.
    Active { out_port: usize, out_vc: usize },
    /// Head waiting for a grant; requests live in `reqs[lo..hi]`.
    Waiting { lo: usize, hi: usize },
    /// Non-empty with no head and no grant (orphaned flits). Never live;
    /// the state-legality check reports it before the detector runs.
    Orphan,
}

/// Invariant 4: the protocol-deadlock detector.
///
/// Computes the least fixpoint of "this input-VC buffer can eventually
/// drain" over the wait-for structure of the network:
///
/// * an empty buffer is live;
/// * an `Active` buffer is live iff its downstream buffer is live (the
///   sink always drains, so ejection grants are always live);
/// * a `Waiting` head is live iff some alternative it requests — or any
///   adaptive VC at a requested port, since standing requests re-widen as
///   VC states change — can eventually accept it: an unallocated VC whose
///   downstream is live, or an allocated VC whose holder *and* downstream
///   are live.
///
/// Buffers left dead by the fixpoint can provably never move again.
/// Following dead dependencies from any dead buffer either reaches a head
/// with an empty request set ([`DeadlockFinding::DeadRoute`]) or closes a
/// wait-for cycle ([`DeadlockFinding::Cycle`]).
///
/// The analysis is *sound* (a finding is a true deadlock) but not complete
/// in one corner: liveness through an escape VC is only credited where the
/// routing function actually requests it, and port-wide widening skips the
/// escape VC on non-escape ports, so some exotic stuck states may go
/// unreported here — the stall watchdog still names them as stalls.
pub(crate) fn find_protocol_deadlock(net: &Network) -> Option<DeadlockFinding> {
    let mesh = net.topo();
    let num_vcs = net.config().num_vcs;
    let n = mesh.len();
    let total = n * PORT_COUNT * num_vcs;
    let buf = |node: NodeId, port: usize, vc: usize| (node.index() * PORT_COUNT + port) * num_vcs + vc;

    // Pass 1: classify buffers, collect request sets for waiting heads and
    // the holder of every granted output VC.
    let mut state = vec![BufState::Empty; total];
    let mut live = vec![false; total];
    let mut holders: Vec<Option<usize>> = vec![None; total];
    let mut members: Vec<Option<DeadlockMember>> = vec![None; total];
    let mut reqs: Vec<VcRequest> = Vec::new();
    let mut scratch: Vec<VcRequest> = Vec::new();
    let mut any_waiting_or_active = false;
    let algo = net.algorithm();
    let sideband = net.sideband();
    let fault_view = net.fault_view();
    let soa = net.datapath();
    for node in mesh.nodes() {
        for pi in 0..PORT_COUNT {
            let input = soa.input(node, pi);
            for (vi, invc) in input.vcs().enumerate() {
                let b = buf(node, pi, vi);
                let mut record = |packet: PacketId, dest: NodeId| {
                    members[b] = Some(DeadlockMember {
                        node,
                        in_port: Port::from_index(pi),
                        vc: crate::cast::vc_u8(vi),
                        packet,
                        dest,
                    });
                };
                state[b] = match invc.route() {
                    RouteState::Idle if invc.is_empty() => {
                        live[b] = true;
                        BufState::Empty
                    }
                    RouteState::Idle => {
                        let f = invc.front().expect("orphan buffers are non-empty");
                        record(f.packet, f.dest);
                        BufState::Orphan
                    }
                    RouteState::Active {
                        packet,
                        out_port,
                        out_vc,
                    } => {
                        any_waiting_or_active = true;
                        let ov = out_vc as usize;
                        if ov < num_vcs {
                            holders[buf(node, out_port.index(), ov)] = Some(b);
                        }
                        // The buffer may legally be empty mid-stream (flits
                        // in flight upstream); fall back to the granted
                        // VC's owner register for the destination.
                        let dest = invc
                            .front()
                            .map(|f| f.dest)
                            .or_else(|| {
                                if ov < num_vcs {
                                    soa.output(node, out_port.index()).vc(ov).owner()
                                } else {
                                    None
                                }
                            })
                            .unwrap_or(node);
                        record(packet, dest);
                        BufState::Active {
                            out_port: out_port.index(),
                            out_vc: ov,
                        }
                    }
                    RouteState::Waiting => {
                        any_waiting_or_active = true;
                        let f = invc.front().expect("waiting buffers hold a head");
                        record(f.packet, f.dest);
                        let lo = reqs.len();
                        // Union the request sets over both coin outcomes:
                        // the tie-break is the only RNG draw in route(), so
                        // two constant RNGs cover every reachable set.
                        for coin in [ConstRng(0), ConstRng(u64::MAX)] {
                            scratch.clear();
                            let mut rng = coin;
                            net.router(node).recompute_requests(
                                soa, algo, mesh, sideband, &fault_view, pi, vi, &mut rng,
                                &mut scratch,
                            );
                            for r in &scratch {
                                if !reqs[lo..].iter().any(|q| q.port == r.port && q.vc == r.vc)
                                {
                                    reqs.push(*r);
                                }
                            }
                        }
                        BufState::Waiting { lo, hi: reqs.len() }
                    }
                };
            }
        }
    }
    if !any_waiting_or_active {
        return None; // nothing is blocked anywhere
    }

    // The downstream buffer a grant on (node, out_port, out_vc) feeds:
    // `None` = the sink, which always drains.
    let downstream = |node: NodeId, out_port: usize, out_vc: usize| -> Option<usize> {
        match Port::from_index(out_port) {
            Port::Local => None,
            Port::Dir(d) => mesh
                .neighbor(node, d)
                .map(|nb| buf(nb, Port::Dir(d.opposite()).index(), out_vc)),
        }
    };
    let faults = net.fault_state();
    let adaptive_lo = if algo.has_escape() { mesh.escape_vcs() } else { 0 };

    // Pass 2: least fixpoint of liveness.
    loop {
        let mut changed = false;
        for node in mesh.nodes() {
            // Can the alternative (out_port, out_vc) eventually accept a
            // new packet, given current liveness knowledge?
            let alt_live = |q: usize, w: usize, live: &[bool]| -> bool {
                if let Port::Dir(d) = Port::from_index(q) {
                    if !faults.link_up(node, d) {
                        return false;
                    }
                }
                let down_live = match downstream(node, q, w) {
                    None => true,
                    Some(db) => live[db],
                };
                if !down_live {
                    return false;
                }
                match soa.output(node, q).vc(w).state() {
                    OutVcState::Idle | OutVcState::Draining => true,
                    OutVcState::Active(_) => holders[buf(node, q, w)]
                        .map(|h| live[h])
                        .unwrap_or(false),
                }
            };
            for pi in 0..PORT_COUNT {
                for vi in 0..num_vcs {
                    let b = buf(node, pi, vi);
                    if live[b] {
                        continue;
                    }
                    let now_live = match state[b] {
                        BufState::Empty => true,
                        BufState::Orphan => false,
                        BufState::Active { out_port, out_vc } => {
                            match downstream(node, out_port, out_vc) {
                                None => true,
                                Some(db) => live[db],
                            }
                        }
                        BufState::Waiting { lo, hi } => {
                            let set = &reqs[lo..hi];
                            set.iter()
                                .any(|r| alt_live(r.port.index(), r.vc.index(), &live))
                                || set.iter().any(|r| {
                                    // Port-wide widening: standing requests
                                    // re-target any adaptive VC of a
                                    // requested port once it frees up.
                                    let q = r.port.index();
                                    (adaptive_lo..num_vcs).any(|w| alt_live(q, w, &live))
                                })
                        }
                    };
                    if now_live {
                        live[b] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: pick apart the dead set (if any).
    let first_dead = (0..total).find(|&b| !live[b] && !matches!(state[b], BufState::Empty))?;
    let member = |b: usize| -> DeadlockMember {
        members[b].expect("non-empty dead buffers were recorded during classification")
    };
    // The first dead dependency of a dead buffer: the thing it waits on.
    let succ = |b: usize| -> Option<usize> {
        let node = NodeId(crate::cast::idx_u16(b / (PORT_COUNT * num_vcs)));
        match state[b] {
            BufState::Empty | BufState::Orphan => None,
            BufState::Active { out_port, out_vc } => {
                downstream(node, out_port, out_vc).filter(|&db| !live[db])
            }
            BufState::Waiting { lo, hi } => {
                if lo == hi {
                    return None; // empty request set: a dead route
                }
                for r in &reqs[lo..hi] {
                    let (q, w) = (r.port.index(), r.vc.index());
                    if let Some(db) = downstream(node, q, w) {
                        if !live[db] {
                            return Some(db);
                        }
                    }
                    if let OutVcState::Active(_) = soa.output(node, q).vc(w).state() {
                        if let Some(h) = holders[buf(node, q, w)] {
                            if !live[h] {
                                return Some(h);
                            }
                        }
                    }
                }
                None
            }
        }
    };
    // Walk dead dependencies until the path closes a cycle or bottoms out
    // at a buffer with no dead successor (an unroutable or orphaned head).
    let mut path: Vec<usize> = vec![first_dead];
    loop {
        let cur = *path.last().expect("path is non-empty");
        match succ(cur) {
            None => {
                let m = member(cur);
                // Distinguish a head the fault mask stranded (no route to
                // its destination survives the mask — expected on faulted
                // runs) from a genuinely unroutable head, which is a
                // routing bug whether or not a fault is active.
                if faults.any_active() && !faults.deliverable(algo, m.node, m.dest) {
                    return Some(DeadlockFinding::FaultStranded(m));
                }
                return Some(DeadlockFinding::DeadRoute(m));
            }
            Some(next) => {
                if let Some(pos) = path.iter().position(|&b| b == next) {
                    return Some(DeadlockFinding::Cycle(
                        path[pos..].iter().map(|&b| member(b)).collect(),
                    ));
                }
                path.push(next);
            }
        }
    }
}
