//! Fixed-latency wires: flit channels and their reverse credit channels.

use crate::packet::Flit;

/// A pipeline with a fixed latency in cycles: values pushed during a cycle
/// become receivable after `latency` calls to [`Pipe::tick`] (default 1 —
/// a single-cycle link).
#[derive(Debug, Clone)]
pub struct Pipe<T> {
    /// `stages[0]` is the oldest in-flight batch; `stages.len() == latency`.
    stages: std::collections::VecDeque<Vec<T>>,
    cur: Vec<T>,
    /// Total values in `stages` plus `cur`, maintained on push/drain so
    /// the per-cycle activity scan tests emptiness in O(1) instead of
    /// walking every stage.
    len: usize,
}

impl<T> Default for Pipe<T> {
    fn default() -> Self {
        Pipe::new()
    }
}

impl<T> Pipe<T> {
    /// An empty single-cycle pipe.
    pub fn new() -> Self {
        Self::with_latency(1)
    }

    /// An empty pipe with the given latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero (combinational wires are not modeled).
    pub fn with_latency(latency: usize) -> Self {
        assert!(latency > 0, "wire latency must be at least one cycle");
        Pipe {
            stages: (0..latency).map(|_| Vec::new()).collect(),
            cur: Vec::new(),
            len: 0,
        }
    }

    /// The configured latency in cycles.
    pub fn latency(&self) -> usize {
        self.stages.len()
    }

    /// Sends `v`; it becomes receivable after `latency` ticks.
    #[inline]
    pub fn push(&mut self, v: T) {
        self.len += 1;
        self.stages
            .back_mut()
            .expect("pipe has at least one stage")
            .push(v);
    }

    /// Drains everything that arrived this cycle.
    #[inline]
    pub fn drain(&mut self) -> std::vec::Drain<'_, T> {
        self.len -= self.cur.len();
        self.cur.drain(..)
    }

    /// Advances one cycle: the oldest in-flight batch becomes receivable.
    ///
    /// Anything not drained in the previous cycle stays receivable (wires
    /// never drop data; the receive side always drains).
    pub fn tick(&mut self) {
        if self.len == 0 {
            // Every buffer is empty; rotating them is a no-op.
            return;
        }
        let mut front = self.stages.pop_front().expect("pipe has stages");
        if self.cur.is_empty() {
            // Hand the arriving batch over wholesale (the usual case: the
            // receiver drained last cycle), keeping `cur`'s allocation in
            // the rotation instead of copying element by element.
            std::mem::swap(&mut self.cur, &mut front);
        } else {
            self.cur.append(&mut front);
        }
        self.stages.push_back(front); // reuse the (now empty) buffer
    }

    /// `true` if nothing is in flight or receivable. O(1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if values are receivable right now (arrived by the latest
    /// tick and not yet drained).
    #[inline]
    pub fn receivable(&self) -> bool {
        !self.cur.is_empty()
    }

    /// Number of values in flight or receivable (read-only census; used by
    /// the sentinel's conservation checks). O(1).
    #[inline]
    pub fn in_flight(&self) -> usize {
        debug_assert_eq!(
            self.len,
            self.cur.len() + self.stages.iter().map(Vec::len).sum::<usize>()
        );
        self.len
    }

    /// Iterates every value currently in flight or receivable, oldest
    /// first. Read-only: the sentinel uses this to attribute in-flight
    /// flits and credits to their VCs without disturbing the pipeline.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.cur.iter().chain(self.stages.iter().flat_map(|s| s.iter()))
    }

    /// Serializes stage contents and the receivable batch through `enc`.
    pub(crate) fn snapshot_write(
        &self,
        w: &mut crate::snapshot::SnapWriter,
        enc: impl Fn(&T, &mut crate::snapshot::SnapWriter),
    ) {
        w.usize(self.stages.len());
        for s in &self.stages {
            w.usize(s.len());
            for v in s {
                enc(v, w);
            }
        }
        w.usize(self.cur.len());
        for v in &self.cur {
            enc(v, w);
        }
    }

    /// Restores a snapshot through `dec`; the latency echo must match.
    pub(crate) fn snapshot_read(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
        dec: impl Fn(&mut crate::snapshot::SnapReader<'_>) -> Result<T, String>,
    ) -> Result<(), String> {
        let latency = r.usize()?;
        if latency != self.stages.len() {
            return Err(format!(
                "snapshot pipe latency mismatch: stored {latency}, live {}",
                self.stages.len()
            ));
        }
        self.len = 0;
        for s in &mut self.stages {
            s.clear();
            let n = r.usize()?;
            for _ in 0..n {
                s.push(dec(r)?);
            }
            self.len += n;
        }
        self.cur.clear();
        let n = r.usize()?;
        for _ in 0..n {
            self.cur.push(dec(r)?);
        }
        self.len += n;
        Ok(())
    }
}

/// A credit message: one buffer slot of VC `vc` freed downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditMsg {
    /// The VC whose slot was freed.
    pub vc: u8,
}

/// A physical channel: a forward flit pipe (bandwidth one flit per cycle,
/// enforced by the senders) and a reverse credit pipe.
#[derive(Debug, Default)]
pub struct Wire {
    /// Forward direction: flits.
    pub flits: Pipe<Flit>,
    /// Reverse direction: credits.
    pub credits: Pipe<CreditMsg>,
}

impl Wire {
    /// An idle single-cycle wire.
    pub fn new() -> Self {
        Wire::default()
    }

    /// An idle wire with the given one-way latency in cycles (applied to
    /// both the flit and the credit direction).
    pub fn with_latency(latency: usize) -> Self {
        Wire {
            flits: Pipe::with_latency(latency),
            credits: Pipe::with_latency(latency),
        }
    }

    /// Advances both directions one cycle.
    pub fn tick(&mut self) {
        self.flits.tick();
        self.credits.tick();
    }

    /// `true` when nothing is in flight in either direction.
    pub fn is_quiescent(&self) -> bool {
        self.flits.is_empty() && self.credits.is_empty()
    }

    /// Serializes both directions (in-flight flits and credits).
    pub(crate) fn snapshot_write(&self, w: &mut crate::snapshot::SnapWriter) {
        self.flits.snapshot_write(w, |f, w| w.flit(f));
        self.credits.snapshot_write(w, |c, w| w.u8(c.vc));
    }

    /// Restores both directions from a snapshot.
    pub(crate) fn snapshot_read(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), String> {
        self.flits.snapshot_read(r, |r| r.flit())?;
        self.credits
            .snapshot_read(r, |r| Ok(CreditMsg { vc: r.u8()? }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_has_one_cycle_latency() {
        let mut p: Pipe<u32> = Pipe::new();
        p.push(1);
        assert_eq!(p.drain().count(), 0, "not visible in the send cycle");
        p.tick();
        let got: Vec<_> = p.drain().collect();
        assert_eq!(got, vec![1]);
        p.tick();
        assert_eq!(p.drain().count(), 0);
    }

    #[test]
    fn pipe_preserves_order_across_batches() {
        let mut p: Pipe<u32> = Pipe::new();
        p.push(1);
        p.push(2);
        p.tick();
        p.push(3);
        let got: Vec<_> = p.drain().collect();
        assert_eq!(got, vec![1, 2]);
        p.tick();
        let got: Vec<_> = p.drain().collect();
        assert_eq!(got, vec![3]);
    }

    #[test]
    fn undrained_values_persist() {
        let mut p: Pipe<u32> = Pipe::new();
        p.push(1);
        p.tick();
        p.push(2);
        p.tick(); // 1 was never drained
        let got: Vec<_> = p.drain().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn multi_cycle_latency_delays_delivery() {
        let mut p: Pipe<u32> = Pipe::with_latency(3);
        assert_eq!(p.latency(), 3);
        p.push(7);
        for _ in 0..2 {
            p.tick();
            assert_eq!(p.drain().count(), 0);
        }
        p.tick();
        let got: Vec<_> = p.drain().collect();
        assert_eq!(got, vec![7]);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_rejected() {
        let _: Pipe<u32> = Pipe::with_latency(0);
    }

    #[test]
    fn len_counter_tracks_push_tick_drain() {
        let mut p: Pipe<u32> = Pipe::with_latency(2);
        assert!(p.is_empty());
        assert!(!p.receivable());
        p.push(1);
        p.push(2);
        assert_eq!(p.in_flight(), 2);
        assert!(!p.is_empty());
        p.tick();
        assert!(!p.receivable(), "still one stage away");
        p.tick();
        assert!(p.receivable());
        assert_eq!(p.in_flight(), 2);
        assert_eq!(p.drain().count(), 2);
        assert!(p.is_empty());
        assert!(!p.receivable());
        // An undrained batch keeps counting until it is finally drained.
        p.push(3);
        p.tick();
        p.tick();
        p.tick();
        assert_eq!(p.in_flight(), 1);
        assert_eq!(p.drain().count(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn wire_quiescence() {
        let mut w = Wire::new();
        assert!(w.is_quiescent());
        w.credits.push(CreditMsg { vc: 3 });
        assert!(!w.is_quiescent());
        w.tick();
        let got: Vec<_> = w.credits.drain().collect();
        assert_eq!(got, vec![CreditMsg { vc: 3 }]);
        assert!(w.is_quiescent());
    }
}
