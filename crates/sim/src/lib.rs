//! Cycle-accurate NoC simulator substrate for the Footprint reproduction.
//!
//! This crate plays the role BookSim 2.0 plays in the paper: an
//! input-queued, virtual-channel router microarchitecture with credit-based
//! flow control and wormhole switching, simulated cycle by cycle:
//!
//! * [`Network`] — a 2D mesh of [`Router`]s, each with a [`Source`] and a
//!   [`Sink`] endpoint, connected by single-cycle links.
//! * Routing is pluggable through `footprint-routing`'s `RoutingAlgorithm`
//!   trait; the router's **priority-based VC allocator** consumes the
//!   prioritized request sets that Footprint's Algorithm 1 emits, and
//!   supports the *footprint join* (granting a draining VC to a packet with
//!   the same destination) that forms the paper's virtual set-aside queues.
//! * VC reallocation honours the paper's §4.2.1 distinction: atomic for
//!   Duato-based algorithms (a VC is reusable only after all credits
//!   return), non-atomic for turn-model/deterministic ones.
//! * Internal speedup 2.0 is modeled as dual switch grants per port with a
//!   staging FIFO draining one flit per cycle onto each link.
//! * Endpoints eject at link bandwidth (one flit per cycle), so
//!   oversubscribed endpoints grow genuine congestion trees through
//!   backpressure — the phenomenon Footprint regulates.
//!
//! # Example
//!
//! ```
//! use footprint_sim::{Network, SimConfig, SingleFlow, FlowSet, NoTraffic};
//! use footprint_routing::RoutingSpec;
//! use footprint_topology::NodeId;
//!
//! let mut net = Network::new(
//!     SimConfig::small(),
//!     RoutingSpec::Footprint.build(),
//!     42,
//! )?;
//! let mut flow = FlowSet::new(vec![SingleFlow {
//!     src: NodeId(0), dest: NodeId(15), rate: 0.3, size: 1,
//! }]);
//! net.run(&mut flow, 500);
//! net.run(&mut NoTraffic, 200); // drain
//! assert!(net.metrics().total().ejected_packets > 0);
//! # Ok::<(), footprint_sim::ConfigError>(())
//! ```

#![warn(missing_docs)]

mod cast;
mod config;
mod dump;
mod endpoint;
mod fault;
mod input;
mod metrics;
mod network;
pub mod observe;
mod recovery;
mod output;
mod packet;
mod router;
mod sched;
pub mod sentinel;
mod sideband;
mod snapshot;
mod soa;
mod view;
mod wire;
mod workload;

pub use config::{ConfigError, SimConfig};
pub use endpoint::{Sink, Source};
pub use fault::{FaultState, FaultView, PartitionEpoch, UnreachablePolicy};
pub use input::RouteState;
pub use metrics::{ClassStats, EjectedPacket, Metrics, NullProbe, Probe, VaBlockInfo};
pub use network::{Network, OccupiedVcEntry};
pub use recovery::{AvailabilityWindow, RecoveryTracker, TtrRecord, AVAILABILITY_WINDOW};
pub use observe::{
    EventTrace, FlitEvent, FlitEventKind, InFlightPacket, ProbePair, StallDiagnostic,
    StallWatchdog, TraceRecord,
};
pub use output::{OutVc, OutVcState};
pub use packet::{Flit, FlitKind, NewPacket, PacketId, PendingPacket};
pub use router::{FreedSlot, Router};
pub use sched::Scheduler;
pub use soa::{InPortRef, InVcRef, NocSoa, OutPortRef, OutVcRef};
pub use sentinel::{
    DeadlockFinding, DeadlockMember, Sentinel, SentinelChannel, SentinelReport, SentinelViolation,
};
pub use sideband::Sideband;
pub use view::{InjectionView, RouterOutputsView};
pub use wire::{CreditMsg, Pipe, Wire};
pub use workload::{FlowSet, NoTraffic, SingleFlow, Windowed, Workload};
