//! Checked narrowing conversions for VC and port indices.
//!
//! VC indices live in `usize` loops but travel through flits, credits and
//! route state as `u8` (the configuration validator caps `num_vcs` at 64,
//! so the narrowing is always lossless for valid configs). Routing them
//! through these helpers instead of bare `as` casts means a config that
//! somehow escapes validation fails loudly in debug builds instead of
//! silently truncating an index and corrupting VC bookkeeping.

/// Narrows a VC index to the `u8` wire representation.
///
/// `debug_assert!`s that the value fits; release builds behave like the
/// plain cast (the configuration validator upholds the invariant there).
#[inline]
pub(crate) fn vc_u8(vc: usize) -> u8 {
    debug_assert!(
        vc <= u8::MAX as usize,
        "VC index {vc} exceeds the u8 wire representation"
    );
    vc as u8
}
