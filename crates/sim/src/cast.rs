//! Checked narrowing conversions for VC and port indices.
//!
//! VC indices live in `usize` loops but travel through flits, credits and
//! route state as `u8` (the configuration validator caps `num_vcs` at 64,
//! so the narrowing is always lossless for valid configs). Routing them
//! through these helpers instead of bare `as` casts means a config that
//! somehow escapes validation fails loudly in debug builds instead of
//! silently truncating an index and corrupting VC bookkeeping.

/// Narrows a VC index to the `u8` wire representation.
///
/// `debug_assert!`s that the value fits; release builds behave like the
/// plain cast (the configuration validator upholds the invariant there).
#[inline]
pub(crate) fn vc_u8(vc: usize) -> u8 {
    debug_assert!(
        vc <= u8::MAX as usize,
        "VC index {vc} exceeds the u8 wire representation"
    );
    vc as u8
}

/// Narrows a node index to the `u16` `NodeId` representation. Same
/// contract as [`vc_u8`]: loud in debug builds, free in release builds
/// where the mesh constructor upholds the bound.
#[inline]
pub(crate) fn idx_u16(n: usize) -> u16 {
    debug_assert!(
        n <= u16::MAX as usize,
        "node index {n} exceeds the u16 representation"
    );
    n as u16
}

/// Narrows a count or index to `u32` (buffer depths, request-slice
/// offsets). Same contract as [`vc_u8`]: loud in debug builds, free in
/// release builds where the configuration validator upholds the bound.
#[inline]
pub(crate) fn idx_u32(n: usize) -> u32 {
    debug_assert!(
        n <= u32::MAX as usize,
        "index {n} exceeds the u32 representation"
    );
    n as u32
}
