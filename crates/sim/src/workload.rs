//! The workload abstraction: what each endpoint injects, cycle by cycle.

use crate::packet::NewPacket;
use footprint_topology::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;

/// A traffic workload: invoked once per endpoint per cycle; may generate at
/// most one packet per call (injection rates are expressed in flits per
/// node per cycle, so rates up to 1.0 fit this contract for single-flit
/// packets; multi-flit packets lower the packet rate accordingly).
///
/// The `footprint-traffic` crate provides the paper's synthetic patterns
/// and workloads behind this trait (via the adapter in `footprint-core`);
/// the implementations here are minimal fixtures for tests and examples.
pub trait Workload {
    /// Possibly generates a packet at `node` on `cycle`.
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket>;
}

/// A workload that never injects — useful for drain phases and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTraffic;

impl Workload for NoTraffic {
    fn generate(&mut self, _node: NodeId, _cycle: u64, _rng: &mut SmallRng) -> Option<NewPacket> {
        None
    }
}

/// A single Bernoulli flow `src → dest` at a fixed flit rate (test fixture).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleFlow {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Offered load in flits per cycle.
    pub rate: f64,
    /// Packet size in flits.
    pub size: u16,
}

impl Workload for SingleFlow {
    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if node != self.src {
            return None;
        }
        let packet_rate = self.rate / self.size as f64;
        if rng.gen_bool(packet_rate.min(1.0)) {
            Some(NewPacket {
                dest: self.dest,
                size: self.size,
                class: 0,
                origin: None,
            })
        } else {
            None
        }
    }
}

/// A fixed list of Bernoulli flows (test fixture; the full-featured version
/// lives in `footprint-traffic`).
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    flows: Vec<SingleFlow>,
}

impl FlowSet {
    /// Creates a workload from explicit flows.
    pub fn new(flows: Vec<SingleFlow>) -> Self {
        FlowSet { flows }
    }
}

impl Workload for FlowSet {
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        // At most one packet per node per cycle: first firing flow wins.
        for f in &mut self.flows {
            if f.src == node {
                if let Some(p) = f.generate(node, cycle, rng) {
                    return Some(p);
                }
            }
        }
        None
    }
}

/// Applies a workload only during a cycle window (e.g. to stop injection in
/// a drain phase while keeping the same workload object).
#[derive(Debug, Clone)]
pub struct Windowed<W> {
    inner: W,
    until: u64,
}

impl<W: Workload> Windowed<W> {
    /// Wraps `inner`, active for cycles `< until`.
    pub fn new(inner: W, until: u64) -> Self {
        Windowed { inner, until }
    }
}

impl<W: Workload> Workload for Windowed<W> {
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if cycle < self.until {
            self.inner.generate(node, cycle, rng)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn no_traffic_generates_nothing() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(NoTraffic.generate(NodeId(0), 0, &mut rng).is_none());
    }

    #[test]
    fn single_flow_only_fires_at_source() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut f = SingleFlow {
            src: NodeId(1),
            dest: NodeId(2),
            rate: 1.0,
            size: 1,
        };
        assert!(f.generate(NodeId(0), 0, &mut rng).is_none());
        let p = f.generate(NodeId(1), 0, &mut rng).unwrap();
        assert_eq!(p.dest, NodeId(2));
        assert_eq!(p.size, 1);
    }

    #[test]
    fn rate_scales_with_packet_size() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut f = SingleFlow {
            src: NodeId(0),
            dest: NodeId(1),
            rate: 0.6,
            size: 3,
        };
        let mut packets = 0;
        let n = 30_000;
        for c in 0..n {
            if f.generate(NodeId(0), c, &mut rng).is_some() {
                packets += 1;
            }
        }
        let flit_rate = packets as f64 * 3.0 / n as f64;
        assert!((flit_rate - 0.6).abs() < 0.03, "flit rate {flit_rate}");
    }

    #[test]
    fn windowed_stops_after_deadline() {
        let mut rng = SmallRng::seed_from_u64(1);
        let f = SingleFlow {
            src: NodeId(0),
            dest: NodeId(1),
            rate: 1.0,
            size: 1,
        };
        let mut w = Windowed::new(f, 5);
        assert!(w.generate(NodeId(0), 4, &mut rng).is_some());
        assert!(w.generate(NodeId(0), 5, &mut rng).is_none());
    }

    #[test]
    fn flow_set_dispatches_by_source() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut fs = FlowSet::new(vec![
            SingleFlow {
                src: NodeId(0),
                dest: NodeId(3),
                rate: 1.0,
                size: 1,
            },
            SingleFlow {
                src: NodeId(1),
                dest: NodeId(4),
                rate: 1.0,
                size: 1,
            },
        ]);
        assert_eq!(fs.generate(NodeId(0), 0, &mut rng).unwrap().dest, NodeId(3));
        assert_eq!(fs.generate(NodeId(1), 0, &mut rng).unwrap().dest, NodeId(4));
        assert!(fs.generate(NodeId(2), 0, &mut rng).is_none());
    }
}
