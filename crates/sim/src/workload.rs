//! The workload abstraction: what each endpoint injects, cycle by cycle.

use crate::packet::NewPacket;
use footprint_topology::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;

/// A traffic workload: invoked once per endpoint per cycle; may generate at
/// most one packet per call (injection rates are expressed in flits per
/// node per cycle, so rates up to 1.0 fit this contract for single-flit
/// packets; multi-flit packets lower the packet rate accordingly).
///
/// The `footprint-traffic` crate provides the paper's synthetic patterns
/// and workloads behind this trait (via the adapter in `footprint-core`);
/// the implementations here are minimal fixtures for tests and examples.
///
/// # Determinism contract
///
/// The network calls `generate` for **every node on every cycle**, in
/// ascending node order, drawing from the shared simulation RNG — the
/// generation loop is dense in every scheduler mode (see
/// [`Scheduler`](crate::Scheduler)). A workload's RNG consumption is
/// therefore a pure function of the call sequence, which makes any
/// composition of workloads (flow sets, modulation wrappers, tenant
/// multiplexers) bit-identical across schedulers and sweep thread counts.
pub trait Workload {
    /// Possibly generates a packet at `node` on `cycle`.
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket>;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        (**self).generate(node, cycle, rng)
    }
}

/// A workload that never injects — useful for drain phases and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTraffic;

impl Workload for NoTraffic {
    fn generate(&mut self, _node: NodeId, _cycle: u64, _rng: &mut SmallRng) -> Option<NewPacket> {
        None
    }
}

/// A single Bernoulli flow `src → dest` at a fixed flit rate (test fixture).
///
/// The fields stay public for literal construction in tests; an invalid
/// rate or size is rejected by the first [`Workload::generate`] call with
/// the same message [`SingleFlow::new`] would have raised, instead of
/// panicking deep inside `rand::gen_bool` or silently clamping the rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleFlow {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Offered load in flits per cycle, in `[0, 1]` (a node cannot inject
    /// more than one flit per cycle).
    pub rate: f64,
    /// Packet size in flits (nonzero).
    pub size: u16,
}

impl SingleFlow {
    /// Creates a validated flow.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]` (matching
    /// `SyntheticWorkload::new` in `footprint-traffic`) or `size` is zero.
    pub fn new(src: NodeId, dest: NodeId, rate: f64, size: u16) -> Self {
        let flow = SingleFlow {
            src,
            dest,
            rate,
            size,
        };
        flow.validate();
        flow
    }

    /// Asserts the rate/size invariants (shared by [`SingleFlow::new`] and
    /// the generate path, so literally-constructed flows fail fast too).
    fn validate(&self) {
        assert!(self.size > 0, "SingleFlow packet size must be nonzero");
        assert!(
            (0.0..=1.0).contains(&self.rate),
            "SingleFlow rate {} out of [0, 1]",
            self.rate
        );
    }
}

impl Workload for SingleFlow {
    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if node != self.src {
            return None;
        }
        self.validate();
        // rate <= 1 <= size, so the per-cycle packet rate is a valid
        // probability without clamping.
        let packet_rate = self.rate / self.size as f64;
        if rng.gen_bool(packet_rate) {
            Some(NewPacket {
                dest: self.dest,
                size: self.size,
                class: 0,
                origin: None,
            })
        } else {
            None
        }
    }
}

/// A fixed list of Bernoulli flows (test fixture; the full-featured version
/// lives in `footprint-traffic`).
///
/// # Draw-order contract
///
/// Flows sharing a source are polled in declaration order each cycle and
/// the **first firing flow wins** (at most one packet per node per cycle).
/// Every polled flow draws one Bernoulli sample from the shared RNG whether
/// or not it fires, so an earlier flow's draw perturbs the later flows'
/// randomness: reordering the flows of a source produces a different (but
/// equally valid) packet sequence. For a fixed flow order and seed the
/// sequence is exactly reproducible — this is the determinism contract the
/// bit-identity tests pin down.
///
/// Because the winner preempts the rest of its source's flows for the
/// cycle, each flow's *accepted* rate is slightly below its configured rate
/// when a source hosts several flows; [`FlowSet::new`] rejects aggregates
/// above 1.0 flit/cycle, where the excess could never be injected at all.
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    flows: Vec<SingleFlow>,
}

impl FlowSet {
    /// Creates a workload from explicit flows.
    ///
    /// # Panics
    ///
    /// Panics if any flow is invalid (see [`SingleFlow::new`]) or if the
    /// flows sharing a source add up to more than 1.0 flit/cycle — a node
    /// injects at most one flit per cycle, so the excess offered load
    /// could only be discarded silently.
    pub fn new(flows: Vec<SingleFlow>) -> Self {
        let mut per_source: std::collections::BTreeMap<usize, f64> =
            std::collections::BTreeMap::new();
        for f in &flows {
            f.validate();
            *per_source.entry(f.src.index()).or_insert(0.0) += f.rate;
        }
        for (src, aggregate) in per_source {
            assert!(
                aggregate <= 1.0 + 1e-9,
                "flows at source n{src} offer {aggregate} flits/cycle in aggregate \
                 (a node cannot inject more than 1.0)"
            );
        }
        FlowSet { flows }
    }
}

impl Workload for FlowSet {
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        // At most one packet per node per cycle: first firing flow wins
        // (see the draw-order contract in the type docs).
        for f in &mut self.flows {
            if f.src == node {
                if let Some(p) = f.generate(node, cycle, rng) {
                    return Some(p);
                }
            }
        }
        None
    }
}

/// Applies a workload only during a cycle window (e.g. to stop injection in
/// a drain phase while keeping the same workload object).
#[derive(Debug, Clone)]
pub struct Windowed<W> {
    inner: W,
    until: u64,
}

impl<W: Workload> Windowed<W> {
    /// Wraps `inner`, active for cycles `< until`.
    pub fn new(inner: W, until: u64) -> Self {
        Windowed { inner, until }
    }
}

impl<W: Workload> Workload for Windowed<W> {
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if cycle < self.until {
            self.inner.generate(node, cycle, rng)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn no_traffic_generates_nothing() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(NoTraffic.generate(NodeId(0), 0, &mut rng).is_none());
    }

    #[test]
    fn single_flow_only_fires_at_source() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut f = SingleFlow::new(NodeId(1), NodeId(2), 1.0, 1);
        assert!(f.generate(NodeId(0), 0, &mut rng).is_none());
        let p = f.generate(NodeId(1), 0, &mut rng).unwrap();
        assert_eq!(p.dest, NodeId(2));
        assert_eq!(p.size, 1);
    }

    #[test]
    fn rate_scales_with_packet_size() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut f = SingleFlow::new(NodeId(0), NodeId(1), 0.6, 3);
        let mut packets = 0;
        let n = 30_000;
        for c in 0..n {
            if f.generate(NodeId(0), c, &mut rng).is_some() {
                packets += 1;
            }
        }
        let flit_rate = packets as f64 * 3.0 / n as f64;
        assert!((flit_rate - 0.6).abs() < 0.03, "flit rate {flit_rate}");
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn negative_rate_is_rejected_at_construction() {
        let _ = SingleFlow::new(NodeId(0), NodeId(1), -0.2, 1);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn excessive_rate_is_rejected_at_construction() {
        // Pre-fix this was silently clamped to one packet per cycle by
        // `.min(1.0)`, so the offered load undershot the configured value.
        let _ = SingleFlow::new(NodeId(0), NodeId(1), 2.5, 2);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn literal_invalid_rate_fails_on_first_generate() {
        // The fields are public: a literally-constructed invalid flow must
        // raise the same message as the constructor instead of panicking
        // inside `rand::gen_bool`.
        let mut f = SingleFlow {
            src: NodeId(0),
            dest: NodeId(1),
            rate: -1.0,
            size: 1,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = f.generate(NodeId(0), 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "size must be nonzero")]
    fn zero_size_is_rejected() {
        let _ = SingleFlow::new(NodeId(0), NodeId(1), 0.5, 0);
    }

    #[test]
    fn windowed_stops_after_deadline() {
        let mut rng = SmallRng::seed_from_u64(1);
        let f = SingleFlow::new(NodeId(0), NodeId(1), 1.0, 1);
        let mut w = Windowed::new(f, 5);
        assert!(w.generate(NodeId(0), 4, &mut rng).is_some());
        assert!(w.generate(NodeId(0), 5, &mut rng).is_none());
    }

    #[test]
    fn flow_set_dispatches_by_source() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut fs = FlowSet::new(vec![
            SingleFlow::new(NodeId(0), NodeId(3), 1.0, 1),
            SingleFlow::new(NodeId(1), NodeId(4), 1.0, 1),
        ]);
        assert_eq!(fs.generate(NodeId(0), 0, &mut rng).unwrap().dest, NodeId(3));
        assert_eq!(fs.generate(NodeId(1), 0, &mut rng).unwrap().dest, NodeId(4));
        assert!(fs.generate(NodeId(2), 0, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "flows at source n0 offer")]
    fn aggregate_source_rate_above_one_is_rejected() {
        let _ = FlowSet::new(vec![
            SingleFlow::new(NodeId(0), NodeId(3), 0.7, 1),
            SingleFlow::new(NodeId(0), NodeId(4), 0.6, 1),
        ]);
    }

    #[test]
    fn aggregate_validation_is_per_source() {
        // 0.7 at two different sources is fine; only a shared source sums.
        let _ = FlowSet::new(vec![
            SingleFlow::new(NodeId(0), NodeId(3), 0.7, 1),
            SingleFlow::new(NodeId(1), NodeId(4), 0.7, 1),
        ]);
        // Exactly 1.0 in aggregate is the boundary and is accepted.
        let _ = FlowSet::new(vec![
            SingleFlow::new(NodeId(2), NodeId(3), 0.5, 1),
            SingleFlow::new(NodeId(2), NodeId(4), 0.5, 2),
        ]);
    }

    #[test]
    fn draw_order_contract_is_deterministic() {
        // Two flows share a source: for a fixed seed the winner sequence
        // is exactly reproducible, and every cycle consumes the same RNG
        // draws whether or not the first flow fires.
        let flows = vec![
            SingleFlow::new(NodeId(0), NodeId(3), 0.4, 1),
            SingleFlow::new(NodeId(0), NodeId(5), 0.4, 1),
        ];
        let run = |flows: Vec<SingleFlow>| {
            let mut fs = FlowSet::new(flows);
            let mut rng = SmallRng::seed_from_u64(99);
            (0..500)
                .map(|c| fs.generate(NodeId(0), c, &mut rng).map(|p| p.dest))
                .collect::<Vec<_>>()
        };
        let a = run(flows.clone());
        assert_eq!(a, run(flows.clone()), "same order + seed → same sequence");
        // Both flows get through (first-firing-wins does not starve the
        // second flow).
        assert!(a.iter().flatten().any(|&d| d == NodeId(3)));
        assert!(a.iter().flatten().any(|&d| d == NodeId(5)));
        // Reversing the flow order changes the draw sequence — the
        // documented sensitivity of the first-firing-wins loop.
        let mut rev = flows;
        rev.reverse();
        assert_ne!(a, run(rev));
    }
}
