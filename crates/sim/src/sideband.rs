//! The congestion side-band network consumed by DBAR's selection function.

use crate::soa::NocSoa;
use footprint_routing::CongestionView;
use footprint_topology::{AnyTopology, Direction, NodeId, Port, DIRECTIONS};

/// Per-channel congestion bits, recomputed every cycle from downstream
/// input-buffer occupancy (occupied VCs at or above the threshold — V/2 in
/// the paper's methodology).
///
/// This models DBAR's dimension-propagated occupancy information with a
/// one-cycle-old global view, which is the fidelity level the Footprint
/// paper's comparison needs.
#[derive(Debug, Clone)]
pub struct Sideband {
    bits: Vec<[bool; 4]>,
    threshold: usize,
}

impl Sideband {
    /// Creates a side band for `nodes` routers with the given occupancy
    /// `threshold` (number of occupied VCs that marks a channel congested).
    pub fn new(nodes: usize, threshold: usize) -> Self {
        Sideband {
            bits: vec![[false; 4]; nodes],
            threshold: threshold.max(1),
        }
    }

    /// The congestion threshold in occupied VCs.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Recomputes every congestion bit from current router state.
    pub fn update(&mut self, topo: AnyTopology, soa: &NocSoa) {
        for node in topo.nodes() {
            for (di, dir) in DIRECTIONS.into_iter().enumerate() {
                let congested = match topo.neighbor(node, dir) {
                    Some(nb) => {
                        let in_port = Port::Dir(dir.opposite()).index();
                        soa.in_occupied(soa.np(nb, in_port)) >= self.threshold
                    }
                    None => false,
                };
                self.bits[node.index()][di] = congested;
            }
        }
    }

    /// Refreshes only the bits derived from router `dirty`'s input
    /// occupancy: for each direction `e` with an upstream neighbor `m`,
    /// the bit `m` reads for its channel toward `dirty`.
    ///
    /// Calling this for every router whose input occupancy changed since
    /// the last refresh is equivalent to a full [`Sideband::update`] —
    /// bits whose source occupancy did not change cannot flip, and edge
    /// bits stay `false` forever.
    pub fn refresh_from(&mut self, topo: AnyTopology, soa: &NocSoa, dirty: NodeId) {
        for dir in DIRECTIONS {
            let Some(upstream) = topo.neighbor(dirty, dir) else {
                continue;
            };
            let in_port = Port::Dir(dir).index();
            let congested = soa.in_occupied(soa.np(dirty, in_port)) >= self.threshold;
            self.bits[upstream.index()][Self::dir_index(dir.opposite())] = congested;
        }
    }

    fn dir_index(dir: Direction) -> usize {
        DIRECTIONS
            .iter()
            .position(|&d| d == dir)
            .expect("direction in table")
    }
}

impl CongestionView for Sideband {
    fn channel_congested(&self, node: NodeId, dir: Direction) -> bool {
        self.bits[node.index()][Self::dir_index(dir)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Flit, FlitKind, PacketId};
    use footprint_topology::Mesh;

    fn flit(dest: u16, vc: u8) -> Flit {
        Flit {
            packet: PacketId(1),
            kind: FlitKind::Single,
            src: NodeId(0),
            dest: NodeId(dest),
            seq: 0,
            size: 1,
            birth: 0,
            class: 0,
            vc,
        }
    }

    #[test]
    fn congestion_bit_tracks_downstream_occupancy() {
        let mesh = AnyTopology::from(Mesh::square(4));
        let mut soa = NocSoa::new(mesh.len(), 4, 4, 2);
        let mut sb = Sideband::new(mesh.len(), 2);
        sb.update(mesh, &soa);
        assert!(!sb.channel_congested(NodeId(0), Direction::East));
        // Fill two VCs of n1's west input (fed by n0's east output).
        let west = Port::Dir(Direction::West).index();
        soa.in_push(soa.ivc(NodeId(1), west, 0), flit(3, 0));
        soa.in_push(soa.ivc(NodeId(1), west, 1), flit(3, 1));
        sb.update(mesh, &soa);
        assert!(sb.channel_congested(NodeId(0), Direction::East));
        assert!(!sb.channel_congested(NodeId(1), Direction::East));
    }

    #[test]
    fn mesh_edges_never_congested() {
        let mesh = AnyTopology::from(Mesh::square(4));
        let soa = NocSoa::new(mesh.len(), 4, 4, 2);
        let mut sb = Sideband::new(mesh.len(), 1);
        sb.update(mesh, &soa);
        assert!(!sb.channel_congested(NodeId(0), Direction::West));
        assert!(!sb.channel_congested(NodeId(0), Direction::South));
    }

    #[test]
    fn threshold_is_at_least_one() {
        let sb = Sideband::new(4, 0);
        assert_eq!(sb.threshold(), 1);
    }

    #[test]
    fn incremental_refresh_matches_full_update() {
        let mesh = AnyTopology::from(Mesh::square(4));
        let mut soa = NocSoa::new(mesh.len(), 4, 4, 2);
        // Occupy inputs at an interior node (5) and an edge node (0).
        for (node, port, vcs) in [
            (5u16, Direction::West, 2u8),
            (5, Direction::North, 1),
            (0, Direction::East, 2),
        ] {
            for v in 0..vcs {
                let ivc = soa.ivc(NodeId(node), Port::Dir(port).index(), v as usize);
                soa.in_push(ivc, flit(9, v));
            }
        }
        let mut full = Sideband::new(mesh.len(), 2);
        full.update(mesh, &soa);
        let mut incr = Sideband::new(mesh.len(), 2);
        incr.refresh_from(mesh, &soa, NodeId(5));
        incr.refresh_from(mesh, &soa, NodeId(0));
        for node in mesh.nodes() {
            for dir in DIRECTIONS {
                assert_eq!(
                    full.channel_congested(node, dir),
                    incr.channel_congested(node, dir),
                    "bit mismatch at {node:?} {dir:?}"
                );
            }
        }
    }
}
