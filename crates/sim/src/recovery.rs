//! Recovery observation for faulted runs: time-to-recover and windowed
//! availability.
//!
//! The tracker is pure observation — it draws nothing from the shared RNG
//! and feeds nothing back into routing, injection or arbitration, so
//! attaching it cannot perturb a run. The network drives it only when a
//! fault plan is present; fault-free runs skip every call.
//!
//! Two views of resilience come out:
//!
//! * **Time-to-recover (TTR)** — for each repair event, the cycles from
//!   the repair taking effect to the retry backlog draining to empty. A
//!   repair with no backlog recovers in 0 cycles; a repair whose backlog
//!   never drains before the run ends is reported as still pending.
//! * **Availability** — delivered/offered packets per fixed window of
//!   cycles, the classic service-level view: a fault epoch shows up as a
//!   dip, the post-repair catch-up as a recovery slope.

/// One completed repair: the repair cycle and the cycle the retry backlog
/// drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtrRecord {
    /// Cycle the repair took effect.
    pub repair_cycle: u64,
    /// First cycle after the repair with an empty retry backlog.
    pub recovered_cycle: u64,
}

impl TtrRecord {
    /// Cycles from repair to drained backlog.
    pub fn cycles(&self) -> u64 {
        self.recovered_cycle - self.repair_cycle
    }
}

/// Offered/delivered packet counts over one availability window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailabilityWindow {
    /// First cycle of the window.
    pub start: u64,
    /// Packets generated in the window (including ones parked or dropped
    /// as unreachable).
    pub offered: u64,
    /// Packets fully ejected in the window.
    pub delivered: u64,
}

impl AvailabilityWindow {
    /// Delivered fraction of offered traffic; 1.0 for an idle window
    /// (nothing offered, nothing owed).
    pub fn availability(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// Cycles per availability window. Long enough that a healthy window
/// saturates near 1.0 (deliveries lag generation by the pipeline depth),
/// short enough to resolve individual fault epochs in a standard run.
pub const AVAILABILITY_WINDOW: u64 = 256;

/// Accumulates recovery observations over a faulted run. See the module
/// docs for the semantics; [`Network`](crate::Network) drives it from the
/// cycle loop and `footprint-stats` snapshots it into a report.
#[derive(Debug, Default)]
pub struct RecoveryTracker {
    window_start: u64,
    offered: u64,
    delivered: u64,
    windows: Vec<AvailabilityWindow>,
    /// Earliest repair whose backlog has not drained yet.
    repair_pending: Option<u64>,
    ttr: Vec<TtrRecord>,
    /// Last cumulative generated/ejected totals seen, for delta tracking
    /// across the window-reset the measurement boundary performs.
    last_generated: u64,
    last_ejected: u64,
}

impl RecoveryTracker {
    /// A fresh tracker (cycle 0, no observations).
    pub fn new() -> Self {
        RecoveryTracker::default()
    }

    /// Notes a repair taking effect at `cycle`. Only the earliest
    /// outstanding repair is timed — overlapping repairs recover together
    /// when the shared backlog drains.
    pub fn on_repair(&mut self, cycle: u64) {
        if self.repair_pending.is_none() {
            self.repair_pending = Some(cycle);
        }
    }

    /// Per-cycle update: cumulative generated/ejected packet totals (the
    /// counters may reset at the measurement boundary; the tracker
    /// re-syncs and counts the reset cycle as zero delta) and whether the
    /// retry backlog is empty after this cycle's retry processing.
    pub fn tick(&mut self, cycle: u64, generated: u64, ejected: u64, backlog_empty: bool) {
        if generated < self.last_generated {
            self.last_generated = generated;
        }
        if ejected < self.last_ejected {
            self.last_ejected = ejected;
        }
        self.offered += generated - self.last_generated;
        self.delivered += ejected - self.last_ejected;
        self.last_generated = generated;
        self.last_ejected = ejected;
        if let Some(repair) = self.repair_pending {
            if backlog_empty {
                self.repair_pending = None;
                self.ttr.push(TtrRecord {
                    repair_cycle: repair,
                    recovered_cycle: cycle,
                });
            }
        }
        if cycle + 1 >= self.window_start + AVAILABILITY_WINDOW {
            self.windows.push(AvailabilityWindow {
                start: self.window_start,
                offered: self.offered,
                delivered: self.delivered,
            });
            self.window_start = cycle + 1;
            self.offered = 0;
            self.delivered = 0;
        }
    }

    /// Completed repairs, in repair order.
    pub fn ttr(&self) -> &[TtrRecord] {
        &self.ttr
    }

    /// A repair still waiting for its backlog to drain, if any.
    pub fn pending_repair(&self) -> Option<u64> {
        self.repair_pending
    }

    /// Completed availability windows, in time order.
    pub fn windows(&self) -> &[AvailabilityWindow] {
        &self.windows
    }

    /// The in-progress window, if it has observed any traffic — snapshot
    /// for collectors that run before the window closes.
    pub fn partial_window(&self) -> Option<AvailabilityWindow> {
        if self.offered == 0 && self.delivered == 0 {
            None
        } else {
            Some(AvailabilityWindow {
                start: self.window_start,
                offered: self.offered,
                delivered: self.delivered,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_window_is_fully_available() {
        let w = AvailabilityWindow {
            start: 0,
            offered: 0,
            delivered: 0,
        };
        assert_eq!(w.availability(), 1.0);
    }

    #[test]
    fn windows_roll_at_the_boundary() {
        let mut t = RecoveryTracker::new();
        let mut gen = 0;
        for cycle in 0..AVAILABILITY_WINDOW * 2 {
            gen += 2;
            t.tick(cycle, gen, gen / 2, true);
        }
        assert_eq!(t.windows().len(), 2);
        assert_eq!(t.windows()[0].start, 0);
        assert_eq!(t.windows()[1].start, AVAILABILITY_WINDOW);
        assert_eq!(t.windows()[0].offered, 2 * AVAILABILITY_WINDOW);
        assert!(t.partial_window().is_none());
        assert!((t.windows()[1].availability() - 0.5).abs() < 0.01);
    }

    #[test]
    fn ttr_measures_repair_to_drained_backlog() {
        let mut t = RecoveryTracker::new();
        t.tick(0, 0, 0, false);
        t.on_repair(100);
        t.tick(100, 0, 0, false);
        t.tick(101, 0, 0, false);
        t.tick(102, 0, 0, true);
        assert_eq!(t.ttr(), &[TtrRecord { repair_cycle: 100, recovered_cycle: 102 }]);
        assert_eq!(t.ttr()[0].cycles(), 2);
        assert!(t.pending_repair().is_none());
        // A second repair with an already-empty backlog recovers instantly.
        t.on_repair(200);
        t.tick(200, 0, 0, true);
        assert_eq!(t.ttr()[1].cycles(), 0);
    }

    #[test]
    fn overlapping_repairs_time_the_earliest() {
        let mut t = RecoveryTracker::new();
        t.on_repair(10);
        t.tick(10, 0, 0, false);
        t.on_repair(20); // coalesces into the outstanding one
        t.tick(20, 0, 0, false);
        t.tick(30, 0, 0, true);
        assert_eq!(t.ttr().len(), 1);
        assert_eq!(t.ttr()[0].repair_cycle, 10);
        assert_eq!(t.ttr()[0].cycles(), 20);
    }

    #[test]
    fn counter_reset_resyncs_without_negative_deltas() {
        let mut t = RecoveryTracker::new();
        t.tick(0, 50, 40, true);
        // Measurement-boundary reset: cumulative counters drop to zero.
        t.tick(1, 0, 0, true);
        t.tick(2, 5, 3, true);
        let w = t.partial_window().expect("traffic observed");
        assert_eq!(w.offered, 55);
        assert_eq!(w.delivered, 43);
    }

    #[test]
    fn unrecovered_repair_stays_pending() {
        let mut t = RecoveryTracker::new();
        t.on_repair(5);
        t.tick(5, 0, 0, false);
        assert_eq!(t.pending_repair(), Some(5));
        assert!(t.ttr().is_empty());
    }
}
