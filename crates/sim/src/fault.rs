//! Runtime fault state: the live view a [`FaultPlan`] schedule induces on
//! the network, and the policy for packets whose destination becomes
//! unreachable.
//!
//! The plan is pure topology-level data; this module owns its dynamic
//! interpretation. [`FaultState::advance`] applies onsets and repairs at
//! cycle boundaries, maintaining a mask of dead directed channels, degraded
//! launch periods and down routers. [`FaultView`] projects that mask into
//! the routing crate's `LinkStateView`, augmenting raw liveness with an
//! algorithm-aware reachability check: a channel is *usable* for a packet
//! only if its downstream router can still reach the destination through
//! the surviving minimal-path DAG. Because every masked candidate set then
//! contains only links that lead somewhere, adaptive packets never wander
//! into dead ends — they either route around the fault or are never
//! injected at all.
//!
//! Determinism: the fault state is a pure function of `(plan, cycle)`, and
//! the reachability memo is a cache of a pure function, so fault handling
//! introduces no new RNG draws and cannot perturb the simulation's random
//! stream. A run with an empty plan takes the fast path everywhere and is
//! bit-identical to a build without the fault subsystem.

use std::cell::RefCell;
use std::collections::HashMap;

use footprint_routing::{LinkStateView, RoutingAlgorithm};
use footprint_topology::{AnyTopology, Direction, FaultKind, FaultPlan, NodeId, Port, PORT_COUNT};

/// Disposition of packets generated for a destination the routing function
/// can no longer reach under the current fault state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnreachablePolicy {
    /// Drop the packet at the source, with accounting
    /// ([`crate::ClassStats::dropped_packets`]). The default.
    #[default]
    Drop,
    /// Hold the packet at the source and retry, up to `max_attempts` total
    /// attempts, then drop. Lets traffic survive transient faults with
    /// scheduled repairs.
    ///
    /// The delay before attempt *n* is `backoff << (n-1)` cycles (capped
    /// at 64× the base) plus a deterministic jitter in `[0, backoff)`
    /// derived from the run seed, packet id and attempt number — never
    /// from the shared RNG — so retry timing is bit-identical at any
    /// worker count and under either scheduler. A fault-mask change
    /// (a repair in particular) re-checks every parked packet immediately
    /// and re-admits the ones whose destination became reachable, without
    /// charging an attempt to those still cut off.
    Retry {
        /// Attempts before the packet is dropped (0 drops immediately).
        max_attempts: u32,
        /// Base backoff in cycles (doubles per attempt, capped at 64×).
        backoff: u64,
    },
    /// Treat any unreachable generation as a run-level error. The network
    /// drops the packet exactly like [`UnreachablePolicy::Drop`] (a cycle
    /// loop has no error channel); the experiment layer turns the recorded
    /// unreachable pairs into a typed failure after the run.
    Error,
}

/// Memo key for algorithm-aware reachability: `(algorithm, cur, src, dest)`.
type ReachKey = (&'static str, u16, u16, u16);

/// The connected components of the live channel set over one fault epoch
/// (the span between two mask recomputations).
///
/// Components are *weak*: two routers share a component when a surviving
/// channel joins them in either direction, so a single-direction cut does
/// not partition (traffic still flows the other way). A pair in different
/// components is unreachable under **every** routing algorithm — no
/// directed path can cross a weak cut — which is what lets the fault state
/// answer partition queries without consulting the routing function.
/// Routers taken down by `FaultTarget::Router` events lose all incident
/// channels and appear as singleton components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEpoch {
    /// First cycle the epoch's mask was in effect.
    pub from_cycle: u64,
    /// The components: each sorted by node id, ordered by smallest member.
    /// A healthy fabric is one component covering every node.
    pub components: Vec<Vec<NodeId>>,
}

impl PartitionEpoch {
    /// `true` when the fabric was split into more than one component.
    pub fn is_partitioned(&self) -> bool {
        self.components.len() > 1
    }

    /// Total routers across all components (always the fabric size — the
    /// components are a partition of the node set).
    pub fn node_count(&self) -> usize {
        self.components.iter().map(Vec::len).sum()
    }
}

/// Live fault state derived from a [`FaultPlan`], advanced once per cycle.
#[derive(Debug)]
pub struct FaultState {
    topo: AnyTopology,
    plan: FaultPlan,
    /// Dead directed channels, indexed `node * PORT_COUNT + port`.
    link_down: Vec<bool>,
    /// Degraded-launch period per directed channel (0 = full rate).
    degrade: Vec<u64>,
    /// Routers currently down.
    router_down: Vec<bool>,
    /// `true` while any mask bit is set — the fast-path gate.
    any_active: bool,
    /// Memoized algorithm-aware reachability, keyed
    /// `(algorithm, cur, src, dest)` — one state may be queried under
    /// several algorithms (e.g. when comparing reachability maps), and
    /// their DAGs differ. Cleared whenever the mask changes.
    memo: RefCell<HashMap<ReachKey, bool>>,
    /// Weak-component label per node under the current mask (the smallest
    /// node id in the component). Identity labels while no fault is active.
    component: Vec<u16>,
    /// Partition history: one epoch per *distinct* component structure, in
    /// onset order. Empty for an empty plan; any non-empty plan starts
    /// with its cycle-0 structure (the healthy baseline when nothing fires
    /// at 0), so the history reads baseline → onset → … → repair.
    history: Vec<PartitionEpoch>,
}

impl FaultState {
    /// Builds the state for `plan` on `topo`, applying any cycle-0 events.
    pub fn new(topo: impl Into<AnyTopology>, plan: FaultPlan) -> Self {
        let topo = topo.into();
        let n = topo.len();
        let mut state = FaultState {
            topo,
            plan,
            link_down: vec![false; n * PORT_COUNT],
            degrade: vec![0; n * PORT_COUNT],
            router_down: vec![false; n],
            any_active: false,
            memo: RefCell::new(HashMap::new()),
            component: (0..n as u16).collect(),
            history: Vec::new(),
        };
        if !state.plan.is_empty() {
            state.recompute(0);
        }
        state
    }

    /// The schedule this state interprets.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// `true` while any fault is active.
    pub fn any_active(&self) -> bool {
        self.any_active
    }

    /// Applies onsets and repairs scheduled for `cycle`. Cheap when nothing
    /// changes (and free for an empty plan).
    ///
    /// Returns `true` when the fault masks were recomputed — the signal
    /// the active-set scheduler uses to run a full tick, so onsets take
    /// effect on stranded traffic immediately and repairs re-arm routers
    /// that were idling behind a dead channel.
    pub fn advance(&mut self, cycle: u64) -> bool {
        if self.plan.is_empty() || cycle == 0 {
            return false; // cycle 0 was applied at construction
        }
        let changes = self
            .plan
            .events()
            .iter()
            .any(|e| e.at == cycle || e.until == Some(cycle));
        if changes {
            self.recompute(cycle);
        }
        changes
    }

    /// Rebuilds the masks from every event active at `cycle`.
    fn recompute(&mut self, cycle: u64) {
        self.link_down.iter_mut().for_each(|b| *b = false);
        self.degrade.iter_mut().for_each(|p| *p = 0);
        self.router_down.iter_mut().for_each(|b| *b = false);
        let mut channels = Vec::new();
        let mut active = false;
        for e in self.plan.events() {
            if e.at > cycle || e.until.is_some_and(|u| cycle >= u) {
                continue;
            }
            active = true;
            if let footprint_topology::FaultTarget::Router(node) = e.target {
                self.router_down[node.index()] = true;
            }
            channels.clear();
            FaultPlan::directed_channels(self.topo, e, &mut channels);
            for &(node, dir) in &channels {
                let idx = Self::ch(node, dir);
                match e.kind {
                    FaultKind::Down => self.link_down[idx] = true,
                    FaultKind::Degraded { period } => self.degrade[idx] = period,
                }
            }
        }
        self.any_active = active;
        self.memo.borrow_mut().clear();
        self.recompute_components(cycle);
    }

    /// Rebuilds the weak-component labels from the current channel mask
    /// and appends a [`PartitionEpoch`] when the structure changed.
    /// Union-find over the live edges; labels are canonicalized to the
    /// smallest node id in each component so they are stable across
    /// identical masks.
    fn recompute_components(&mut self, cycle: u64) {
        let n = self.topo.len();
        let mut parent: Vec<u16> = (0..n as u16).collect();
        fn find(parent: &mut [u16], mut x: u16) -> u16 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        // Every live directed channel joins its endpoints; iterating all
        // directed channels covers "alive in either direction" without a
        // separate reverse lookup.
        for ch in self.topo.channels() {
            if !self.link_down[Self::ch(ch.src, ch.dir)] {
                let (a, b) = (find(&mut parent, ch.src.0), find(&mut parent, ch.dst.0));
                if a != b {
                    // Union toward the smaller root: the final root of each
                    // set is its smallest member.
                    let (lo, hi) = (a.min(b), a.max(b));
                    parent[hi as usize] = lo;
                }
            }
        }
        for i in 0..n as u16 {
            self.component[i as usize] = find(&mut parent, i);
        }
        // Record the epoch only when the structure actually changed.
        let changed = match self.history.last() {
            None => true,
            Some(last) => {
                let mut labels = vec![u16::MAX; n];
                for c in &last.components {
                    for &node in c {
                        labels[node.index()] = c[0].0;
                    }
                }
                labels != self.component
            }
        };
        if changed {
            let mut components: Vec<Vec<NodeId>> = Vec::new();
            let mut slot = vec![usize::MAX; n];
            for i in 0..n as u16 {
                let root = self.component[i as usize] as usize;
                if slot[root] == usize::MAX {
                    slot[root] = components.len();
                    components.push(Vec::new());
                }
                components[slot[root]].push(NodeId(i));
            }
            self.history.push(PartitionEpoch {
                from_cycle: cycle,
                components,
            });
        }
    }

    /// The weak-component label of `node` under the current mask (the
    /// smallest node id in its component).
    #[inline]
    pub fn component(&self, node: NodeId) -> u16 {
        self.component[node.index()]
    }

    /// `true` when `a` and `b` lie in different weak components — in which
    /// case no routing algorithm can deliver between them in either
    /// direction.
    #[inline]
    pub fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.any_active && self.component[a.index()] != self.component[b.index()]
    }

    /// `true` if the current mask splits the fabric at all.
    pub fn is_partitioned(&self) -> bool {
        self.any_active && self.component.iter().any(|&c| c != self.component[0])
    }

    /// The recorded partition epochs, in onset order: one entry per
    /// distinct component structure the mask passed through (including the
    /// initial structure of a cycle-0 plan). Empty for an empty plan.
    pub fn partition_history(&self) -> &[PartitionEpoch] {
        &self.history
    }

    #[inline]
    fn ch(node: NodeId, dir: Direction) -> usize {
        node.index() * PORT_COUNT + Port::Dir(dir).index()
    }

    /// `true` if the directed channel leaving `node` toward `dir` is alive.
    #[inline]
    pub fn link_up(&self, node: NodeId, dir: Direction) -> bool {
        !self.any_active || !self.link_down[Self::ch(node, dir)]
    }

    /// `true` if `node`'s router is down.
    #[inline]
    pub fn router_down(&self, node: NodeId) -> bool {
        self.any_active && self.router_down[node.index()]
    }

    /// `true` if output `port` of `node` may launch a flit this cycle:
    /// healthy (or `Local`) ports always, dead ports never, degraded ports
    /// once per period.
    #[inline]
    pub fn launch_allowed(&self, node: NodeId, port: usize, cycle: u64) -> bool {
        if !self.any_active || port == Port::Local.index() {
            return true;
        }
        let idx = node.index() * PORT_COUNT + port;
        if self.link_down[idx] {
            return false;
        }
        match self.degrade[idx] {
            0 => true,
            period => cycle.is_multiple_of(period),
        }
    }

    /// `true` if a packet `src → dest` currently standing at `cur` can
    /// still reach `dest` through `algo`'s allowed minimal directions over
    /// the surviving links. Memoized; the recursion runs over the minimal
    /// DAG so it terminates on any mask.
    pub fn can_reach(
        &self,
        algo: &dyn RoutingAlgorithm,
        cur: NodeId,
        src: NodeId,
        dest: NodeId,
    ) -> bool {
        if cur == dest || !self.any_active {
            return true;
        }
        if self.partitioned(cur, dest) {
            // Weak cut between the components: no directed path exists, so
            // no algorithm's DAG can contain one. Skip the recursion (and
            // the memo — the component test is already O(1)).
            return false;
        }
        let key = (algo.name(), cur.0, src.0, dest.0);
        if let Some(&cached) = self.memo.borrow().get(&key) {
            return cached;
        }
        let mut ok = false;
        for d in algo.allowed_dirs(self.topo, cur, src, dest).iter() {
            if self.link_down[Self::ch(cur, d)] {
                continue;
            }
            let Some(nb) = self.topo.neighbor(cur, d) else {
                continue;
            };
            if self.can_reach(algo, nb, src, dest) {
                ok = true;
                break;
            }
        }
        self.memo.borrow_mut().insert(key, ok);
        ok
    }

    /// `true` if a packet generated at `src` for `dest` is deliverable
    /// under the current fault state: both routers alive and a surviving
    /// routed path between them.
    pub fn deliverable(&self, algo: &dyn RoutingAlgorithm, src: NodeId, dest: NodeId) -> bool {
        !self.router_down(src) && !self.router_down(dest) && self.can_reach(algo, src, src, dest)
    }
}

/// The routing-facing projection of a [`FaultState`]: liveness plus
/// algorithm-aware reachability (see the module docs).
pub struct FaultView<'a> {
    state: &'a FaultState,
    algo: &'a dyn RoutingAlgorithm,
}

impl<'a> FaultView<'a> {
    /// Couples the fault state with the routing function whose allowed
    /// directions define reachability.
    pub fn new(state: &'a FaultState, algo: &'a dyn RoutingAlgorithm) -> Self {
        FaultView { state, algo }
    }
}

impl LinkStateView for FaultView<'_> {
    fn link_up(&self, node: NodeId, dir: Direction) -> bool {
        self.state.link_up(node, dir)
    }

    fn usable(&self, node: NodeId, dir: Direction, src: NodeId, dest: NodeId) -> bool {
        if !self.state.any_active {
            return true;
        }
        if !self.state.link_up(node, dir) {
            return false;
        }
        match self.state.topo.neighbor(node, dir) {
            Some(nb) => self.state.can_reach(self.algo, nb, src, dest),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_routing::{Dor, OddEven, RoutingAlgorithm};
    use footprint_topology::{FaultEvent, Mesh};

    fn mesh() -> Mesh {
        Mesh::square(4)
    }

    #[test]
    fn empty_plan_reports_everything_healthy() {
        let s = FaultState::new(mesh(), FaultPlan::new());
        assert!(!s.any_active());
        assert!(s.link_up(NodeId(0), Direction::East));
        assert!(s.launch_allowed(NodeId(0), Port::Dir(Direction::East).index(), 7));
        assert!(s.deliverable(&Dor, NodeId(0), NodeId(15)));
    }

    #[test]
    fn cycle_zero_cut_masks_both_directions() {
        let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(0), Direction::East, 0));
        let s = FaultState::new(mesh(), plan);
        assert!(s.any_active());
        assert!(!s.link_up(NodeId(0), Direction::East));
        assert!(!s.link_up(NodeId(1), Direction::West));
        assert!(s.link_up(NodeId(0), Direction::North));
        assert!(!s.launch_allowed(NodeId(0), Port::Dir(Direction::East).index(), 3));
    }

    #[test]
    fn onset_and_repair_follow_the_schedule() {
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(0), Direction::East, 10).repaired_at(20));
        let mut s = FaultState::new(mesh(), plan);
        assert!(s.link_up(NodeId(0), Direction::East), "before onset");
        s.advance(10);
        assert!(!s.link_up(NodeId(0), Direction::East), "after onset");
        s.advance(15); // no event this cycle: state unchanged
        assert!(!s.link_up(NodeId(0), Direction::East));
        s.advance(20);
        assert!(s.link_up(NodeId(0), Direction::East), "after repair");
        assert!(!s.any_active());
    }

    #[test]
    fn degraded_link_launches_once_per_period() {
        let plan =
            FaultPlan::new().with(FaultEvent::link_degraded(NodeId(0), Direction::East, 0, 4));
        let s = FaultState::new(mesh(), plan);
        let east = Port::Dir(Direction::East).index();
        assert!(s.link_up(NodeId(0), Direction::East), "degraded is not dead");
        assert!(s.launch_allowed(NodeId(0), east, 0));
        assert!(!s.launch_allowed(NodeId(0), east, 1));
        assert!(!s.launch_allowed(NodeId(0), east, 3));
        assert!(s.launch_allowed(NodeId(0), east, 4));
        // The reverse direction of the duplex link is throttled too.
        assert!(!s.launch_allowed(NodeId(1), Port::Dir(Direction::West).index(), 2));
        // Other channels launch freely.
        assert!(s.launch_allowed(NodeId(0), Port::Dir(Direction::North).index(), 1));
    }

    #[test]
    fn same_row_pairs_across_a_cut_are_unreachable_minimally() {
        // n0 -(dead)- n1 on the bottom row: minimal paths between
        // same-row nodes never leave the row, so n0→n1 and n0→n3 are
        // unreachable even for fully adaptive minimal routing, while any
        // off-row destination routes around.
        let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(0), Direction::East, 0));
        let s = FaultState::new(mesh(), plan);
        let full = footprint_routing::RandomMinimal;
        assert!(!s.deliverable(&full, NodeId(0), NodeId(1)));
        assert!(!s.deliverable(&full, NodeId(0), NodeId(3)));
        assert!(s.deliverable(&full, NodeId(0), NodeId(5)));
        assert!(s.deliverable(&full, NodeId(0), NodeId(15)));
        assert!(s.deliverable(&full, NodeId(4), NodeId(7)), "other rows unaffected");
    }

    #[test]
    fn dor_loses_more_pairs_than_adaptive_routing() {
        let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 0));
        let s = FaultState::new(Mesh::square(4), plan);
        let count_unreachable = |algo: &dyn RoutingAlgorithm| {
            let m = Mesh::square(4);
            let mut n = 0;
            for src in m.nodes() {
                for dest in m.nodes() {
                    if src != dest && !s.deliverable(algo, src, dest) {
                        n += 1;
                    }
                }
            }
            n
        };
        let dor = count_unreachable(&Dor);
        let oe = count_unreachable(&OddEven);
        let full = count_unreachable(&footprint_routing::RandomMinimal);
        assert!(dor > oe, "XY loses more pairs than odd-even ({dor} vs {oe})");
        assert!(oe >= full, "odd-even cannot beat fully adaptive");
        assert!(full > 0, "same-row pairs across the cut are always lost");
    }

    #[test]
    fn router_fault_isolates_the_node() {
        let plan = FaultPlan::new().with(FaultEvent::router_down(NodeId(5), 0));
        let s = FaultState::new(mesh(), plan);
        assert!(s.router_down(NodeId(5)));
        let full = footprint_routing::RandomMinimal;
        assert!(!s.deliverable(&full, NodeId(5), NodeId(0)), "source down");
        assert!(!s.deliverable(&full, NodeId(0), NodeId(5)), "dest down");
        // Traffic not involving n5 routes around it when the minimal
        // rectangle leaves room.
        assert!(s.deliverable(&full, NodeId(0), NodeId(15)));
        assert!(s.deliverable(&full, NodeId(2), NodeId(9)));
        // But a same-column pair whose every minimal path runs through n5
        // is lost even to fully adaptive minimal routing.
        assert!(!s.deliverable(&full, NodeId(1), NodeId(9)));
    }

    #[test]
    fn fault_view_usable_rejects_dead_end_first_hops() {
        // Cut n1↔n2 and n1↔n5: entering n1 from n0 strands a packet bound
        // for n2 (its only onward minimal links are gone), so East at n0
        // must be reported unusable even though n0→n1 itself is healthy.
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(1), Direction::East, 0))
            .with(FaultEvent::link_down(NodeId(1), Direction::North, 0));
        let s = FaultState::new(mesh(), plan);
        let full = footprint_routing::RandomMinimal;
        let view = FaultView::new(&s, &full);
        assert!(view.link_up(NodeId(0), Direction::East));
        assert!(!view.usable(NodeId(0), Direction::East, NodeId(0), NodeId(2)));
        // For a packet to n1 itself the link is still the way home.
        assert!(view.usable(NodeId(0), Direction::East, NodeId(0), NodeId(1)));
        // North at n0 keeps n2 reachable (around the cut).
        assert!(view.usable(NodeId(0), Direction::North, NodeId(0), NodeId(2)));
    }

    #[test]
    fn healthy_state_is_one_component_with_no_history() {
        let s = FaultState::new(mesh(), FaultPlan::new());
        assert!(!s.is_partitioned());
        assert!(!s.partitioned(NodeId(0), NodeId(15)));
        assert!(s.partition_history().is_empty());
    }

    #[test]
    fn ring_cut_in_two_places_partitions() {
        use footprint_topology::Ring;
        // Two duplex cuts split a ring: cutting 1↔2 and 5↔6 on an 8-ring
        // leaves components {0,1,6,7} and {2,3,4,5}.
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(1), Direction::East, 0))
            .with(FaultEvent::link_down(NodeId(5), Direction::East, 0));
        let s = FaultState::new(Ring::new(8), plan);
        assert!(s.is_partitioned());
        assert!(s.partitioned(NodeId(2), NodeId(7)));
        assert!(!s.partitioned(NodeId(6), NodeId(1)));
        let h = s.partition_history();
        assert_eq!(h.len(), 1);
        assert!(h[0].is_partitioned());
        assert_eq!(h[0].node_count(), 8);
        assert_eq!(
            h[0].components,
            vec![
                vec![NodeId(0), NodeId(1), NodeId(6), NodeId(7)],
                vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)],
            ]
        );
        // Cross-component pairs are unreachable under every algorithm.
        assert!(!s.deliverable(&Dor, NodeId(3), NodeId(7)));
        assert!(!s.deliverable(&footprint_routing::RandomMinimal, NodeId(3), NodeId(7)));
    }

    #[test]
    fn down_router_is_a_singleton_component() {
        let plan = FaultPlan::new().with(FaultEvent::router_down(NodeId(5), 0));
        let s = FaultState::new(mesh(), plan);
        assert!(s.is_partitioned());
        let h = s.partition_history();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].components.len(), 2);
        assert!(h[0].components.iter().any(|c| c == &vec![NodeId(5)]));
    }

    #[test]
    fn single_direction_cut_does_not_partition() {
        // Only the directed channel n0→East dies; the reverse direction
        // still joins the nodes weakly, so no partition is declared even
        // though n0→n1 minimal traffic is lost.
        let plan = FaultPlan::new().with(FaultEvent {
            at: 0,
            until: None,
            target: footprint_topology::FaultTarget::Link {
                node: NodeId(0),
                dir: Direction::East,
            },
            kind: FaultKind::Down,
        });
        let s = FaultState::new(mesh(), plan);
        assert!(!s.is_partitioned());
        assert!(!s.partitioned(NodeId(0), NodeId(1)));
    }

    #[test]
    fn repair_records_a_recovery_epoch() {
        use footprint_topology::Ring;
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(0), Direction::East, 10).repaired_at(50))
            .with(FaultEvent::link_down(NodeId(2), Direction::East, 10).repaired_at(50));
        let mut s = FaultState::new(Ring::new(6), plan);
        // A non-empty plan records its healthy baseline at construction.
        assert_eq!(s.partition_history().len(), 1);
        assert!(!s.partition_history()[0].is_partitioned());
        s.advance(10);
        assert!(s.is_partitioned());
        assert_eq!(s.partition_history().len(), 2);
        s.advance(30); // no event: no new epoch
        assert_eq!(s.partition_history().len(), 2);
        s.advance(50);
        assert!(!s.is_partitioned());
        let h = s.partition_history();
        assert_eq!(h.len(), 3, "repair epoch recorded");
        assert_eq!(h[1].from_cycle, 10);
        assert!(h[1].is_partitioned());
        assert_eq!(h[2].from_cycle, 50);
        assert!(!h[2].is_partitioned());
        assert_eq!(h[2].components.len(), 1);
    }

    #[test]
    fn fully_partitioned_mesh_isolates_every_node() {
        // Take down every router: every node becomes a singleton and every
        // pair is partition-unreachable — the degenerate worst case a
        // graceful run must survive.
        let mut plan = FaultPlan::new();
        for n in mesh().nodes() {
            plan.push(FaultEvent::router_down(n, 0));
        }
        let s = FaultState::new(mesh(), plan);
        let h = s.partition_history();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].components.len(), 16);
        assert_eq!(h[0].node_count(), 16);
        assert!(s.partitioned(NodeId(0), NodeId(1)));
    }

    #[test]
    fn reachability_respects_the_algorithms_own_dag() {
        // Cut the East link out of n0: XY routing from n0 to n6 = (2,1)
        // needs East first, so DOR loses the pair while odd-even (which may
        // go North first from an even column) keeps it.
        let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(0), Direction::East, 0));
        let s = FaultState::new(mesh(), plan);
        assert!(!s.deliverable(&Dor, NodeId(0), NodeId(6)));
        assert!(s.deliverable(&OddEven, NodeId(0), NodeId(6)));
    }
}
