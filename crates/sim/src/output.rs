//! Output-side VC state: credit counters, owner registers and the
//! allocation state machine.
//!
//! Router output VCs live in the struct-of-arrays store ([`crate::NocSoa`])
//! for cache-resident per-cycle scans; the object-based [`OutVc`] here
//! backs the injection channels of [`crate::Source`] endpoints (one small
//! array per node, outside the router hot loop) and remains the reference
//! semantics the store's packed state machine must agree with.

use footprint_routing::VcReallocationPolicy;
use footprint_topology::NodeId;

use crate::packet::PacketId;

/// Allocation state of one output VC (the upstream view of a downstream
/// input VC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutVcState {
    /// Unowned and available for a fresh allocation.
    Idle,
    /// Allocated to a packet that is still streaming (tail not yet
    /// forwarded).
    Active(PacketId),
    /// All flits of the last packet forwarded, but the downstream buffer has
    /// not fully drained. Under the atomic policy the VC cannot be freshly
    /// reallocated in this state — but it *can* be joined by a packet to the
    /// same destination (the footprint join).
    Draining,
}

/// One output VC: the state machine plus the credit counter and the
/// destination "owner" register that Footprint routing reads (§4.4 prices
/// this register at `log2(N)` bits).
///
/// The owner register **persists** after the VC drains and is only
/// overwritten by the next allocation: this is what lets a drained VC
/// remain "the footprint VC" for its destination (the paper's Figure 3
/// example grants VC0 to successive node-A packets precisely because the
/// register still holds A after each packet drains).
#[derive(Debug, Clone)]
pub struct OutVc {
    state: OutVcState,
    owner: Option<NodeId>,
    credits: u32,
    capacity: u32,
}

impl OutVc {
    /// A fresh VC with a full credit allotment of `capacity`.
    pub fn new(capacity: u32) -> Self {
        OutVc {
            state: OutVcState::Idle,
            owner: None,
            credits: capacity,
            capacity,
        }
    }

    /// Current allocation state.
    #[inline]
    pub fn state(&self) -> OutVcState {
        self.state
    }

    /// Destination of the packets currently occupying the VC.
    #[inline]
    pub fn owner(&self) -> Option<NodeId> {
        self.owner
    }

    /// Remaining downstream buffer slots.
    #[inline]
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Downstream buffer capacity.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// `true` if a fresh (non-join) allocation is permitted under `policy`.
    pub fn idle_for(&self, policy: VcReallocationPolicy) -> bool {
        match self.state {
            OutVcState::Idle => true,
            OutVcState::Active(_) => false,
            OutVcState::Draining => policy == VcReallocationPolicy::NonAtomic,
        }
    }

    /// `true` if a packet destined to `dest` may join this VC right now:
    /// the previous tail has been forwarded, the owner matches, and at least
    /// one credit is available.
    pub fn joinable_by(&self, dest: NodeId) -> bool {
        self.state == OutVcState::Draining && self.owner == Some(dest) && self.credits > 0
    }

    /// Allocates the VC to packet `pkt` destined to `dest` (fresh grant or
    /// join).
    ///
    /// # Panics
    ///
    /// Panics if the VC is in `Active` state (a packet is still streaming).
    pub fn allocate(&mut self, pkt: PacketId, dest: NodeId) {
        assert!(
            !matches!(self.state, OutVcState::Active(_)),
            "allocating an active VC"
        );
        self.state = OutVcState::Active(pkt);
        self.owner = Some(dest);
    }

    /// Consumes one credit as a flit is committed to this VC.
    ///
    /// # Panics
    ///
    /// Panics if no credits remain (the switch allocator must gate on
    /// credits).
    pub fn consume_credit(&mut self) {
        assert!(self.credits > 0, "credit underflow");
        self.credits -= 1;
    }

    /// Marks the current packet's tail as forwarded. Under `NonAtomic` the
    /// VC becomes immediately reusable; under `Atomic` it drains first.
    pub fn tail_sent(&mut self, policy: VcReallocationPolicy) {
        debug_assert!(matches!(self.state, OutVcState::Active(_)));
        match policy {
            VcReallocationPolicy::Atomic => self.state = OutVcState::Draining,
            VcReallocationPolicy::NonAtomic => {
                // Owner persists either way (see the type-level docs).
                self.state = if self.credits == self.capacity {
                    OutVcState::Idle
                } else {
                    OutVcState::Draining
                };
            }
        }
    }

    /// Returns one credit (a downstream slot freed). May complete a drain.
    ///
    /// # Panics
    ///
    /// Panics on credit overflow (more credits returned than capacity).
    pub fn return_credit(&mut self) {
        assert!(self.credits < self.capacity, "credit overflow");
        self.credits += 1;
        if self.state == OutVcState::Draining && self.credits == self.capacity {
            // The owner register persists: the VC stays this destination's
            // footprint VC until another packet claims it.
            self.state = OutVcState::Idle;
        }
    }

    /// `true` if the VC holds no traffic and all credits are home.
    pub fn is_quiescent(&self) -> bool {
        self.state == OutVcState::Idle && self.credits == self.capacity
    }

    /// Serializes the state machine, owner register and credit counter.
    pub(crate) fn snapshot_write(&self, w: &mut crate::snapshot::SnapWriter) {
        match self.state {
            OutVcState::Idle => {
                w.u8(0);
                w.u64(0);
            }
            OutVcState::Active(p) => {
                w.u8(1);
                w.u64(p.0);
            }
            OutVcState::Draining => {
                w.u8(2);
                w.u64(0);
            }
        }
        match self.owner {
            None => {
                w.u8(0);
                w.u16(0);
            }
            Some(n) => {
                w.u8(1);
                w.u16(n.0);
            }
        }
        w.u32(self.credits);
        w.u32(self.capacity);
    }

    /// Restores a snapshot; the capacity echo must match.
    pub(crate) fn snapshot_read(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), String> {
        let tag = r.u8()?;
        let packet = r.u64()?;
        let state = match tag {
            0 => OutVcState::Idle,
            1 => OutVcState::Active(PacketId(packet)),
            2 => OutVcState::Draining,
            t => return Err(format!("snapshot OutVc state {t} out of range")),
        };
        let owner = match r.u8()? {
            0 => {
                r.u16()?;
                None
            }
            _ => Some(NodeId(r.u16()?)),
        };
        let credits = r.u32()?;
        let capacity = r.u32()?;
        if capacity != self.capacity {
            return Err(format!(
                "snapshot OutVc capacity mismatch: stored {capacity}, live {}",
                self.capacity
            ));
        }
        self.state = state;
        self.owner = owner;
        self.credits = credits;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;

    #[test]
    fn atomic_vc_lifecycle() {
        let mut vc = OutVc::new(2);
        assert!(vc.idle_for(VcReallocationPolicy::Atomic));
        vc.allocate(PacketId(1), NodeId(9));
        assert_eq!(vc.state(), OutVcState::Active(PacketId(1)));
        assert_eq!(vc.owner(), Some(NodeId(9)));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::Atomic);
        assert_eq!(vc.state(), OutVcState::Draining);
        // Draining is not idle under the atomic policy...
        assert!(!vc.idle_for(VcReallocationPolicy::Atomic));
        // ...but it is joinable by the same destination.
        assert!(vc.joinable_by(NodeId(9)));
        assert!(!vc.joinable_by(NodeId(8)));
        vc.return_credit();
        assert_eq!(vc.state(), OutVcState::Idle);
        assert_eq!(vc.owner(), Some(NodeId(9)), "owner register persists");
        assert!(vc.is_quiescent());
    }

    #[test]
    fn non_atomic_reallocates_before_drain() {
        let mut vc = OutVc::new(2);
        vc.allocate(PacketId(1), NodeId(9));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::NonAtomic);
        // Tail forwarded, credits outstanding → still reallocatable.
        assert!(vc.idle_for(VcReallocationPolicy::NonAtomic));
        vc.allocate(PacketId(2), NodeId(4));
        assert_eq!(vc.state(), OutVcState::Active(PacketId(2)));
        assert_eq!(vc.owner(), Some(NodeId(4)));
    }

    #[test]
    fn join_reactivates_draining_vc() {
        let mut vc = OutVc::new(2);
        vc.allocate(PacketId(1), NodeId(9));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::Atomic);
        assert!(vc.joinable_by(NodeId(9)));
        vc.allocate(PacketId(2), NodeId(9)); // the footprint join
        assert_eq!(vc.state(), OutVcState::Active(PacketId(2)));
        assert_eq!(vc.owner(), Some(NodeId(9)));
    }

    #[test]
    fn join_requires_credits() {
        let mut vc = OutVc::new(1);
        vc.allocate(PacketId(1), NodeId(9));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::Atomic);
        assert!(!vc.joinable_by(NodeId(9)), "no credits → not joinable");
        vc.return_credit();
        // Credit return completed the drain → idle, not joinable.
        assert!(!vc.joinable_by(NodeId(9)));
        assert!(vc.idle_for(VcReallocationPolicy::Atomic));
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn credit_underflow_panics() {
        let mut vc = OutVc::new(1);
        vc.consume_credit();
        vc.consume_credit();
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_panics() {
        let mut vc = OutVc::new(1);
        vc.return_credit();
    }

}
