//! Output-side VC state: credit counters, owner registers and the
//! allocation state machine.

use footprint_routing::VcReallocationPolicy;
use footprint_topology::NodeId;
use std::collections::VecDeque;

use crate::packet::{Flit, PacketId};

/// Allocation state of one output VC (the upstream view of a downstream
/// input VC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutVcState {
    /// Unowned and available for a fresh allocation.
    Idle,
    /// Allocated to a packet that is still streaming (tail not yet
    /// forwarded).
    Active(PacketId),
    /// All flits of the last packet forwarded, but the downstream buffer has
    /// not fully drained. Under the atomic policy the VC cannot be freshly
    /// reallocated in this state — but it *can* be joined by a packet to the
    /// same destination (the footprint join).
    Draining,
}

/// One output VC: the state machine plus the credit counter and the
/// destination "owner" register that Footprint routing reads (§4.4 prices
/// this register at `log2(N)` bits).
///
/// The owner register **persists** after the VC drains and is only
/// overwritten by the next allocation: this is what lets a drained VC
/// remain "the footprint VC" for its destination (the paper's Figure 3
/// example grants VC0 to successive node-A packets precisely because the
/// register still holds A after each packet drains).
#[derive(Debug, Clone)]
pub struct OutVc {
    state: OutVcState,
    owner: Option<NodeId>,
    credits: u32,
    capacity: u32,
}

impl OutVc {
    /// A fresh VC with a full credit allotment of `capacity`.
    pub fn new(capacity: u32) -> Self {
        OutVc {
            state: OutVcState::Idle,
            owner: None,
            credits: capacity,
            capacity,
        }
    }

    /// Current allocation state.
    #[inline]
    pub fn state(&self) -> OutVcState {
        self.state
    }

    /// Destination of the packets currently occupying the VC.
    #[inline]
    pub fn owner(&self) -> Option<NodeId> {
        self.owner
    }

    /// Remaining downstream buffer slots.
    #[inline]
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Downstream buffer capacity.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// `true` if a fresh (non-join) allocation is permitted under `policy`.
    pub fn idle_for(&self, policy: VcReallocationPolicy) -> bool {
        match self.state {
            OutVcState::Idle => true,
            OutVcState::Active(_) => false,
            OutVcState::Draining => policy == VcReallocationPolicy::NonAtomic,
        }
    }

    /// `true` if a packet destined to `dest` may join this VC right now:
    /// the previous tail has been forwarded, the owner matches, and at least
    /// one credit is available.
    pub fn joinable_by(&self, dest: NodeId) -> bool {
        self.state == OutVcState::Draining && self.owner == Some(dest) && self.credits > 0
    }

    /// Allocates the VC to packet `pkt` destined to `dest` (fresh grant or
    /// join).
    ///
    /// # Panics
    ///
    /// Panics if the VC is in `Active` state (a packet is still streaming).
    pub fn allocate(&mut self, pkt: PacketId, dest: NodeId) {
        assert!(
            !matches!(self.state, OutVcState::Active(_)),
            "allocating an active VC"
        );
        self.state = OutVcState::Active(pkt);
        self.owner = Some(dest);
    }

    /// Consumes one credit as a flit is committed to this VC.
    ///
    /// # Panics
    ///
    /// Panics if no credits remain (the switch allocator must gate on
    /// credits).
    pub fn consume_credit(&mut self) {
        assert!(self.credits > 0, "credit underflow");
        self.credits -= 1;
    }

    /// Marks the current packet's tail as forwarded. Under `NonAtomic` the
    /// VC becomes immediately reusable; under `Atomic` it drains first.
    pub fn tail_sent(&mut self, policy: VcReallocationPolicy) {
        debug_assert!(matches!(self.state, OutVcState::Active(_)));
        match policy {
            VcReallocationPolicy::Atomic => self.state = OutVcState::Draining,
            VcReallocationPolicy::NonAtomic => {
                // Owner persists either way (see the type-level docs).
                self.state = if self.credits == self.capacity {
                    OutVcState::Idle
                } else {
                    OutVcState::Draining
                };
            }
        }
    }

    /// Returns one credit (a downstream slot freed). May complete a drain.
    ///
    /// # Panics
    ///
    /// Panics on credit overflow (more credits returned than capacity).
    pub fn return_credit(&mut self) {
        assert!(self.credits < self.capacity, "credit overflow");
        self.credits += 1;
        if self.state == OutVcState::Draining && self.credits == self.capacity {
            // The owner register persists: the VC stays this destination's
            // footprint VC until another packet claims it.
            self.state = OutVcState::Idle;
        }
    }

    /// `true` if the VC holds no traffic and all credits are home.
    pub fn is_quiescent(&self) -> bool {
        self.state == OutVcState::Idle && self.credits == self.capacity
    }
}

/// An output port: per-VC state plus a small staging FIFO that models the
/// router's internal speedup (the crossbar can deliver up to `speedup` flits
/// per cycle into the stage; the link drains one per cycle).
#[derive(Debug)]
pub struct OutputPort {
    vcs: Vec<OutVc>,
    stage: VecDeque<Flit>,
    stage_capacity: usize,
}

impl OutputPort {
    /// Creates an output port with `num_vcs` VCs of `vc_capacity` downstream
    /// slots each and a staging FIFO of `stage_capacity` entries.
    pub fn new(num_vcs: usize, vc_capacity: u32, stage_capacity: usize) -> Self {
        OutputPort {
            vcs: (0..num_vcs).map(|_| OutVc::new(vc_capacity)).collect(),
            stage: VecDeque::with_capacity(stage_capacity),
            stage_capacity,
        }
    }

    /// The VC table.
    pub fn vcs(&self) -> &[OutVc] {
        &self.vcs
    }

    /// Mutable access to one VC.
    pub fn vc_mut(&mut self, vc: usize) -> &mut OutVc {
        &mut self.vcs[vc]
    }

    /// One VC.
    pub fn vc(&self, vc: usize) -> &OutVc {
        &self.vcs[vc]
    }

    /// Free slots in the staging FIFO.
    pub fn stage_space(&self) -> usize {
        self.stage_capacity - self.stage.len()
    }

    /// Pushes a flit that just crossed the switch.
    ///
    /// # Panics
    ///
    /// Panics if the stage is full (the switch allocator must gate on
    /// [`OutputPort::stage_space`]).
    pub fn stage_push(&mut self, flit: Flit) {
        assert!(self.stage.len() < self.stage_capacity, "stage overflow");
        self.stage.push_back(flit);
    }

    /// Pops the next flit to launch onto the link (one per cycle).
    pub fn stage_pop(&mut self) -> Option<Flit> {
        self.stage.pop_front()
    }

    /// Number of staged flits.
    pub fn staged(&self) -> usize {
        self.stage.len()
    }

    /// Iterates the staged flits, next-to-launch first (read-only; the
    /// sentinel attributes staged flits to their VCs during credit audits).
    pub fn staged_flits(&self) -> impl Iterator<Item = &Flit> {
        self.stage.iter()
    }

    /// `true` when every VC is quiescent and the stage is empty.
    pub fn is_quiescent(&self) -> bool {
        self.stage.is_empty() && self.vcs.iter().all(OutVc::is_quiescent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlitKind, PacketId};

    fn flit() -> Flit {
        Flit {
            packet: PacketId(1),
            kind: FlitKind::Single,
            src: NodeId(0),
            dest: NodeId(1),
            seq: 0,
            size: 1,
            birth: 0,
            class: 0,
            vc: 0,
        }
    }

    #[test]
    fn atomic_vc_lifecycle() {
        let mut vc = OutVc::new(2);
        assert!(vc.idle_for(VcReallocationPolicy::Atomic));
        vc.allocate(PacketId(1), NodeId(9));
        assert_eq!(vc.state(), OutVcState::Active(PacketId(1)));
        assert_eq!(vc.owner(), Some(NodeId(9)));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::Atomic);
        assert_eq!(vc.state(), OutVcState::Draining);
        // Draining is not idle under the atomic policy...
        assert!(!vc.idle_for(VcReallocationPolicy::Atomic));
        // ...but it is joinable by the same destination.
        assert!(vc.joinable_by(NodeId(9)));
        assert!(!vc.joinable_by(NodeId(8)));
        vc.return_credit();
        assert_eq!(vc.state(), OutVcState::Idle);
        assert_eq!(vc.owner(), Some(NodeId(9)), "owner register persists");
        assert!(vc.is_quiescent());
    }

    #[test]
    fn non_atomic_reallocates_before_drain() {
        let mut vc = OutVc::new(2);
        vc.allocate(PacketId(1), NodeId(9));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::NonAtomic);
        // Tail forwarded, credits outstanding → still reallocatable.
        assert!(vc.idle_for(VcReallocationPolicy::NonAtomic));
        vc.allocate(PacketId(2), NodeId(4));
        assert_eq!(vc.state(), OutVcState::Active(PacketId(2)));
        assert_eq!(vc.owner(), Some(NodeId(4)));
    }

    #[test]
    fn join_reactivates_draining_vc() {
        let mut vc = OutVc::new(2);
        vc.allocate(PacketId(1), NodeId(9));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::Atomic);
        assert!(vc.joinable_by(NodeId(9)));
        vc.allocate(PacketId(2), NodeId(9)); // the footprint join
        assert_eq!(vc.state(), OutVcState::Active(PacketId(2)));
        assert_eq!(vc.owner(), Some(NodeId(9)));
    }

    #[test]
    fn join_requires_credits() {
        let mut vc = OutVc::new(1);
        vc.allocate(PacketId(1), NodeId(9));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::Atomic);
        assert!(!vc.joinable_by(NodeId(9)), "no credits → not joinable");
        vc.return_credit();
        // Credit return completed the drain → idle, not joinable.
        assert!(!vc.joinable_by(NodeId(9)));
        assert!(vc.idle_for(VcReallocationPolicy::Atomic));
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn credit_underflow_panics() {
        let mut vc = OutVc::new(1);
        vc.consume_credit();
        vc.consume_credit();
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_panics() {
        let mut vc = OutVc::new(1);
        vc.return_credit();
    }

    #[test]
    fn stage_respects_capacity_and_order() {
        let mut port = OutputPort::new(2, 4, 2);
        assert_eq!(port.stage_space(), 2);
        let mut f1 = flit();
        f1.seq = 0;
        let mut f2 = flit();
        f2.seq = 1;
        port.stage_push(f1);
        port.stage_push(f2);
        assert_eq!(port.stage_space(), 0);
        assert_eq!(port.stage_pop().unwrap().seq, 0);
        assert_eq!(port.stage_pop().unwrap().seq, 1);
        assert!(port.stage_pop().is_none());
        assert!(port.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "stage overflow")]
    fn stage_overflow_panics() {
        let mut port = OutputPort::new(1, 4, 1);
        port.stage_push(flit());
        port.stage_push(flit());
    }
}
