//! The complete simulated network: routers, endpoints, wires and the cycle
//! loop.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use crate::config::{ConfigError, SimConfig};
use crate::endpoint::{Sink, Source};
use crate::fault::{FaultState, FaultView, UnreachablePolicy};
use crate::metrics::{Metrics, NullProbe, Probe};
use crate::packet::{NewPacket, PacketId};
use crate::recovery::RecoveryTracker;
use crate::router::{FreedSlot, Router};
use crate::sched::{SchedState, Scheduler};
use crate::sideband::Sideband;
use crate::soa::NocSoa;
use crate::wire::{CreditMsg, Wire};
use crate::workload::Workload;
use footprint_routing::{dbar_threshold, RoutingAlgorithm, WrapStrategy};
use footprint_topology::{AnyTopology, FaultPlan, NodeId, Port, DIRECTIONS, PORT_COUNT};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Splitmix64 finalizer — the jitter mixer for retry backoff. Kept local:
/// retry timing must be a pure function of `(seed, packet, attempt)`,
/// never a draw from the simulation's shared RNG stream.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generated packet parked by [`UnreachablePolicy::Retry`], waiting for
/// its next reachability check.
#[derive(Debug, Clone)]
struct RetryEntry {
    ready_at: u64,
    node: NodeId,
    id: PacketId,
    packet: NewPacket,
    birth: u64,
    attempts: u32,
}

/// Snapshot of one occupied input VC, used for congestion-tree analysis
/// (Figure 2 / Figure 4 style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupiedVcEntry {
    /// Router holding the flits.
    pub node: NodeId,
    /// Input port of that router.
    pub in_port: Port,
    /// VC index.
    pub vc: u8,
    /// Destinations of the buffered flits, in FIFO order.
    pub dests: Vec<NodeId>,
}

/// A cycle-accurate simulated network on any [`AnyTopology`] fabric.
///
/// Construction wires up one router, one source and one sink per node, with
/// fixed-latency links (single-cycle by default) and credit-based flow
/// control throughout (the injection and ejection channels use the same
/// machinery as inter-router channels, as in BookSim).
pub struct Network {
    cfg: SimConfig,
    /// The live topology resolved from `cfg.topology` at construction.
    topo: AnyTopology,
    algo: Box<dyn RoutingAlgorithm>,
    /// The struct-of-arrays datapath state all routers operate on.
    soa: NocSoa,
    routers: Vec<Router>,
    sources: Vec<Source>,
    sinks: Vec<Sink>,
    /// Source → router-local-input channels, one per node.
    inj_wires: Vec<Wire>,
    /// Router output channels, indexed `node * PORT_COUNT + port`.
    /// `port == 0` is the ejection channel (always present); direction
    /// ports exist only where the topology has a neighbor (wrapping
    /// fabrics have all four).
    out_wires: Vec<Option<Wire>>,
    sideband: Sideband,
    /// Flits launched per output channel (`node * PORT_COUNT + port`), for
    /// utilization analysis.
    link_flits: Vec<u64>,
    rng: SmallRng,
    cycle: u64,
    next_packet: u64,
    metrics: Metrics,
    freed_scratch: Vec<FreedSlot>,
    faults: FaultState,
    policy: UnreachablePolicy,
    retries: VecDeque<RetryEntry>,
    /// The construction seed, kept for seed-derived retry jitter (the
    /// shared RNG cannot be used: a jitter draw would shift every
    /// subsequent Bernoulli sample and break the empty-plan bit-identity).
    seed: u64,
    /// Recovery observation (TTR + availability); driven only when the
    /// run has a fault plan.
    recovery: RecoveryTracker,
    /// `true` when a fault plan is present: gates all recovery tracking.
    track_recovery: bool,
    /// Source/destination pairs observed unreachable at generation time.
    unreachable: BTreeSet<(u16, u16)>,
    /// Which cycle loop runs: dense (every component, every cycle) or the
    /// active-set walk. Bit-identical either way.
    scheduler: Scheduler,
    /// Per-node activity state for the active-set scheduler, maintained in
    /// both modes so the scheduler can be switched mid-run.
    sched: SchedState,
    /// Set by white-box router access; forces the activity state to be
    /// rebuilt from actual component state at the next step.
    sched_resync_pending: bool,
}

impl Network {
    /// Builds a network.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations, including too
    /// few VCs for a Duato-based routing algorithm (escape + adaptive needs
    /// at least 2).
    pub fn new(
        cfg: SimConfig,
        algo: Box<dyn RoutingAlgorithm>,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        Self::with_faults(cfg, algo, seed, FaultPlan::new(), UnreachablePolicy::Drop)
    }

    /// Builds a network with a fault schedule and an unreachable-packet
    /// policy. An empty plan behaves exactly like [`Network::new`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations or a fault plan
    /// that does not fit the topology.
    pub fn with_faults(
        cfg: SimConfig,
        algo: Box<dyn RoutingAlgorithm>,
        seed: u64,
        plan: FaultPlan,
        policy: UnreachablePolicy,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let topo = cfg.topo();
        plan.validate(topo)?;
        if topo.wraps() && algo.wrap_strategy() == WrapStrategy::Unsupported {
            return Err(ConfigError::UnsupportedRouting {
                algorithm: algo.name(),
                topology: cfg.topology,
            });
        }
        let required = algo.min_vcs_on(topo);
        if cfg.num_vcs < required {
            return Err(ConfigError::TooFewVcsForRouting {
                algorithm: algo.name(),
                required,
                configured: cfg.num_vcs,
            });
        }
        let n = topo.len();
        let soa = NocSoa::new(n, cfg.num_vcs, cfg.vc_buffer_depth, cfg.speedup);
        let routers = topo
            .nodes()
            .map(|node| Router::new(node, cfg.num_vcs))
            .collect();
        let sources = topo
            .nodes()
            .map(|node| Source::new(node, cfg.num_vcs, crate::cast::idx_u32(cfg.vc_buffer_depth)))
            .collect();
        let sinks = topo
            .nodes()
            .map(|node| Sink::new(node, cfg.num_vcs, cfg.vc_buffer_depth))
            .collect();
        let mut out_wires: Vec<Option<Wire>> = Vec::with_capacity(n * PORT_COUNT);
        for node in topo.nodes() {
            for port in 0..PORT_COUNT {
                let wire = match Port::from_index(port) {
                    Port::Local => Some(Wire::with_latency(cfg.link_latency)),
                    Port::Dir(d) => topo
                        .neighbor(node, d)
                        .map(|_| Wire::with_latency(cfg.link_latency)),
                };
                out_wires.push(wire);
            }
        }
        Ok(Network {
            topo,
            algo,
            soa,
            routers,
            sources,
            sinks,
            inj_wires: (0..n)
                .map(|_| Wire::with_latency(cfg.link_latency))
                .collect(),
            out_wires,
            link_flits: vec![0; n * PORT_COUNT],
            sideband: Sideband::new(n, dbar_threshold(cfg.num_vcs)),
            rng: SmallRng::seed_from_u64(seed),
            cycle: 0,
            next_packet: 0,
            metrics: Metrics::new(),
            freed_scratch: Vec::new(),
            track_recovery: !plan.is_empty(),
            faults: FaultState::new(topo, plan),
            policy,
            retries: VecDeque::new(),
            seed,
            recovery: RecoveryTracker::new(),
            unreachable: BTreeSet::new(),
            scheduler: Scheduler::default(),
            sched: SchedState::new(n),
            sched_resync_pending: false,
            cfg,
        })
    }

    /// The cycle loop in use.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Selects the cycle loop. Safe to call mid-run: the activity
    /// bookkeeping runs in both modes, so the active-set state is always
    /// current. Results are bit-identical under either scheduler.
    pub fn set_scheduler(&mut self, scheduler: Scheduler) {
        self.scheduler = scheduler;
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The live topology the network runs on.
    pub fn topo(&self) -> AnyTopology {
        self.topo
    }

    /// The routing algorithm in use.
    pub fn algorithm(&self) -> &dyn RoutingAlgorithm {
        &*self.algo
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Measurement counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable measurement counters (e.g. to reset the window).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    #[inline]
    fn wire_idx(node: NodeId, port: usize) -> usize {
        node.index() * PORT_COUNT + port
    }

    /// Advances one cycle with [`NullProbe`].
    pub fn step(&mut self, workload: &mut dyn Workload) {
        self.step_probed(workload, &mut NullProbe);
    }

    /// Advances one cycle, reporting events to `probe`.
    ///
    /// Both schedulers run the same stage sequence; the active-set walk
    /// merely restricts stages 1, 2, 5 and 6 to the components with work.
    /// Skipped components are exact no-ops under the dense loop (see
    /// [`crate::sched`] for the argument), so the two modes are
    /// bit-identical.
    pub fn step_probed(&mut self, workload: &mut dyn Workload, probe: &mut dyn Probe) {
        if self.sched_resync_pending {
            self.sched_resync_pending = false;
            self.sched
                .resync(&mut self.routers, &self.soa, &self.sinks, self.cycle);
        }
        let topo = self.topo;
        probe.cycle_start(self.cycle);

        // 0. Scheduled fault onsets/repairs take effect at the cycle
        //    boundary (free for an empty plan). Any mask change forces a
        //    full tick: onsets act on in-flight traffic immediately, and
        //    repairs re-arm routers that idled behind a dead channel.
        let fault_change = self.faults.advance(self.cycle);
        if fault_change
            && self.track_recovery
            && self
                .faults
                .plan()
                .events()
                .iter()
                .any(|e| e.until == Some(self.cycle))
        {
            self.recovery.on_repair(self.cycle);
        }
        let full = self.scheduler == Scheduler::Dense
            || fault_change
            || probe.wants_full_tick(self.cycle);

        // 1. Wires advance: flits/credits sent last cycle become visible.
        //    Quiescent wires are skipped (ticking them is a no-op); wires
        //    with receivable content mark their receiving node for the
        //    delivery stage.
        self.sched.deliver.clear();
        for (ni, w) in self.inj_wires.iter_mut().enumerate() {
            if w.is_quiescent() {
                continue;
            }
            w.tick();
            if w.flits.receivable() || w.credits.receivable() {
                self.sched.deliver.insert(ni);
            }
        }
        for node in topo.nodes() {
            let ni = node.index();
            for port in 0..PORT_COUNT {
                let Some(w) = self.out_wires[Self::wire_idx(node, port)].as_mut() else {
                    continue;
                };
                if w.is_quiescent() {
                    continue;
                }
                w.tick();
                // Credits return to this node's router; flits travel to
                // the sink (Local) or the downstream neighbor.
                if w.credits.receivable() {
                    self.sched.deliver.insert(ni);
                }
                if w.flits.receivable() {
                    match Port::from_index(port) {
                        Port::Local => self.sched.deliver.insert(ni),
                        Port::Dir(d) => {
                            let nb = topo.neighbor(node, d).expect("wire toward neighbor");
                            self.sched.deliver.insert(nb.index());
                        }
                    }
                }
            }
        }

        // 2. Deliveries, in ascending node order (the dense visit order).
        let mut order = std::mem::take(&mut self.sched.scratch);
        order.clear();
        if full {
            order.extend(0..topo.len());
        } else {
            self.sched.deliver.collect_into(&mut order);
        }
        for &ni in &order {
            let node = NodeId(crate::cast::idx_u16(ni));
            // Draining an empty pipe is a no-op, so every drain below is
            // gated on `receivable` — the dense loop visits every node, and
            // most of its wires carry nothing in a given cycle.
            // Source receives credits from the router's local input.
            if self.inj_wires[ni].credits.receivable() {
                for c in self.inj_wires[ni].credits.drain() {
                    self.sources[ni].return_credit(c.vc);
                }
            }
            // Router local input receives injected flits.
            let mut arrived: u32 = 0;
            if self.inj_wires[ni].flits.receivable() {
                for f in self.inj_wires[ni].flits.drain() {
                    let vc = f.vc as usize;
                    let ivc = self.soa.ivc(node, Port::Local.index(), vc);
                    self.soa.in_push(ivc, f);
                    arrived += 1;
                }
            }
            // Router outputs receive returned credits; the sink receives
            // ejected flits.
            for port in 0..PORT_COUNT {
                let Some(w) = self.out_wires[Self::wire_idx(node, port)].as_mut() else {
                    continue;
                };
                if w.credits.receivable() {
                    for c in w.credits.drain() {
                        let ivc = self.soa.ivc(node, port, c.vc as usize);
                        self.soa.out_return_credit(ivc);
                    }
                }
                if port == Port::Local.index() && w.flits.receivable() {
                    for f in w.flits.drain() {
                        self.sinks[ni].push(f);
                        self.sched.sink_live.insert(ni);
                    }
                }
            }
            // Router direction inputs receive flits from upstream routers.
            for d in DIRECTIONS {
                let Some(nb) = topo.neighbor(node, d) else {
                    continue;
                };
                let upstream = Self::wire_idx(nb, Port::Dir(d.opposite()).index());
                let w = self.out_wires[upstream]
                    .as_mut()
                    .expect("symmetric neighbor wire");
                if !w.flits.receivable() {
                    continue;
                }
                for f in w.flits.drain() {
                    let vc = f.vc as usize;
                    let ivc = self.soa.ivc(node, Port::Dir(d).index(), vc);
                    self.soa.in_push(ivc, f);
                    arrived += 1;
                }
            }
            if arrived > 0 {
                // Flit arrivals wake the router and dirty its occupancy
                // as seen by the side band.
                self.sched.router_work[ni] += arrived;
                self.sched.live.insert(ni);
                self.sched.sideband_dirty.insert(ni);
            }
        }

        // 3. Side-band congestion state (one-cycle-old view). A full tick
        //    recomputes everything; otherwise only the bits fed by routers
        //    whose input occupancy changed since the last refresh.
        if full {
            self.sideband.update(topo, &self.soa);
            self.sched.sideband_dirty.clear();
        } else {
            order.clear();
            self.sched.sideband_dirty.collect_into(&mut order);
            for &ni in &order {
                self.sideband
                    .refresh_from(topo, &self.soa, NodeId(crate::cast::idx_u16(ni)));
            }
            self.sched.sideband_dirty.clear();
        }

        // 4. Packet generation and source injection. Parked retries are
        //    re-checked first (FIFO) so their order relative to fresh
        //    generation is deterministic. A mask change re-checks *every*
        //    parked entry, not just the due ones: a repair re-admits its
        //    quarantined pairs the cycle it lands — including a packet
        //    whose backoff expires that same cycle — while entries still
        //    unreachable keep their schedule and burn no attempt.
        let faulty = self.faults.any_active();
        if !self.retries.is_empty() {
            let pending = self.retries.len();
            for _ in 0..pending {
                let entry = self.retries.pop_front().expect("counted above");
                let due = entry.ready_at <= self.cycle;
                if due || fault_change {
                    if self
                        .faults
                        .deliverable(&*self.algo, entry.node, entry.packet.dest)
                    {
                        self.sources[entry.node.index()].enqueue(
                            entry.id,
                            entry.packet,
                            entry.birth,
                        );
                        continue;
                    }
                    if due {
                        self.park_or_drop(
                            entry.node,
                            entry.id,
                            entry.packet,
                            entry.birth,
                            entry.attempts,
                        );
                        continue;
                    }
                }
                self.retries.push_back(entry);
            }
        }
        // Packet generation can never be skipped: the Bernoulli draw per
        // node per cycle comes from the shared RNG, so the loop stays
        // dense in every mode. Idle sources (nothing queued, no VC held)
        // return before any RNG draw, so their step may be skipped.
        for node in topo.nodes() {
            let ni = node.index();
            if let Some(np) = workload.generate(node, self.cycle, &mut self.rng) {
                debug_assert!(np.size > 0, "packets must have at least one flit");
                // Workloads that replay recorded traffic carry the cycle
                // the packet was *meant* to enter the network; backlogged
                // injection then shows up as source-queue latency.
                let birth = np.origin.unwrap_or(self.cycle);
                debug_assert!(birth <= self.cycle, "packets cannot be born in the future");
                let id = PacketId(self.next_packet);
                self.next_packet += 1;
                self.metrics.record_generated(np.class, np.size);
                probe.packet_generated(node, &np, self.cycle);
                if faulty && !self.faults.deliverable(&*self.algo, node, np.dest) {
                    self.unreachable.insert((node.0, np.dest.0));
                    self.park_or_drop(node, id, np, birth, 0);
                } else {
                    self.sources[ni].enqueue(id, np, birth);
                }
            }
            if full || !self.sources[ni].is_idle() {
                self.sources[ni].step(
                    &*self.algo,
                    topo,
                    &self.sideband,
                    &FaultView::new(&self.faults, &*self.algo),
                    &mut self.rng,
                    &mut self.inj_wires[ni],
                    probe,
                );
            }
        }

        // 5. Routers: launch previously staged flits, then VA, then SA.
        // Dead output channels launch nothing; degraded channels launch on
        // their period. Credits keep flowing regardless (the credit
        // side-band is modeled as reliable), so repaired links resume
        // cleanly with a consistent credit count.
        let policy = self.algo.policy();
        order.clear();
        if full {
            order.extend(0..topo.len());
        } else {
            self.sched.live.collect_into(&mut order);
        }
        for &ni in &order {
            let node = NodeId(crate::cast::idx_u16(ni));
            // Catch the switch arbiters up over the cycles this router was
            // skipped: the dense loop rotates them unconditionally every
            // cycle, and arbitration must resume exactly where it would be.
            let lag = self.cycle.saturating_sub(self.sched.next_expected[ni]);
            if lag > 0 {
                self.routers[ni].advance_arbiters(lag);
            }
            self.sched.next_expected[ni] = self.cycle + 1;
            for port in 0..PORT_COUNT {
                // Nothing staged means nothing to launch: skip the wire and
                // fault checks entirely (`launch_allowed` is pure).
                if self.soa.staged(self.soa.np(node, port)) == 0 {
                    continue;
                }
                let wi = Self::wire_idx(node, port);
                if self.out_wires[wi].is_some()
                    && self.faults.launch_allowed(node, port, self.cycle)
                {
                    if let Some(f) = self.routers[ni].launch(&mut self.soa, port) {
                        self.link_flits[wi] += 1;
                        self.out_wires[wi].as_mut().unwrap().flits.push(f);
                        self.sched.router_work[ni] =
                            self.sched.router_work[ni].saturating_sub(1);
                    }
                }
            }
            self.routers[ni].vc_allocate(
                &mut self.soa,
                &*self.algo,
                topo,
                &self.sideband,
                &FaultView::new(&self.faults, &*self.algo),
                &mut self.rng,
                &mut self.metrics,
                probe,
            );
            let mut freed = std::mem::take(&mut self.freed_scratch);
            freed.clear();
            self.routers[ni].switch_allocate(
                &mut self.soa,
                policy,
                self.cfg.speedup,
                &mut freed,
                probe,
            );
            if !freed.is_empty() {
                // Switch traversal drained input slots: the occupancy the
                // side band reads from this router changed.
                self.sched.sideband_dirty.insert(ni);
            }
            for slot in &freed {
                let credit = CreditMsg { vc: slot.vc };
                match Port::from_index(slot.in_port) {
                    Port::Local => self.inj_wires[ni].credits.push(credit),
                    Port::Dir(d) => {
                        let nb = topo.neighbor(node, d).expect("flit arrived from neighbor");
                        let upstream = Self::wire_idx(nb, Port::Dir(d.opposite()).index());
                        self.out_wires[upstream]
                            .as_mut()
                            .expect("symmetric neighbor wire")
                            .credits
                            .push(credit);
                    }
                }
            }
            self.freed_scratch = freed;
            if self.sched.router_work[ni] == 0 {
                // Nothing resident: the router is an exact no-op until the
                // next flit arrival re-arms it.
                self.sched.live.remove(ni);
            }
        }

        // 6. Sinks consume at the endpoint ejection bandwidth.
        order.clear();
        if full {
            order.extend(0..topo.len());
        } else {
            self.sched.sink_live.collect_into(&mut order);
        }
        for &ni in &order {
            let node = NodeId(crate::cast::idx_u16(ni));
            if let Some(credit) = self.sinks[ni].step(self.cycle, &mut self.metrics, probe) {
                self.out_wires[Self::wire_idx(node, Port::Local.index())]
                    .as_mut()
                    .expect("ejection wire")
                    .credits
                    .push(credit);
            }
            if self.sinks[ni].buffered() == 0 {
                self.sched.sink_live.remove(ni);
            }
        }
        self.sched.scratch = order;

        // 7. Cycle bookkeeping. Recovery tracking is pure observation
        //    (no RNG draws, no feedback into routing), driven only for
        //    faulted runs.
        if self.track_recovery {
            let t = self.metrics.total();
            self.recovery.tick(
                self.cycle,
                t.generated_packets,
                t.ejected_packets,
                self.retries.is_empty(),
            );
        }
        self.metrics.cycles += 1;
        probe.sample(self.cycle, self);
        probe.cycle_end(self.cycle);
        self.cycle += 1;
    }

    /// Disposes of an unreachable packet according to the configured
    /// policy: park it for another attempt, or drop it with accounting.
    /// `attempts` counts the checks already made for this packet.
    ///
    /// Retry delays grow exponentially — `backoff << attempts`, capped at
    /// 64× the base so a long outage cannot push wake-ups past the run —
    /// plus a deterministic jitter in `[0, backoff)` derived from the run
    /// seed, the packet id and the attempt number. The jitter decorrelates
    /// the retry herd after a repair without touching the shared RNG, so
    /// retry timing is a pure function of the run's inputs: bit-identical
    /// at any worker count and under either scheduler.
    fn park_or_drop(
        &mut self,
        node: NodeId,
        id: PacketId,
        packet: NewPacket,
        birth: u64,
        attempts: u32,
    ) {
        if let UnreachablePolicy::Retry {
            max_attempts,
            backoff,
        } = self.policy
        {
            if attempts + 1 < max_attempts {
                let base = backoff.max(1);
                let step = base.saturating_mul(1u64 << attempts.min(6));
                let jitter = splitmix64(
                    self.seed ^ id.0.rotate_left(17) ^ u64::from(attempts).rotate_left(41),
                ) % base;
                self.metrics.record_retry(packet.class);
                self.retries.push_back(RetryEntry {
                    ready_at: self.cycle.saturating_add(step).saturating_add(jitter),
                    node,
                    id,
                    packet,
                    birth,
                    attempts: attempts + 1,
                });
                return;
            }
        }
        self.metrics.record_dropped(packet.class, packet.size);
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, workload: &mut dyn Workload, cycles: u64) {
        for _ in 0..cycles {
            self.step(workload);
        }
    }

    /// Runs `cycles` cycles with a probe attached.
    pub fn run_probed(
        &mut self,
        workload: &mut dyn Workload,
        cycles: u64,
        probe: &mut dyn Probe,
    ) {
        for _ in 0..cycles {
            self.step_probed(workload, probe);
        }
    }

    /// Runs `cycles` cycles under a stall watchdog (with an additional
    /// probe attached; pass [`NullProbe`] if none is needed).
    ///
    /// The watchdog observes every flit movement; the cycle after it trips,
    /// the run stops and returns the full diagnostic bundle instead of
    /// spinning to the cycle limit — turning a hung sweep into an artifact
    /// that names the stuck routers and packets.
    ///
    /// # Errors
    ///
    /// Returns the [`StallDiagnostic`](crate::observe::StallDiagnostic)
    /// when no flit has moved for the watchdog's threshold while packets
    /// were in flight.
    pub fn run_watched(
        &mut self,
        workload: &mut dyn Workload,
        cycles: u64,
        probe: &mut dyn Probe,
        watchdog: &mut crate::observe::StallWatchdog,
    ) -> Result<(), Box<crate::observe::StallDiagnostic>> {
        for _ in 0..cycles {
            {
                let mut pair = crate::observe::ProbePair::new(watchdog, probe);
                self.step_probed(workload, &mut pair);
            }
            if watchdog.stalled() {
                return Err(Box::new(watchdog.diagnose(self)));
            }
        }
        Ok(())
    }

    /// `true` when nothing is in flight anywhere: wires, routers, sources
    /// and sinks are all empty. Used by drain phases and deadlock checks.
    pub fn is_quiescent(&self) -> bool {
        self.inj_wires.iter().all(Wire::is_quiescent)
            && self
                .out_wires
                .iter()
                .flatten()
                .all(Wire::is_quiescent)
            && self.routers.iter().all(|r| r.is_quiescent(&self.soa))
            && self.sources.iter().all(Source::is_quiescent)
            && self.sinks.iter().all(Sink::is_quiescent)
            && self.retries.is_empty()
    }

    /// Serializes the complete dynamic state of a fault-free network —
    /// cycle counter, packet-id counter, RNG stream, every flit, buffer,
    /// credit, arbiter pointer and wire stage — for warm-start restore via
    /// [`Network::restore`].
    ///
    /// **Not** serialized, by argument rather than accident:
    ///
    /// * metrics — the warm-start consumer resets the window at the
    ///   restore boundary on both the cold and the warm path;
    /// * the congestion side band and the active-set live sets — restore
    ///   schedules a full resync, which recomputes them from the restored
    ///   datapath before the next cycle reads them (and recomputation is
    ///   exact wherever the incremental path would have kept a cached
    ///   value, so the two paths stay bit-identical);
    /// * per-cycle scratch buffers.
    ///
    /// # Errors
    ///
    /// Returns an error when the network runs under a fault plan or holds
    /// parked retries — fault/recovery/retry state is deliberately outside
    /// the snapshot inventory, so such a network must not be checkpointed.
    pub fn snapshot(&self) -> Result<Vec<u8>, String> {
        if self.track_recovery || !self.retries.is_empty() || !self.unreachable.is_empty() {
            return Err("snapshots require a fault-free network".into());
        }
        let mut w = crate::snapshot::SnapWriter::new();
        w.usize(self.topo.len());
        w.usize(self.cfg.num_vcs);
        w.usize(self.cfg.vc_buffer_depth);
        w.u64(self.cycle);
        w.u64(self.next_packet);
        for s in self.rng.state() {
            w.u64(s);
        }
        self.soa.snapshot_write(&mut w);
        for r in &self.routers {
            r.snapshot_write(&mut w);
        }
        for s in &self.sources {
            s.snapshot_write(&mut w);
        }
        for s in &self.sinks {
            s.snapshot_write(&mut w);
        }
        for wire in &self.inj_wires {
            wire.snapshot_write(&mut w);
        }
        for wire in self.out_wires.iter().flatten() {
            wire.snapshot_write(&mut w);
        }
        for &lf in &self.link_flits {
            w.u64(lf);
        }
        for &ne in &self.sched.next_expected {
            w.u64(ne);
        }
        Ok(w.into_bytes())
    }

    /// Restores a [`Network::snapshot`] image into this network, which
    /// must have been built with the same configuration (geometry echoes
    /// are validated; the caller's cache key must bind everything else —
    /// routing algorithm, traffic, seed). Metrics are cleared; the next
    /// step resyncs the scheduler's activity state and the congestion
    /// side band from the restored datapath.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the network in an unspecified but
    /// rebuild-able state — callers should discard it and run cold) when
    /// the image is truncated, corrupt or from a different geometry.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        if self.track_recovery {
            return Err("cannot restore into a faulted network".into());
        }
        let mut r = crate::snapshot::SnapReader::new(bytes);
        r.expect_usize(self.topo.len(), "node count")?;
        r.expect_usize(self.cfg.num_vcs, "VC count")?;
        r.expect_usize(self.cfg.vc_buffer_depth, "buffer depth")?;
        self.cycle = r.u64()?;
        self.next_packet = r.u64()?;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = r.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        self.soa.snapshot_read(&mut r)?;
        for router in &mut self.routers {
            router.snapshot_read(&mut r)?;
        }
        for src in &mut self.sources {
            src.snapshot_read(&mut r)?;
        }
        for sink in &mut self.sinks {
            sink.snapshot_read(&mut r)?;
        }
        for wire in &mut self.inj_wires {
            wire.snapshot_read(&mut r)?;
        }
        for wire in self.out_wires.iter_mut().flatten() {
            wire.snapshot_read(&mut r)?;
        }
        for lf in &mut self.link_flits {
            *lf = r.u64()?;
        }
        for ne in &mut self.sched.next_expected {
            *ne = r.u64()?;
        }
        r.done()?;
        self.metrics = Metrics::new();
        self.sched_resync_pending = true;
        Ok(())
    }

    /// The live fault state derived from the network's fault plan.
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// Recovery observations for this run (TTR and availability windows).
    /// Empty for a run without a fault plan.
    pub fn recovery(&self) -> &RecoveryTracker {
        &self.recovery
    }

    /// The configured disposition for unreachable packets.
    pub fn unreachable_policy(&self) -> UnreachablePolicy {
        self.policy
    }

    /// Packets currently parked awaiting a retry.
    pub fn parked_retries(&self) -> usize {
        self.retries.len()
    }

    /// Every `(src, dest)` pair observed unreachable at generation time so
    /// far, in sorted order. Empty for a fault-free run.
    pub fn unreachable_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.unreachable
            .iter()
            .map(|&(s, d)| (NodeId(s), NodeId(d)))
            .collect()
    }

    /// Total packets waiting in source queues.
    pub fn source_backlog(&self) -> usize {
        self.sources.iter().map(Source::backlog).sum()
    }

    /// Snapshot of every input VC currently holding flits, with the
    /// destinations of the buffered flits — the raw material for
    /// congestion-tree analysis in `footprint-stats`.
    pub fn occupancy_snapshot(&self) -> Vec<OccupiedVcEntry> {
        let mut entries = Vec::new();
        self.occupancy_snapshot_into(&mut entries);
        entries
    }

    /// Writes the occupancy snapshot into `out`, reusing its entries (and
    /// their inner `dests` buffers) from the previous sample. Periodic
    /// samplers (`fig2`, `fig9` timelines) call this every interval, so
    /// after the first sample the steady state allocates nothing beyond
    /// occasional capacity growth.
    pub fn occupancy_snapshot_into(&self, out: &mut Vec<OccupiedVcEntry>) {
        let mut used = 0;
        for node in self.topo.nodes() {
            // Ports whose input FIFOs are all empty contribute nothing; the
            // O(1) occupancy sideband skips them without scanning VCs.
            for pi in 0..PORT_COUNT {
                if self.soa.in_occupied(self.soa.np(node, pi)) == 0 {
                    continue;
                }
                let port = self.soa.input(node, pi);
                for vi in 0..self.cfg.num_vcs {
                    let vc = port.vc(vi);
                    if vc.is_empty() {
                        continue;
                    }
                    if used < out.len() {
                        let e = &mut out[used];
                        e.node = node;
                        e.in_port = Port::from_index(pi);
                        e.vc = crate::cast::vc_u8(vi);
                        e.dests.clear();
                        vc.dests_into(&mut e.dests);
                    } else {
                        let mut dests = Vec::new();
                        vc.dests_into(&mut dests);
                        out.push(OccupiedVcEntry {
                            node,
                            in_port: Port::from_index(pi),
                            vc: crate::cast::vc_u8(vi),
                            dests,
                        });
                    }
                    used += 1;
                }
            }
        }
        out.truncate(used);
    }

    /// Direct read access to a router (tests and white-box analysis).
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// Direct read access to the struct-of-arrays datapath state (tests,
    /// sentinel, white-box analysis).
    pub fn datapath(&self) -> &NocSoa {
        &self.soa
    }

    /// Direct mutable access to the struct-of-arrays datapath state.
    ///
    /// This is a white-box testing hook: the sentinel's negative tests use
    /// it to corrupt credit counters or plant counterfeit flits and verify
    /// the violation is caught. Production code never needs it.
    ///
    /// Mutating the datapath behind the scheduler's back invalidates the
    /// active-set bookkeeping, so the next step rebuilds it from actual
    /// component state before running.
    #[doc(hidden)]
    pub fn datapath_mut(&mut self) -> &mut NocSoa {
        self.sched_resync_pending = true;
        &mut self.soa
    }

    /// All sources, in node-index order (sentinel census).
    pub(crate) fn sources(&self) -> &[Source] {
        &self.sources
    }

    /// All sinks, in node-index order (sentinel census).
    pub(crate) fn sinks(&self) -> &[Sink] {
        &self.sinks
    }

    /// The source→router injection wires, in node-index order.
    pub(crate) fn inj_wires(&self) -> &[Wire] {
        &self.inj_wires
    }

    /// The output wire of `node`'s port `port`, if that channel exists.
    pub(crate) fn out_wire(&self, node: NodeId, port: usize) -> Option<&Wire> {
        self.out_wires[Self::wire_idx(node, port)].as_ref()
    }

    /// The side-band congestion view (one-cycle-old, as routing sees it).
    pub(crate) fn sideband(&self) -> &Sideband {
        &self.sideband
    }

    /// A routing-facing view of the live fault masks.
    pub(crate) fn fault_view(&self) -> FaultView<'_> {
        FaultView::new(&self.faults, &*self.algo)
    }

    /// Flits launched on each output channel since construction, as
    /// `(node, port, flits)` triples — the raw material for link-utilization
    /// analysis. Channels that do not exist (mesh edges) are omitted;
    /// wrapping fabrics report every direction port.
    pub fn channel_loads(&self) -> Vec<(NodeId, Port, u64)> {
        let mut loads = Vec::new();
        for node in self.topo.nodes() {
            for port in 0..PORT_COUNT {
                let wi = Self::wire_idx(node, port);
                if self.out_wires[wi].is_some() {
                    loads.push((node, Port::from_index(port), self.link_flits[wi]));
                }
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{NoTraffic, SingleFlow};
    use footprint_routing::{Dor, Footprint, RoutingSpec};

    fn build(spec: RoutingSpec) -> Network {
        Network::new(SimConfig::small(), spec.build(), 42).unwrap()
    }

    #[test]
    fn empty_network_stays_quiescent() {
        let mut net = build(RoutingSpec::Dor);
        net.run(&mut NoTraffic, 50);
        assert!(net.is_quiescent());
        assert_eq!(net.metrics().total().ejected_packets, 0);
        assert_eq!(net.cycle(), 50);
    }

    #[test]
    fn single_packet_reaches_destination_under_all_algorithms() {
        for spec in RoutingSpec::PAPER_SET {
            let mut net = build(spec);
            let mut wl = crate::workload::FlowSet::new(vec![SingleFlow {
                src: NodeId(0),
                dest: NodeId(15),
                rate: 1.0,
                size: 1,
            }]);
            // One cycle of generation, then drain.
            net.step(&mut wl);
            let mut none = NoTraffic;
            net.run(&mut none, 100);
            let m = net.metrics().total();
            assert!(
                m.ejected_packets >= 1,
                "{}: no packet delivered",
                spec.name()
            );
            assert!(net.is_quiescent(), "{}: not drained", spec.name());
        }
    }

    #[test]
    fn continuous_flow_is_delivered_loss_free() {
        let mut net = build(RoutingSpec::Footprint);
        let mut wl = crate::workload::FlowSet::new(vec![SingleFlow {
            src: NodeId(0),
            dest: NodeId(15),
            rate: 0.5,
            size: 1,
        }]);
        net.run(&mut wl, 1000);
        let mut none = NoTraffic;
        net.run(&mut none, 500);
        assert!(net.is_quiescent(), "flow did not drain");
        let m = net.metrics().total();
        assert_eq!(m.generated_packets, m.ejected_packets);
        assert!(m.generated_packets > 300, "got {}", m.generated_packets);
    }

    #[test]
    fn multiflit_packets_arrive_intact() {
        let mut net = build(RoutingSpec::Footprint);
        let mut wl = crate::workload::FlowSet::new(vec![SingleFlow {
            src: NodeId(3),
            dest: NodeId(12),
            rate: 0.6,
            size: 4,
        }]);
        net.run(&mut wl, 600);
        let mut none = NoTraffic;
        net.run(&mut none, 400);
        assert!(net.is_quiescent());
        let m = net.metrics().total();
        assert_eq!(m.generated_packets, m.ejected_packets);
        assert_eq!(m.ejected_flits, 4 * m.ejected_packets);
    }

    #[test]
    fn rejects_single_vc_for_duato_routing() {
        let mut cfg = SimConfig::small();
        cfg.num_vcs = 1;
        let err = match Network::new(cfg, Box::new(Footprint::new()), 1) {
            Err(e) => e,
            Ok(_) => panic!("expected a configuration error"),
        };
        assert!(matches!(err, ConfigError::TooFewVcsForRouting { .. }));
        // DOR is fine with a single VC.
        assert!(Network::new(cfg, Box::new(Dor), 1).is_ok());
    }

    #[test]
    fn oversubscribed_endpoint_backs_up_but_keeps_delivering() {
        let mut net = build(RoutingSpec::Footprint);
        // Two full-rate flows into n5: 2.0 flits/cycle offered, 1.0 drained.
        let mut wl = crate::workload::FlowSet::new(vec![
            SingleFlow {
                src: NodeId(0),
                dest: NodeId(5),
                rate: 1.0,
                size: 1,
            },
            SingleFlow {
                src: NodeId(10),
                dest: NodeId(5),
                rate: 1.0,
                size: 1,
            },
        ]);
        net.run(&mut wl, 1000);
        let m = net.metrics().total();
        // The endpoint ejects at its port bandwidth (≈1 flit/cycle).
        let ejected_rate = m.ejected_flits as f64 / net.cycle() as f64;
        assert!(
            ejected_rate > 0.85 && ejected_rate <= 1.01,
            "ejection rate {ejected_rate}"
        );
        assert!(net.source_backlog() > 100, "hotspot must back up");
    }

    #[test]
    fn link_latency_delays_delivery_proportionally() {
        let mut cfg_fast = SimConfig::small();
        cfg_fast.link_latency = 1;
        let mut cfg_slow = SimConfig::small();
        cfg_slow.link_latency = 4;
        let mut latencies = Vec::new();
        for cfg in [cfg_fast, cfg_slow] {
            let mut net = Network::new(cfg, RoutingSpec::Dor.build(), 7).unwrap();
            let mut wl = crate::workload::FlowSet::new(vec![SingleFlow {
                src: NodeId(0),
                dest: NodeId(3),
                rate: 0.05,
                size: 1,
            }]);
            net.run(&mut wl, 600);
            let mut none = NoTraffic;
            net.run(&mut none, 200);
            assert!(net.is_quiescent());
            let m = net.metrics().total();
            assert!(m.ejected_packets > 0);
            latencies.push(m.latency_sum as f64 / m.ejected_packets as f64);
        }
        // 3 hops + injection + ejection ≈ 5 link traversals; each extra
        // latency cycle adds ≈5 cycles end to end.
        assert!(
            latencies[1] > latencies[0] + 10.0,
            "lat(ll=1)={} lat(ll=4)={}",
            latencies[0],
            latencies[1]
        );
    }

    #[test]
    fn channel_loads_count_launched_flits() {
        let mut net = build(RoutingSpec::Dor);
        let mut wl = crate::workload::FlowSet::new(vec![SingleFlow {
            src: NodeId(0),
            dest: NodeId(2),
            rate: 0.5,
            size: 1,
        }]);
        net.run(&mut wl, 400);
        let mut none = NoTraffic;
        net.run(&mut none, 200);
        let loads = net.channel_loads();
        let flits = net.metrics().total().ejected_flits;
        // DOR: n0 →E n1 →E n2 →eject. Each flit crosses exactly two
        // inter-router channels and one ejection channel.
        let get = |node: u16, port: Port| {
            loads
                .iter()
                .find(|&&(n, p, _)| n == NodeId(node) && p == port)
                .map(|&(_, _, f)| f)
                .unwrap()
        };
        use footprint_topology::Direction;
        assert_eq!(get(0, Port::Dir(Direction::East)), flits);
        assert_eq!(get(1, Port::Dir(Direction::East)), flits);
        assert_eq!(get(2, Port::Local), flits);
        assert_eq!(get(5, Port::Dir(Direction::East)), 0);
        // Edge channels are omitted entirely.
        assert!(!loads
            .iter()
            .any(|&(n, p, _)| n == NodeId(0) && p == Port::Dir(Direction::West)));
    }

    #[test]
    fn occupancy_snapshot_reflects_buffered_traffic() {
        let mut net = build(RoutingSpec::Dor);
        let mut wl = crate::workload::FlowSet::new(vec![
            SingleFlow {
                src: NodeId(0),
                dest: NodeId(5),
                rate: 1.0,
                size: 1,
            },
            SingleFlow {
                src: NodeId(2),
                dest: NodeId(5),
                rate: 1.0,
                size: 1,
            },
        ]);
        net.run(&mut wl, 200);
        let snap = net.occupancy_snapshot();
        assert!(!snap.is_empty());
        assert!(snap
            .iter()
            .all(|e| !e.dests.is_empty()));
        // Every buffered destination in this workload is n5.
        assert!(snap
            .iter()
            .flat_map(|e| e.dests.iter())
            .all(|&d| d == NodeId(5)));
    }

    /// A snapshot taken mid-run and restored into a freshly built network
    /// must continue bit-identically to the uninterrupted run — same
    /// window metrics, same final cycle, same quiescence — under either
    /// scheduler (the restore path schedules a resync, which must agree
    /// with the never-resynced reference walk).
    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        for sched in [Scheduler::Dense, Scheduler::Active] {
            let mk = || {
                let mut net = build(RoutingSpec::Footprint);
                net.set_scheduler(sched);
                net
            };
            let wl = || {
                crate::workload::FlowSet::new(vec![
                    SingleFlow {
                        src: NodeId(0),
                        dest: NodeId(15),
                        rate: 0.4,
                        size: 2,
                    },
                    SingleFlow {
                        src: NodeId(12),
                        dest: NodeId(3),
                        rate: 0.3,
                        size: 1,
                    },
                ])
            };
            // Reference: run 300 cycles straight, measuring the last 150.
            let mut a = mk();
            let mut wa = wl();
            a.run(&mut wa, 150);
            a.metrics_mut().reset_window_at(150);
            a.run(&mut wa, 150);
            // Interrupted: run 150, snapshot, restore into a fresh build,
            // measure the next 150 there.
            let mut b0 = mk();
            let mut wb = wl();
            b0.run(&mut wb, 150);
            let blob = b0.snapshot().expect("fault-free snapshot");
            let mut b = mk();
            b.restore(&blob).expect("restore");
            assert_eq!(b.cycle(), 150);
            b.metrics_mut().reset_window_at(150);
            let mut wb2 = wl();
            b.run(&mut wb2, 150);
            let ta = a.metrics().total();
            let tb = b.metrics().total();
            assert_eq!(ta, tb, "{sched:?}: window metrics diverged");
            assert_eq!(a.cycle(), b.cycle());
            assert_eq!(
                format!("{:?}", a.datapath()),
                format!("{:?}", b.datapath()),
                "{sched:?}: datapath state diverged"
            );
        }
    }

    #[test]
    fn snapshot_rejects_faulted_networks_and_wrong_geometry() {
        use footprint_topology::{FaultEvent, FaultPlan};
        let plan = FaultPlan::new().with(FaultEvent::router_down(NodeId(3), 0));
        let faulted = Network::with_faults(
            SimConfig::small(),
            RoutingSpec::Footprint.build(),
            1,
            plan,
            UnreachablePolicy::Drop,
        )
        .unwrap();
        assert!(faulted.snapshot().is_err());
        let net = build(RoutingSpec::Footprint);
        let blob = net.snapshot().unwrap();
        let mut cfg = SimConfig::small();
        cfg.num_vcs += 1;
        let mut other = Network::new(cfg, RoutingSpec::Footprint.build(), 42).unwrap();
        assert!(other.restore(&blob).is_err(), "geometry echo must catch this");
        assert!(other.restore(&blob[..blob.len() - 3]).is_err());
    }

    /// Regression: a parked packet whose destination's router is repaired
    /// must be re-admitted in the repair cycle itself — not one backoff
    /// round later. The backoff here is far longer than the outage, so
    /// only the fault-change re-check can re-admit the packet; the test
    /// pins the exact cycle it happens.
    #[test]
    fn repair_readmits_parked_packets_in_the_repair_cycle() {
        use footprint_topology::{FaultEvent, FaultPlan};
        let plan = FaultPlan::new().with(FaultEvent::router_down(NodeId(3), 0).repaired_at(50));
        let mut net = Network::with_faults(
            SimConfig::small(),
            RoutingSpec::Footprint.build(),
            9,
            plan,
            UnreachablePolicy::Retry {
                max_attempts: 10,
                backoff: 10_000,
            },
        )
        .unwrap();
        let mut wl = crate::workload::FlowSet::new(vec![SingleFlow {
            src: NodeId(0),
            dest: NodeId(3),
            rate: 1.0,
            size: 1,
        }]);
        // Cycles 0..=49: the destination router is down, every generated
        // packet parks, and no retry comes due (backoff 10 000).
        net.run(&mut wl, 50);
        assert!(net.parked_retries() > 0, "outage must park packets");
        assert_eq!(net.metrics().total().ejected_packets, 0);
        // Cycle 50 is the repair cycle: the mask change re-checks every
        // parked entry and re-injects the whole backlog that same cycle.
        net.step(&mut wl);
        assert_eq!(net.cycle(), 51);
        assert_eq!(
            net.parked_retries(),
            0,
            "repair cycle must re-admit the entire retry backlog"
        );
        // The re-admitted packets drain to the destination.
        net.run(&mut NoTraffic, 300);
        let m = net.metrics().total();
        assert_eq!(m.generated_packets, m.ejected_packets);
        assert_eq!(m.dropped_packets, 0);
    }

    /// Retry backoff timing is a pure function of (seed, packet, attempt):
    /// two identical faulted runs under different schedulers produce
    /// bit-identical metrics, retries included.
    #[test]
    fn retry_backoff_is_scheduler_invariant() {
        use footprint_topology::{Direction, FaultEvent, FaultPlan};
        let run = |sched: Scheduler| {
            let plan = FaultPlan::new()
                .with(FaultEvent::link_down(NodeId(0), Direction::East, 0).repaired_at(200));
            let mut net = Network::with_faults(
                SimConfig::small(),
                RoutingSpec::Footprint.build(),
                77,
                plan,
                UnreachablePolicy::Retry {
                    max_attempts: 6,
                    backoff: 16,
                },
            )
            .unwrap();
            net.set_scheduler(sched);
            let mut wl = crate::workload::FlowSet::new(vec![SingleFlow {
                src: NodeId(0),
                dest: NodeId(3),
                rate: 0.4,
                size: 1,
            }]);
            net.run(&mut wl, 400);
            net.run(&mut NoTraffic, 300);
            let m = net.metrics().total();
            (
                m.generated_packets,
                m.ejected_packets,
                m.dropped_packets,
                m.retry_attempts,
                m.latency_sum,
                m.latency_max,
            )
        };
        let dense = run(Scheduler::Dense);
        let active = run(Scheduler::Active);
        assert!(dense.3 > 0, "the outage must schedule retries");
        assert_eq!(dense, active);
    }
}
