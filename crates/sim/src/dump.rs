//! Human-readable network state dumps for debugging and teaching.

use crate::network::Network;
use crate::output::OutVcState;
use footprint_topology::{Port, PORT_COUNT};
use std::fmt::Write as _;

impl Network {
    /// Renders an ASCII occupancy map of the mesh: one cell per router
    /// showing total buffered flits (input side), scaled `.:+*#@` — a quick
    /// visual of where congestion sits.
    ///
    /// ```text
    /// cycle 1250, 8x8 mesh
    /// . . . : + # @ @
    /// . . . . : * # @
    /// ...
    /// ```
    pub fn occupancy_map(&self) -> String {
        let mesh = self.topo();
        let cap = (self.config().num_vcs * self.config().vc_buffer_depth * PORT_COUNT) as f64;
        let soa = self.datapath();
        let mut out = format!("cycle {}, {}\n", self.cycle(), mesh);
        for y in (0..mesh.height()).rev() {
            for x in 0..mesh.width() {
                let node = mesh.node_at(footprint_topology::Coord::new(x, y));
                let buffered: usize = (0..PORT_COUNT)
                    .map(|p| {
                        let port = soa.input(node, p);
                        port.vcs().map(|vc| vc.len()).sum::<usize>()
                    })
                    .sum();
                let frac = buffered as f64 / cap;
                let glyph = match () {
                    _ if buffered == 0 => '.',
                    _ if frac < 0.1 => ':',
                    _ if frac < 0.25 => '+',
                    _ if frac < 0.5 => '*',
                    _ if frac < 0.75 => '#',
                    _ => '@',
                };
                let _ = write!(out, "{glyph} ");
            }
            out.pop();
            out.push('\n');
        }
        out
    }

    /// Dumps one router's full VC state: per input VC the buffered flit
    /// count and routing state, per output VC the allocation state, owner
    /// and credits. Intended for interactive debugging of a stuck scenario.
    pub fn dump_router(&self, node: footprint_topology::NodeId) -> String {
        let soa = self.datapath();
        let mut out = format!("router {node} @ cycle {}\n", self.cycle());
        for pi in 0..PORT_COUNT {
            let input = soa.input(node, pi);
            let output = soa.output(node, pi);
            let port = Port::from_index(pi);
            let _ = writeln!(out, "  port {port}:");
            for (vi, vc) in input.vcs().enumerate() {
                if !vc.is_empty() || !matches!(vc.route(), crate::input::RouteState::Idle) {
                    let _ = writeln!(
                        out,
                        "    in  vc{vi}: {} flits, {:?}",
                        vc.len(),
                        vc.route()
                    );
                }
            }
            for (vi, vc) in output.vcs().enumerate() {
                let interesting = !matches!(vc.state(), OutVcState::Idle)
                    || vc.owner().is_some()
                    || vc.credits() != vc.capacity();
                if interesting {
                    let owner = vc
                        .owner()
                        .map_or("-".to_string(), |d| d.to_string());
                    let _ = writeln!(
                        out,
                        "    out vc{vi}: {:?}, owner {owner}, credits {}/{}",
                        vc.state(),
                        vc.credits(),
                        vc.capacity()
                    );
                }
            }
            if output.staged() > 0 {
                let _ = writeln!(out, "    stage: {} flits", output.staged());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Network, SimConfig, SingleFlow};
    use footprint_routing::RoutingSpec;
    use footprint_topology::NodeId;

    fn congested_net() -> Network {
        let mut net = Network::new(SimConfig::small(), RoutingSpec::Footprint.build(), 3).unwrap();
        let mut wl = crate::workload::FlowSet::new(vec![
            SingleFlow {
                src: NodeId(0),
                dest: NodeId(5),
                rate: 1.0,
                size: 1,
            },
            SingleFlow {
                src: NodeId(10),
                dest: NodeId(5),
                rate: 1.0,
                size: 1,
            },
        ]);
        net.run(&mut wl, 300);
        net
    }

    #[test]
    fn occupancy_map_shows_congestion_glyphs() {
        let net = congested_net();
        let map = net.occupancy_map();
        // Exact header: no stray whitespace before the newline (a trailing
        // space here used to break naive line-based diffing of dumps).
        assert!(map.starts_with("cycle 300, 4x4 mesh\n"), "header: {map:?}");
        assert!(!map.lines().next().unwrap().ends_with(' '));
        // 4 rows of 4 cells.
        assert_eq!(map.lines().count(), 5);
        for line in map.lines().skip(1) {
            assert_eq!(line.split(' ').count(), 4);
        }
        // The oversubscription must show at least one non-empty cell.
        assert!(map.chars().any(|c| ":+*#@".contains(c)), "map: {map}");
    }

    #[test]
    fn empty_network_maps_to_dots() {
        let net = Network::new(SimConfig::small(), RoutingSpec::Dor.build(), 3).unwrap();
        let map = net.occupancy_map();
        assert!(map.lines().skip(1).all(|l| l.chars().all(|c| c == '.' || c == ' ')));
    }

    #[test]
    fn router_dump_reports_owners_and_credits() {
        let net = congested_net();
        // n5's router is the hotspot: its dump must show owned output VCs.
        let dump = net.dump_router(NodeId(5));
        assert!(dump.contains("router n5"));
        assert!(dump.contains("owner n5"), "dump: {dump}");
        assert!(dump.contains("credits"));
    }
}
