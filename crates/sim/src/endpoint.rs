//! Endpoints: packet sources (injection) and sinks (ejection).

use std::collections::VecDeque;

use crate::metrics::{EjectedPacket, Metrics, Probe};
use crate::output::OutVc;
use crate::packet::{Flit, NewPacket, PacketId, PendingPacket};
use crate::view::InjectionView;
use crate::wire::{CreditMsg, Wire};
use footprint_routing::{
    CongestionView, LinkStateView, Priority, RoutingAlgorithm, RoutingCtx, VcId,
};
use footprint_topology::{AnyTopology, NodeId, Port};
use rand::rngs::SmallRng;

/// A packet source: an unbounded generation queue feeding the router's
/// local input port over a credit-controlled channel with its own VCs.
///
/// The source runs the routing algorithm's *injection* VC selection, so a
/// Footprint network starts forming footprints from the very first hop.
#[derive(Debug)]
pub struct Source {
    node: NodeId,
    queue: VecDeque<PendingPacket>,
    vcs: Vec<OutVc>,
    /// VC granted to the front packet, if any.
    active_vc: Option<usize>,
    /// Rotating scan offset so equal-priority injection requests spread
    /// across VCs (round-robin VC allocation).
    rr: usize,
    scratch_reqs: Vec<footprint_routing::VcRequest>,
}

impl Source {
    /// Creates a source for `node` with `num_vcs` injection VCs backed by
    /// `buffer_depth`-flit downstream buffers.
    pub fn new(node: NodeId, num_vcs: usize, buffer_depth: u32) -> Self {
        Source {
            node,
            queue: VecDeque::new(),
            vcs: (0..num_vcs).map(|_| OutVc::new(buffer_depth)).collect(),
            active_vc: None,
            rr: 0,
            scratch_reqs: Vec::new(),
        }
    }

    /// Enqueues a freshly generated packet.
    pub fn enqueue(&mut self, id: PacketId, p: NewPacket, cycle: u64) {
        self.queue.push_back(PendingPacket {
            id,
            src: self.node,
            dest: p.dest,
            size: p.size,
            birth: cycle,
            class: p.class,
            sent: 0,
        });
    }

    /// Packets waiting (including the one currently streaming).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Receives returned credits from the router's local input port.
    pub fn return_credit(&mut self, vc: u8) {
        self.vcs[vc as usize].return_credit();
    }

    /// One source cycle: allocate a VC for the front packet if needed, then
    /// stream at most one flit onto the injection wire.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        algo: &dyn RoutingAlgorithm,
        topo: AnyTopology,
        congestion: &dyn CongestionView,
        links: &dyn LinkStateView,
        rng: &mut SmallRng,
        wire: &mut Wire,
        probe: &mut dyn Probe,
    ) {
        if self.active_vc.is_none() {
            self.try_allocate(algo, topo, congestion, links, rng);
        }
        let Some(vc) = self.active_vc else { return };
        if self.vcs[vc].credits() == 0 {
            return;
        }
        let front = self.queue.front_mut().expect("active VC implies a packet");
        let flit = front.next_flit(crate::cast::vc_u8(vc));
        self.vcs[vc].consume_credit();
        if flit.is_tail() {
            self.vcs[vc].tail_sent(algo.policy());
            self.queue.pop_front();
            self.active_vc = None;
        }
        if probe.wants_flit_events_of(crate::observe::FlitEventKind::Inject) {
            probe.flit_event(&crate::observe::FlitEvent {
                kind: crate::observe::FlitEventKind::Inject,
                node: self.node,
                packet: flit.packet,
                src: flit.src,
                dest: flit.dest,
                class: flit.class,
                port: Port::Local,
                vc: flit.vc,
                head: flit.is_head(),
            });
        }
        wire.flits.push(flit);
    }

    /// Runs the injection VC selection for the front packet.
    fn try_allocate(
        &mut self,
        algo: &dyn RoutingAlgorithm,
        topo: AnyTopology,
        congestion: &dyn CongestionView,
        links: &dyn LinkStateView,
        rng: &mut SmallRng,
    ) {
        let Some(front) = self.queue.front() else {
            return;
        };
        let mut reqs = std::mem::take(&mut self.scratch_reqs);
        reqs.clear();
        {
            let view = InjectionView::new(&self.vcs, algo.policy());
            let ctx = RoutingCtx {
                topo,
                current: self.node,
                src: self.node,
                dest: front.dest,
                input_port: Port::Local,
                input_vc: VcId(0),
                on_escape: false,
                num_vcs: self.vcs.len(),
                ports: &view,
                congestion,
                links,
            };
            algo.injection_requests(&ctx, rng, &mut reqs);
        }
        let policy = algo.policy();
        let escape_lo = if algo.has_escape() { topo.escape_vcs() } else { 0 };
        let allows_join = algo.allows_footprint_join();
        self.rr = self.rr.wrapping_add(1);
        let len = reqs.len();
        'pri: for pri in Priority::DESCENDING {
            for j in 0..len {
                let req = &reqs[(self.rr + j) % len];
                if req.priority != pri {
                    continue;
                }
                debug_assert_eq!(req.port, Port::Local);
                let v = req.vc.index();
                let ovc = &self.vcs[v];
                let fresh = ovc.idle_for(policy);
                let join = allows_join && v >= escape_lo && ovc.joinable_by(front.dest);
                if fresh || join {
                    self.vcs[v].allocate(front.id, front.dest);
                    self.active_vc = Some(v);
                    break 'pri;
                }
            }
        }
        self.scratch_reqs = reqs;
    }

    /// `true` when a [`Source::step`] would be an exact no-op: nothing
    /// queued and no VC granted. In this state `step` returns before its
    /// first RNG draw or round-robin bump, so the active-set scheduler may
    /// skip the call without perturbing the simulation's random stream.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active_vc.is_none()
    }

    /// `true` when the queue is empty and all VCs have drained.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && self.vcs.iter().all(OutVc::is_quiescent)
    }

    /// Read-only view of the injection-channel VC states (credit counters,
    /// owners). Used by the sentinel's credit-conservation audit.
    pub fn vcs(&self) -> &[OutVc] {
        &self.vcs
    }

    /// Serializes the generation queue, injection VCs, active grant and
    /// round-robin pointer (scratch is per-cycle and omitted).
    pub(crate) fn snapshot_write(&self, w: &mut crate::snapshot::SnapWriter) {
        w.usize(self.queue.len());
        for p in &self.queue {
            w.u64(p.id.0);
            w.u16(p.src.0);
            w.u16(p.dest.0);
            w.u16(p.size);
            w.u64(p.birth);
            w.u8(p.class);
            w.u16(p.sent);
        }
        w.usize(self.vcs.len());
        for vc in &self.vcs {
            vc.snapshot_write(w);
        }
        match self.active_vc {
            None => {
                w.u8(0);
                w.usize(0);
            }
            Some(v) => {
                w.u8(1);
                w.usize(v);
            }
        }
        w.usize(self.rr);
    }

    /// Restores a snapshot; the VC count echo must match.
    pub(crate) fn snapshot_read(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), String> {
        let queued = r.usize()?;
        self.queue.clear();
        for _ in 0..queued {
            let id = PacketId(r.u64()?);
            let src = NodeId(r.u16()?);
            let dest = NodeId(r.u16()?);
            let size = r.u16()?;
            let birth = r.u64()?;
            let class = r.u8()?;
            let sent = r.u16()?;
            self.queue.push_back(PendingPacket {
                id,
                src,
                dest,
                size,
                birth,
                class,
                sent,
            });
        }
        r.expect_usize(self.vcs.len(), "source VC count")?;
        for vc in &mut self.vcs {
            vc.snapshot_read(r)?;
        }
        self.active_vc = match r.u8()? {
            0 => {
                r.usize()?;
                None
            }
            _ => Some(r.usize()?),
        };
        self.rr = r.usize()?;
        Ok(())
    }
}

/// A packet sink: per-VC buffers drained at the endpoint ejection bandwidth
/// of one flit per cycle — the finite rate that makes oversubscribed
/// endpoints (Figure 9's hotspots) grow genuine congestion trees.
#[derive(Debug)]
pub struct Sink {
    node: NodeId,
    vcs: Vec<VecDeque<Flit>>,
    capacity: usize,
    rr: usize,
}

impl Sink {
    /// Creates a sink with `num_vcs` buffers of `capacity` flits.
    pub fn new(node: NodeId, num_vcs: usize, capacity: usize) -> Self {
        Sink {
            node,
            vcs: (0..num_vcs).map(|_| VecDeque::new()).collect(),
            capacity,
            rr: 0,
        }
    }

    /// Accepts a flit from the ejection channel.
    ///
    /// # Panics
    ///
    /// Panics on buffer overflow (credit protocol violation).
    pub fn push(&mut self, flit: Flit) {
        let q = &mut self.vcs[flit.vc as usize];
        assert!(q.len() < self.capacity, "sink VC overflow");
        q.push_back(flit);
    }

    /// Consumes up to one flit this cycle (round-robin over non-empty VCs);
    /// returns the credit to send back and records finished packets.
    pub fn step(
        &mut self,
        cycle: u64,
        metrics: &mut Metrics,
        probe: &mut dyn Probe,
    ) -> Option<CreditMsg> {
        let n = self.vcs.len();
        for k in 0..n {
            let v = (self.rr + k) % n;
            if let Some(flit) = self.vcs[v].pop_front() {
                self.rr = (v + 1) % n;
                debug_assert_eq!(flit.dest, self.node, "flit ejected at wrong node");
                if probe.wants_flit_events_of(crate::observe::FlitEventKind::Eject) {
                    probe.flit_event(&crate::observe::FlitEvent {
                        kind: crate::observe::FlitEventKind::Eject,
                        node: self.node,
                        packet: flit.packet,
                        src: flit.src,
                        dest: flit.dest,
                        class: flit.class,
                        port: Port::Local,
                        vc: flit.vc,
                        head: flit.is_head(),
                    });
                }
                if flit.is_tail() {
                    let pkt = EjectedPacket {
                        id: flit.packet,
                        src: flit.src,
                        dest: flit.dest,
                        birth: flit.birth,
                        ejected: cycle,
                        size: flit.size,
                        class: flit.class,
                    };
                    metrics.record_ejected(&pkt);
                    probe.packet_ejected(&pkt);
                }
                return Some(CreditMsg {
                    vc: crate::cast::vc_u8(v),
                });
            }
        }
        None
    }

    /// Buffered flits across all VCs.
    pub fn buffered(&self) -> usize {
        self.vcs.iter().map(VecDeque::len).sum()
    }

    /// Buffered flits waiting in VC `vc` (sentinel credit audit).
    pub fn buffered_in(&self, vc: usize) -> usize {
        self.vcs[vc].len()
    }

    /// `true` when no flits are buffered.
    pub fn is_quiescent(&self) -> bool {
        self.vcs.iter().all(VecDeque::is_empty)
    }

    /// Serializes the per-VC buffers and the round-robin pointer.
    pub(crate) fn snapshot_write(&self, w: &mut crate::snapshot::SnapWriter) {
        w.usize(self.vcs.len());
        for q in &self.vcs {
            w.usize(q.len());
            for f in q {
                w.flit(f);
            }
        }
        w.usize(self.rr);
        w.usize(self.capacity);
    }

    /// Restores a snapshot; VC count and capacity echoes must match.
    pub(crate) fn snapshot_read(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), String> {
        r.expect_usize(self.vcs.len(), "sink VC count")?;
        for q in &mut self.vcs {
            let n = r.usize()?;
            if n > self.capacity {
                return Err(format!(
                    "snapshot sink buffer of {n} flits exceeds capacity {}",
                    self.capacity
                ));
            }
            q.clear();
            for _ in 0..n {
                q.push_back(r.flit()?);
            }
        }
        self.rr = r.usize()?;
        r.expect_usize(self.capacity, "sink capacity")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::NullProbe;
    use crate::packet::FlitKind;
    use footprint_routing::{AllLinksUp, Dor, Footprint, NoCongestionInfo};
    use footprint_topology::Mesh;
    use rand::SeedableRng;

    fn new_packet(dest: u16, size: u16) -> NewPacket {
        NewPacket {
            dest: NodeId(dest),
            size,
            class: 0,
            origin: None,
        }
    }

    #[test]
    fn source_streams_a_packet() {
        let mesh = AnyTopology::from(Mesh::square(4));
        let mut src = Source::new(NodeId(0), 4, 4);
        let mut wire = Wire::new();
        let mut rng = SmallRng::seed_from_u64(1);
        src.enqueue(PacketId(1), new_packet(3, 2), 0);
        assert_eq!(src.backlog(), 1);
        src.step(&Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut wire, &mut NullProbe);
        src.step(&Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut wire, &mut NullProbe);
        assert_eq!(src.backlog(), 0);
        wire.tick();
        let flits: Vec<_> = wire.flits.drain().collect();
        assert_eq!(flits.len(), 2);
        assert!(flits[0].is_head());
        assert!(flits[1].is_tail());
        assert_eq!(flits[0].vc, flits[1].vc);
    }

    #[test]
    fn source_respects_credits() {
        let mesh = AnyTopology::from(Mesh::square(4));
        let mut src = Source::new(NodeId(0), 2, 1); // 1-credit VCs
        let mut wire = Wire::new();
        let mut rng = SmallRng::seed_from_u64(1);
        src.enqueue(PacketId(1), new_packet(3, 3), 0);
        src.step(&Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut wire, &mut NullProbe); // head goes
        src.step(&Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut wire, &mut NullProbe); // stalls
        wire.tick();
        let sent: Vec<_> = wire.flits.drain().collect();
        assert_eq!(sent.len(), 1, "second flit must stall on zero credits");
        src.return_credit(sent[0].vc); // head slot freed downstream
        src.step(&Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut wire, &mut NullProbe);
        wire.tick();
        let flits: Vec<_> = wire.flits.drain().collect();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Body);
    }

    #[test]
    fn footprint_source_joins_same_destination_stream() {
        let mesh = AnyTopology::from(Mesh::square(4));
        let algo = Footprint::new().with_join();
        let mut src = Source::new(NodeId(0), 3, 4);
        let mut wire = Wire::new();
        let mut rng = SmallRng::seed_from_u64(1);
        // Packet 1 to n5 claims adaptive VC; packet 2 to n7 claims the
        // other adaptive VC (3 VCs total: escape + 2 adaptive). Both end up
        // draining, so the channel is congested (no idle adaptive VCs).
        src.enqueue(PacketId(1), new_packet(5, 1), 0);
        src.step(&algo, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut wire, &mut NullProbe);
        src.enqueue(PacketId(2), new_packet(7, 1), 1);
        src.step(&algo, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut wire, &mut NullProbe);
        assert_eq!(src.backlog(), 0);
        // Packet 3 to n5 finds idle = ∅ and a footprint VC for n5 → joins
        // it instead of waiting or escaping.
        src.enqueue(PacketId(3), new_packet(5, 1), 2);
        src.step(&algo, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut wire, &mut NullProbe);
        assert_eq!(src.backlog(), 0, "joined the draining footprint VC");
        wire.tick();
        let flits: Vec<_> = wire.flits.drain().collect();
        assert_eq!(flits.len(), 3);
        assert_eq!(flits[0].vc, flits[2].vc, "same footprint VC for n5");
        assert_ne!(flits[0].vc, flits[1].vc, "different destinations split");
        assert_ne!(flits[2].vc, 0, "not the escape VC");
    }

    #[test]
    fn sink_drains_one_flit_per_cycle_and_records_packets() {
        let mut sink = Sink::new(NodeId(3), 2, 4);
        let mut metrics = Metrics::new();
        let mut probe = NullProbe;
        let mk = |vc: u8, packet: u64| Flit {
            packet: PacketId(packet),
            kind: FlitKind::Single,
            src: NodeId(0),
            dest: NodeId(3),
            seq: 0,
            size: 1,
            birth: 0,
            class: 0,
            vc,
        };
        sink.push(mk(0, 1));
        sink.push(mk(1, 2));
        assert_eq!(sink.buffered(), 2);
        let c1 = sink.step(10, &mut metrics, &mut probe).unwrap();
        let c2 = sink.step(11, &mut metrics, &mut probe).unwrap();
        assert!(sink.step(12, &mut metrics, &mut probe).is_none());
        assert_ne!(c1.vc, c2.vc, "round-robin over VCs");
        assert_eq!(metrics.total().ejected_packets, 2);
        assert_eq!(metrics.class(0).latency_max, 11);
        assert!(sink.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "sink VC overflow")]
    fn sink_overflow_panics() {
        let mut sink = Sink::new(NodeId(3), 1, 1);
        let f = Flit {
            packet: PacketId(1),
            kind: FlitKind::Single,
            src: NodeId(0),
            dest: NodeId(3),
            seq: 0,
            size: 1,
            birth: 0,
            class: 0,
            vc: 0,
        };
        sink.push(f);
        sink.push(f);
    }
}
