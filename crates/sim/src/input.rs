//! Input-side VC state: the per-VC routing state machine.
//!
//! The backing data — flit FIFOs, route registers, occupancy counters —
//! lives in the network-wide struct-of-arrays store ([`crate::NocSoa`]);
//! this module keeps the `RouteState` vocabulary type that the store packs
//! into its flat `u8` arrays and that read-only consumers (the sentinel,
//! state dumps) still match on.

use crate::packet::PacketId;
use footprint_topology::Port;

/// Routing/allocation state of one input VC (tracks the packet at the front
/// of the FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteState {
    /// No head packet awaiting a decision (empty, or mid-packet flits only).
    Idle,
    /// A head flit is at the front and has not yet been granted an output
    /// VC; the routing function is re-evaluated every cycle (standing
    /// requests).
    Waiting,
    /// The front packet holds an output VC and is streaming.
    Active {
        /// The packet holding the grant.
        packet: PacketId,
        /// Granted output port.
        out_port: Port,
        /// Granted output VC.
        out_vc: u8,
    },
}
