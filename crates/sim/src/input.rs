//! Input-side VC state: flit FIFOs and per-VC routing state.

use std::collections::VecDeque;

use crate::packet::{Flit, PacketId};
use footprint_topology::Port;

/// Routing/allocation state of one input VC (tracks the packet at the front
/// of the FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteState {
    /// No head packet awaiting a decision (empty, or mid-packet flits only).
    Idle,
    /// A head flit is at the front and has not yet been granted an output
    /// VC; the routing function is re-evaluated every cycle (standing
    /// requests).
    Waiting,
    /// The front packet holds an output VC and is streaming.
    Active {
        /// The packet holding the grant.
        packet: PacketId,
        /// Granted output port.
        out_port: Port,
        /// Granted output VC.
        out_vc: u8,
    },
}

/// One input VC: a bounded flit FIFO plus routing state.
///
/// The FIFO may hold flits of more than one packet (non-atomic VC
/// reallocation and footprint joins both queue packets back to back); only
/// the front packet is ever being routed or switched.
#[derive(Debug)]
pub struct InVc {
    fifo: VecDeque<Flit>,
    capacity: usize,
    route: RouteState,
}

impl InVc {
    /// Creates an empty VC buffer of `capacity` flits.
    pub fn new(capacity: usize) -> Self {
        InVc {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            route: RouteState::Idle,
        }
    }

    /// Buffer capacity in flits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered flits.
    #[inline]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// `true` when no flits are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Current routing state.
    #[inline]
    pub fn route(&self) -> RouteState {
        self.route
    }

    /// The front flit, if any.
    #[inline]
    pub fn front(&self) -> Option<&Flit> {
        self.fifo.front()
    }

    /// Accepts an arriving flit.
    ///
    /// Transitions `Idle → Waiting` when a head flit reaches the front.
    ///
    /// # Panics
    ///
    /// Panics on buffer overflow — arrivals are gated by credits upstream,
    /// so an overflow indicates a flow-control bug.
    pub fn push(&mut self, flit: Flit) {
        assert!(self.fifo.len() < self.capacity, "input VC overflow");
        self.fifo.push_back(flit);
        self.refresh_route_state();
    }

    /// Pops the front flit after a switch grant.
    ///
    /// Returns the flit. When a tail leaves, the route state resets so a
    /// queued-behind packet's head can be routed next.
    ///
    /// # Panics
    ///
    /// Panics if the VC is empty or not `Active`.
    pub fn pop_front_granted(&mut self) -> Flit {
        let RouteState::Active { packet, .. } = self.route else {
            panic!("pop without an active grant");
        };
        let flit = self.fifo.pop_front().expect("pop from empty input VC");
        debug_assert_eq!(flit.packet, packet, "front flit not of the active packet");
        if flit.is_tail() {
            self.route = RouteState::Idle;
            self.refresh_route_state();
        }
        flit
    }

    /// Records a VC-allocation grant for the waiting head packet.
    ///
    /// # Panics
    ///
    /// Panics if the VC is not in `Waiting` state.
    pub fn grant(&mut self, out_port: Port, out_vc: u8) {
        assert_eq!(
            self.route,
            RouteState::Waiting,
            "grant without a waiting head"
        );
        let packet = self.front().expect("waiting implies non-empty").packet;
        self.route = RouteState::Active {
            packet,
            out_port,
            out_vc,
        };
    }

    /// `Idle → Waiting` when a head flit is at the front.
    fn refresh_route_state(&mut self) {
        if self.route == RouteState::Idle {
            if let Some(f) = self.fifo.front() {
                if f.is_head() {
                    self.route = RouteState::Waiting;
                }
            }
        }
    }

    /// Destinations of the buffered flits, in FIFO order (congestion-tree
    /// analysis input).
    pub fn dests(&self) -> Vec<footprint_topology::NodeId> {
        let mut out = Vec::new();
        self.dests_into(&mut out);
        out
    }

    /// Appends the buffered flit destinations to `out` (FIFO order) without
    /// allocating a fresh list — callers sampling every interval reuse one
    /// buffer across samples.
    pub fn dests_into(&self, out: &mut Vec<footprint_topology::NodeId>) {
        out.extend(self.fifo.iter().map(|f| f.dest));
    }

    /// `true` if a head flit is waiting for VC allocation.
    #[inline]
    pub fn waiting(&self) -> bool {
        self.route == RouteState::Waiting
    }

    /// `true` if the VC holds nothing and no grant is outstanding.
    pub fn is_quiescent(&self) -> bool {
        self.fifo.is_empty() && self.route == RouteState::Idle
    }
}

/// An input port: one [`InVc`] per virtual channel.
#[derive(Debug)]
pub struct InputPort {
    vcs: Vec<InVc>,
}

impl InputPort {
    /// Creates an input port with `num_vcs` VCs of `capacity` flits each.
    pub fn new(num_vcs: usize, capacity: usize) -> Self {
        InputPort {
            vcs: (0..num_vcs).map(|_| InVc::new(capacity)).collect(),
        }
    }

    /// The VC table.
    pub fn vcs(&self) -> &[InVc] {
        &self.vcs
    }

    /// Mutable VC table.
    pub fn vcs_mut(&mut self) -> &mut [InVc] {
        &mut self.vcs
    }

    /// One VC.
    pub fn vc(&self, vc: usize) -> &InVc {
        &self.vcs[vc]
    }

    /// One VC, mutably.
    pub fn vc_mut(&mut self, vc: usize) -> &mut InVc {
        &mut self.vcs[vc]
    }

    /// Number of VCs whose buffers hold at least one flit (the occupancy
    /// measure used by the DBAR side band).
    pub fn occupied_vcs(&self) -> usize {
        self.vcs.iter().filter(|v| !v.is_empty()).count()
    }

    /// `true` when all VCs are quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.vcs.iter().all(InVc::is_quiescent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlitKind;
    use footprint_topology::{Direction, NodeId};

    fn flit(packet: u64, kind: FlitKind, seq: u16) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            src: NodeId(0),
            dest: NodeId(3),
            seq,
            size: 3,
            birth: 0,
            class: 0,
            vc: 0,
        }
    }

    #[test]
    fn head_arrival_triggers_waiting() {
        let mut vc = InVc::new(4);
        assert_eq!(vc.route(), RouteState::Idle);
        vc.push(flit(1, FlitKind::Head, 0));
        assert!(vc.waiting());
    }

    #[test]
    fn grant_then_stream_then_reset_on_tail() {
        let mut vc = InVc::new(4);
        vc.push(flit(1, FlitKind::Head, 0));
        vc.push(flit(1, FlitKind::Body, 1));
        vc.push(flit(1, FlitKind::Tail, 2));
        vc.grant(Port::Dir(Direction::East), 2);
        assert!(matches!(vc.route(), RouteState::Active { out_vc: 2, .. }));
        assert!(vc.pop_front_granted().is_head());
        assert_eq!(vc.pop_front_granted().kind, FlitKind::Body);
        assert!(vc.pop_front_granted().is_tail());
        assert_eq!(vc.route(), RouteState::Idle);
        assert!(vc.is_quiescent());
    }

    #[test]
    fn queued_packet_becomes_waiting_after_tail_leaves() {
        let mut vc = InVc::new(4);
        vc.push(flit(1, FlitKind::Single, 0));
        vc.grant(Port::Dir(Direction::East), 1);
        // Second packet joins the FIFO behind the first.
        let mut f = flit(2, FlitKind::Single, 0);
        f.size = 1;
        vc.push(f);
        // Still active on packet 1.
        assert!(matches!(
            vc.route(),
            RouteState::Active {
                packet: PacketId(1),
                ..
            }
        ));
        let t = vc.pop_front_granted();
        assert!(t.is_tail());
        // Packet 2's head is now at the front → waiting.
        assert!(vc.waiting());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut vc = InVc::new(1);
        vc.push(flit(1, FlitKind::Single, 0));
        vc.push(flit(2, FlitKind::Single, 0));
    }

    #[test]
    #[should_panic(expected = "grant without a waiting head")]
    fn grant_without_head_panics() {
        let mut vc = InVc::new(2);
        vc.grant(Port::Local, 0);
    }

    #[test]
    fn occupied_vcs_counts_nonempty() {
        let mut port = InputPort::new(3, 2);
        assert_eq!(port.occupied_vcs(), 0);
        port.vc_mut(1).push(flit(1, FlitKind::Single, 0));
        assert_eq!(port.occupied_vcs(), 1);
        assert!(!port.is_quiescent());
    }
}
