//! The input-queued VC router: route computation, priority-based VC
//! allocation and round-robin switch allocation with internal speedup.
//!
//! The router owns no datapath state: flit buffers, route registers,
//! credits and stages live in the network-wide [`NocSoa`] arrays, and the
//! router's allocators walk them through per-port bitmasks (waiting heads,
//! active grants) instead of per-VC objects. Only the arbiter pointers and
//! the per-cycle scratch buffers are per-router.

use crate::metrics::{Metrics, Probe, VaBlockInfo};
use crate::packet::{Flit, PacketId};
use crate::soa::NocSoa;
use crate::view::RouterOutputsView;
use footprint_routing::{
    CongestionView, LinkStateView, Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest,
};
use footprint_topology::{AnyTopology, NodeId, Port, PORT_COUNT};
use rand::rngs::SmallRng;

/// A buffer slot freed by switch traversal; the network converts these into
/// upstream credit messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreedSlot {
    /// Input port whose VC freed a slot.
    pub in_port: usize,
    /// The VC index.
    pub vc: u8,
}

/// One head packet competing in VC allocation this cycle.
#[derive(Debug, Clone, Copy)]
struct Requester {
    in_port: usize,
    in_vc: usize,
    packet: PacketId,
    src: NodeId,
    dest: NodeId,
    class: u8,
    /// Bit `p` set iff the request slice contains priority `p` — lets the
    /// grant loop skip whole tiers without rescanning the slice.
    pri_mask: u8,
    reqs: (u32, u32), // [start, end) into the flat request buffer
}

/// A five-port VC router (four directions + local), one VC allocator and
/// one switch allocator, all operating on the shared [`NocSoa`] state.
#[derive(Debug)]
pub struct Router {
    node: NodeId,
    num_vcs: usize,
    va_rr: usize,
    sa_port_rr: usize,
    sa_vc_rr: usize,
    // Scratch buffers reused every cycle to avoid per-cycle allocation.
    scratch_reqs: Vec<VcRequest>,
    scratch_requesters: Vec<Requester>,
    scratch_granted: Vec<bool>,
}

impl Router {
    /// Creates the router logic for `node` with `num_vcs` VCs per port
    /// (the buffers themselves live in the [`NocSoa`] store).
    pub fn new(node: NodeId, num_vcs: usize) -> Self {
        Router {
            node,
            num_vcs,
            va_rr: 0,
            sa_port_rr: 0,
            sa_vc_rr: 0,
            scratch_reqs: Vec::new(),
            scratch_requesters: Vec::new(),
            scratch_granted: Vec::new(),
        }
    }

    /// The router's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Pops the next flit to launch from output port `port` (one per cycle
    /// per link).
    pub fn launch(&self, soa: &mut NocSoa, port: usize) -> Option<Flit> {
        soa.stage_pop(soa.np(self.node, port))
    }

    /// `true` when no flits or grants are outstanding anywhere in the
    /// router.
    pub fn is_quiescent(&self, soa: &NocSoa) -> bool {
        soa.router_quiescent(self.node)
    }

    /// Flits currently resident in the router: buffered in input VCs or
    /// staged at output ports. The active-set scheduler keeps a running
    /// copy of this count and processes the router only while it is
    /// nonzero.
    pub fn resident_flits(&self, soa: &NocSoa) -> usize {
        soa.resident_flits(self.node)
    }

    /// Advances the switch-allocator round-robin pointers as if
    /// [`Router::switch_allocate`] had run for `skipped` idle cycles.
    ///
    /// Those pointers rotate unconditionally at the end of every dense
    /// tick, even when the router moved nothing; an idle router skipped by
    /// the active-set scheduler must catch them up before its next real
    /// tick so arbitration resumes exactly where the dense loop would be.
    /// (`va_rr` needs no catch-up: it only advances when heads competed.)
    pub(crate) fn advance_arbiters(&mut self, skipped: u64) {
        self.sa_port_rr = (self.sa_port_rr + (skipped % PORT_COUNT as u64) as usize) % PORT_COUNT;
        let m = self.num_vcs.max(1);
        self.sa_vc_rr = (self.sa_vc_rr + (skipped % m as u64) as usize) % m;
    }

    /// Serializes the arbiter pointers (the router's only persistent
    /// state — the datapath lives in [`NocSoa`], scratch is per-cycle).
    pub(crate) fn snapshot_write(&self, w: &mut crate::snapshot::SnapWriter) {
        w.usize(self.va_rr);
        w.usize(self.sa_port_rr);
        w.usize(self.sa_vc_rr);
    }

    /// Restores the arbiter pointers from a snapshot.
    pub(crate) fn snapshot_read(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), String> {
        self.va_rr = r.usize()?;
        self.sa_port_rr = r.usize()?;
        self.sa_vc_rr = r.usize()?;
        Ok(())
    }

    /// Route computation + VC allocation for every waiting head packet.
    ///
    /// Requests are standing: they are recomputed every cycle from current
    /// VC state (which is what lets Footprint's priorities track congestion)
    /// and arbitrated by priority with round-robin fairness among inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn vc_allocate(
        &mut self,
        soa: &mut NocSoa,
        algo: &dyn RoutingAlgorithm,
        topo: AnyTopology,
        congestion: &dyn CongestionView,
        links: &dyn LinkStateView,
        rng: &mut SmallRng,
        metrics: &mut Metrics,
        probe: &mut dyn Probe,
    ) {
        let np0 = soa.np(self.node, 0);
        // Fast path: no waiting heads anywhere — nothing to arbitrate, no
        // RNG draws, and `va_rr` would not advance either way.
        if (0..PORT_COUNT).all(|p| soa.waiting_mask(np0 + p) == 0) {
            return;
        }
        let policy = algo.policy();
        let has_escape = algo.has_escape();
        // Escape band: VCs `0..escape_lo` are the deadlock-free escape
        // network (one VC on a mesh, one per dateline class on a wrapping
        // fabric). Zero when the algorithm routes without an escape layer.
        let escape_lo = if has_escape { topo.escape_vcs() } else { 0 };
        let allows_join = algo.allows_footprint_join();
        let events = probe.wants_flit_events_of(crate::observe::FlitEventKind::VcGrant);

        // Phase 1 (read-only): evaluate the routing function for every
        // waiting head, in ascending (port, vc) order.
        let mut reqs = std::mem::take(&mut self.scratch_reqs);
        let mut requesters = std::mem::take(&mut self.scratch_requesters);
        reqs.clear();
        requesters.clear();
        {
            let view = RouterOutputsView::new(soa, self.node, policy);
            for ip in 0..PORT_COUNT {
                let mut wmask = soa.waiting_mask(np0 + ip);
                while wmask != 0 {
                    let iv = wmask.trailing_zeros() as usize;
                    wmask &= wmask - 1;
                    let ivc = (np0 + ip) * self.num_vcs + iv;
                    let head = soa.in_front(ivc).expect("waiting implies a front flit");
                    debug_assert!(head.is_head());
                    let ctx = RoutingCtx {
                        topo,
                        current: self.node,
                        src: head.src,
                        dest: head.dest,
                        input_port: Port::from_index(ip),
                        input_vc: VcId(crate::cast::vc_u8(iv)),
                        on_escape: iv < escape_lo,
                        num_vcs: self.num_vcs,
                        ports: &view,
                        congestion,
                        links,
                    };
                    let start = crate::cast::idx_u32(reqs.len());
                    algo.route(&ctx, rng, &mut reqs);
                    let end = crate::cast::idx_u32(reqs.len());
                    let mut pri_mask = 0u8;
                    for req in &reqs[start as usize..end as usize] {
                        pri_mask |= 1 << req.priority as u8;
                    }
                    requesters.push(Requester {
                        in_port: ip,
                        in_vc: iv,
                        packet: head.packet,
                        src: head.src,
                        dest: head.dest,
                        class: head.class,
                        pri_mask,
                        reqs: (start, end),
                    });
                }
            }
        }

        // Phase 2: priority-ordered grant loop.
        let n = requesters.len();
        let mut granted = std::mem::take(&mut self.scratch_granted);
        granted.clear();
        granted.resize(n, false);
        // Per-port bitmask of output VCs granted this cycle (bit = VC index).
        let mut taken = [0u64; PORT_COUNT];
        let vc_base = np0 * self.num_vcs;
        if n > 0 {
            let start = self.va_rr % n;
            let mut ungranted = n;
            let all_pris = requesters.iter().fold(0u8, |m, r| m | r.pri_mask);
            'tiers: for pri in Priority::DESCENDING {
                if all_pris & (1 << pri as u8) == 0 {
                    continue;
                }
                for k in 0..n {
                    if ungranted == 0 {
                        break 'tiers;
                    }
                    let i = (start + k) % n;
                    if granted[i] {
                        continue;
                    }
                    let r = requesters[i];
                    if r.pri_mask & (1 << pri as u8) == 0 {
                        continue;
                    }
                    let slice = &reqs[r.reqs.0 as usize..r.reqs.1 as usize];
                    // Rotate the scan start per requester and per cycle so
                    // equal-priority requests behave like a round-robin VC
                    // allocator (first-fit would serialize all traffic on
                    // VC 0 and artificially thin every congestion tree).
                    let len = slice.len();
                    let off = self.va_rr.wrapping_add(i);
                    for j in 0..len {
                        let req = &slice[(off + j) % len];
                        if req.priority != pri {
                            continue;
                        }
                        // Backstop for algorithms that keep requesting a
                        // faulted port (deliberately, like strict DOR):
                        // never grant onto a dead channel — the packet
                        // waits, and the watchdog names it if it wedges.
                        if let Port::Dir(d) = req.port {
                            if !links.link_up(self.node, d) {
                                continue;
                            }
                        }
                        let p = req.port.index();
                        let v = req.vc.index();
                        if taken[p] & (1 << v) != 0 {
                            continue;
                        }
                        let ovc = vc_base + p * self.num_vcs + v;
                        let fresh = soa.out_idle_for(ovc, policy);
                        // Joins never target the escape band: escape VCs
                        // must drain by the acyclic escape relation alone.
                        let join =
                            allows_join && v >= escape_lo && soa.out_joinable_by(ovc, r.dest);
                        if fresh || join {
                            let vc = crate::cast::vc_u8(v);
                            soa.out_allocate(ovc, r.packet, r.dest);
                            soa.in_grant(
                                (np0 + r.in_port) * self.num_vcs + r.in_vc,
                                req.port,
                                vc,
                            );
                            if events {
                                probe.flit_event(&crate::observe::FlitEvent {
                                    kind: crate::observe::FlitEventKind::VcGrant,
                                    node: self.node,
                                    packet: r.packet,
                                    src: r.src,
                                    dest: r.dest,
                                    class: r.class,
                                    port: req.port,
                                    vc,
                                    head: true,
                                });
                            }
                            taken[p] |= 1 << v;
                            granted[i] = true;
                            ungranted -= 1;
                            break;
                        }
                    }
                }
            }
            self.va_rr = self.va_rr.wrapping_add(1);
        }

        // Phase 3: account blocking (and its purity) for ungranted heads.
        for (i, r) in requesters.iter().enumerate() {
            if granted[i] {
                continue;
            }
            let slice = &reqs[r.reqs.0 as usize..r.reqs.1 as usize];
            if slice.is_empty() {
                continue;
            }
            let (fp, busy) = self.port_occupancy_for(soa, slice, r.dest, policy);
            let info = VaBlockInfo {
                node: self.node,
                packet: r.packet,
                dest: r.dest,
                class: r.class,
                footprint_vcs: fp,
                busy_vcs: busy,
            };
            metrics.record_va_block(&info);
            probe.va_blocked(&info);
        }

        self.scratch_reqs = reqs;
        self.scratch_requesters = requesters;
        self.scratch_granted = granted;
    }

    /// Re-evaluates the routing function for one waiting head — exactly
    /// what phase 1 of [`Router::vc_allocate`] computes for `(in_port,
    /// in_vc)` — without mutating any allocator state.
    ///
    /// The sentinel's deadlock detector uses this to learn which output
    /// VCs a `Waiting` head could accept, so it can distinguish a true
    /// protocol deadlock (no live alternative exists) from transient
    /// congestion. Callers pass a deterministic `rng` (the routing
    /// function only draws coins for two-way tie-breaks) and union the
    /// requests across coin outcomes.
    ///
    /// Appends to `out`; returns `false` (appending nothing) when the VC
    /// holds no waiting head.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recompute_requests(
        &self,
        soa: &NocSoa,
        algo: &dyn RoutingAlgorithm,
        topo: AnyTopology,
        congestion: &dyn CongestionView,
        links: &dyn LinkStateView,
        in_port: usize,
        in_vc: usize,
        rng: &mut dyn rand::RngCore,
        out: &mut Vec<VcRequest>,
    ) -> bool {
        let ivc = soa.ivc(self.node, in_port, in_vc);
        if !soa.waiting(ivc) {
            return false;
        }
        let head = soa.in_front(ivc).expect("waiting implies a front flit");
        let view = RouterOutputsView::new(soa, self.node, algo.policy());
        let escape_lo = if algo.has_escape() { topo.escape_vcs() } else { 0 };
        let ctx = RoutingCtx {
            topo,
            current: self.node,
            src: head.src,
            dest: head.dest,
            input_port: Port::from_index(in_port),
            input_vc: VcId(crate::cast::vc_u8(in_vc)),
            on_escape: in_vc < escape_lo,
            num_vcs: self.num_vcs,
            ports: &view,
            congestion,
            links,
        };
        algo.route(&ctx, rng, out);
        true
    }

    /// Counts (footprint, busy) VCs over the distinct ports of a request
    /// set — the purity inputs of §4.3.
    fn port_occupancy_for(
        &self,
        soa: &NocSoa,
        reqs: &[VcRequest],
        dest: NodeId,
        policy: footprint_routing::VcReallocationPolicy,
    ) -> (u32, u32) {
        let mut seen = [false; PORT_COUNT];
        let (mut fp, mut busy) = (0, 0);
        let d = u32::from(dest.0);
        for req in reqs {
            let p = req.port.index();
            if seen[p] {
                continue;
            }
            seen[p] = true;
            let (states, owners) = soa.out_port_slices(soa.np(self.node, p));
            for (&s, &o) in states.iter().zip(owners) {
                if !NocSoa::packed_idle(s, policy) {
                    busy += 1;
                    if o == d {
                        fp += 1;
                    }
                }
            }
        }
        (fp, busy)
    }

    /// Switch allocation + traversal: moves up to `speedup` flits per input
    /// and output port from input VCs into output stages, gated by credits
    /// and stage space. Returns the freed buffer slots through `freed`.
    pub fn switch_allocate(
        &mut self,
        soa: &mut NocSoa,
        policy: footprint_routing::VcReallocationPolicy,
        speedup: usize,
        freed: &mut Vec<FreedSlot>,
        probe: &mut dyn Probe,
    ) {
        let events = probe.wants_flit_events_of(crate::observe::FlitEventKind::SaGrant);
        let np0 = soa.np(self.node, 0);
        let vc_base = np0 * self.num_vcs;
        let mut out_budget = [speedup; PORT_COUNT];
        let mut stage_space = [0usize; PORT_COUNT];
        for (p, space) in stage_space.iter_mut().enumerate() {
            *space = soa.stage_space(np0 + p);
        }
        for k in 0..PORT_COUNT {
            let ip = (self.sa_port_rr + k) % PORT_COUNT;
            // Ports with no active grants have nothing to traverse. The
            // rotated scan visits exactly the granted VCs, in the order the
            // dense `(sa_vc_rr + j) % num_vcs` walk would reach them:
            // ascending from the rotation point, then the wrapped prefix.
            let amask = soa.active_mask(np0 + ip);
            if amask == 0 {
                continue;
            }
            let rot = NocSoa::vc_range_mask(self.sa_vc_rr % self.num_vcs, self.num_vcs);
            let mut in_budget = speedup;
            'inputs: for mut bits in [amask & rot, amask & !rot] {
                while bits != 0 {
                    if in_budget == 0 {
                        break 'inputs;
                    }
                    let iv = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let ivc = (np0 + ip) * self.num_vcs + iv;
                    let (p, out_vc) = soa.route_target(ivc);
                    if out_budget[p] == 0 || stage_space[p] == 0 {
                        continue;
                    }
                    if soa.in_len(ivc) == 0 {
                        continue;
                    }
                    let ovc = vc_base + p * self.num_vcs + out_vc as usize;
                    if soa.out_credits(ovc) == 0 {
                        continue;
                    }
                    // Grant: traverse the switch.
                    let mut flit = soa.in_pop_granted(ivc);
                    flit.vc = out_vc;
                    soa.out_consume_credit(ovc);
                    if flit.is_tail() {
                        soa.out_tail_sent(ovc, policy);
                    }
                    if events {
                        probe.flit_event(&crate::observe::FlitEvent {
                            kind: crate::observe::FlitEventKind::SaGrant,
                            node: self.node,
                            packet: flit.packet,
                            src: flit.src,
                            dest: flit.dest,
                            class: flit.class,
                            port: Port::from_index(p),
                            vc: out_vc,
                            head: flit.is_head(),
                        });
                    }
                    soa.stage_push(np0 + p, flit);
                    stage_space[p] -= 1;
                    out_budget[p] -= 1;
                    in_budget -= 1;
                    freed.push(FreedSlot {
                        in_port: ip,
                        vc: crate::cast::vc_u8(iv),
                    });
                }
            }
        }
        self.sa_port_rr = (self.sa_port_rr + 1) % PORT_COUNT;
        self.sa_vc_rr = (self.sa_vc_rr + 1) % self.num_vcs.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::RouteState;
    use crate::metrics::NullProbe;
    use crate::packet::FlitKind;
    use footprint_routing::{AllLinksUp, Dor, Footprint, NoCongestionInfo};
    use footprint_topology::{Direction, Mesh};
    use rand::SeedableRng;

    fn flit_to(dest: u16, packet: u64) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind: FlitKind::Single,
            src: NodeId(0),
            dest: NodeId(dest),
            seq: 0,
            size: 1,
            birth: 0,
            class: 0,
            vc: 0,
        }
    }

    fn setup() -> (Router, NocSoa, AnyTopology, SmallRng, Metrics, NullProbe) {
        (
            Router::new(NodeId(0), 4),
            NocSoa::new(1, 4, 4, 2),
            Mesh::square(4).into(),
            SmallRng::seed_from_u64(9),
            Metrics::new(),
            NullProbe,
        )
    }

    #[test]
    fn dor_head_gets_granted_and_traverses() {
        let (mut r, mut soa, mesh, mut rng, mut m, mut probe) = setup();
        // Head arrives on the local input VC 0, destined to n3 (east).
        soa.in_push(soa.ivc(NodeId(0), Port::Local.index(), 0), flit_to(3, 1));
        r.vc_allocate(&mut soa, &Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut m, &mut probe);
        let east = Port::Dir(Direction::East).index();
        // Granted: the local VC is now active.
        assert!(matches!(
            soa.route(soa.ivc(NodeId(0), Port::Local.index(), 0)),
            RouteState::Active { .. }
        ));
        let mut freed = Vec::new();
        r.switch_allocate(&mut soa, Dor.policy(), 2, &mut freed, &mut probe);
        assert_eq!(freed.len(), 1);
        assert_eq!(freed[0].in_port, Port::Local.index());
        // Flit staged at the east output.
        let f = r.launch(&mut soa, east).expect("flit staged");
        assert_eq!(f.dest, NodeId(3));
        assert_eq!(m.va_blocks, 0);
    }

    #[test]
    fn exhausted_outputs_block_and_are_accounted() {
        let (mut r, mut soa, mesh, mut rng, mut m, mut probe) = setup();
        let east = Port::Dir(Direction::East).index();
        // Saturate all 4 east VCs with other-destination packets.
        for v in 0..4 {
            soa.out_allocate(
                soa.ivc(NodeId(0), east, v),
                PacketId(100 + v as u64),
                NodeId(1),
            );
        }
        soa.in_push(soa.ivc(NodeId(0), Port::Local.index(), 0), flit_to(3, 1));
        r.vc_allocate(&mut soa, &Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut m, &mut probe);
        assert!(soa.waiting(soa.ivc(NodeId(0), Port::Local.index(), 0)));
        assert_eq!(m.va_blocks, 1);
        assert_eq!(m.purity_events, 1);
        assert!((m.mean_purity() - 0.0).abs() < 1e-12, "no footprints");
    }

    #[test]
    fn footprint_join_grants_draining_vc_to_same_destination() {
        let (mut r, mut soa, mesh, mut rng, mut m, mut probe) = setup();
        let algo = Footprint::new().with_join();
        let east = Port::Dir(Direction::East).index();
        // All adaptive east VCs busy; VC1 is draining traffic to n3.
        for v in 1..4 {
            let ovc = soa.ivc(NodeId(0), east, v);
            soa.out_allocate(
                ovc,
                PacketId(100 + v as u64),
                if v == 1 { NodeId(3) } else { NodeId(1) },
            );
            soa.out_consume_credit(ovc);
            if v == 1 {
                soa.out_tail_sent(ovc, algo.policy());
            }
        }
        soa.in_push(soa.ivc(NodeId(0), Port::Local.index(), 1), flit_to(3, 1));
        r.vc_allocate(&mut soa, &algo, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut m, &mut probe);
        // Granted via join onto VC1 (the footprint VC).
        match soa.route(soa.ivc(NodeId(0), Port::Local.index(), 1)) {
            RouteState::Active { out_vc, out_port, .. } => {
                assert_eq!(out_vc, 1);
                assert_eq!(out_port, Port::Dir(Direction::East));
            }
            s => panic!("expected grant, got {s:?}"),
        }
    }

    #[test]
    fn dbar_cannot_reuse_draining_vc() {
        let (mut r, mut soa, mesh, mut rng, mut m, mut probe) = setup();
        let algo = footprint_routing::Dbar;
        let east = Port::Dir(Direction::East).index();
        let north = Port::Dir(Direction::North).index();
        for port in [east, north] {
            for v in 1..4 {
                let ovc = soa.ivc(NodeId(0), port, v);
                soa.out_allocate(ovc, PacketId(100 + (port * 4 + v) as u64), NodeId(3));
                soa.out_consume_credit(ovc);
                soa.out_tail_sent(ovc, algo.policy());
            }
        }
        // Also block the escape VC on the DOR port (east).
        soa.out_allocate(soa.ivc(NodeId(0), east, 0), PacketId(99), NodeId(1));
        soa.in_push(soa.ivc(NodeId(0), Port::Local.index(), 1), flit_to(3, 1));
        r.vc_allocate(&mut soa, &algo, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut m, &mut probe);
        // DBAR has no footprint joins: the packet stays blocked even though
        // draining VCs to its destination exist.
        assert!(soa.waiting(soa.ivc(NodeId(0), Port::Local.index(), 1)));
        assert_eq!(m.va_blocks, 1);
        // Purity: all busy VCs at east + escape... footprint share is high
        // but DBAR cannot exploit it.
        assert!(m.mean_purity() > 0.5);
    }

    #[test]
    fn speedup_limits_switch_grants_per_port() {
        let (mut r, mut soa, mesh, mut rng, mut m, mut probe) = setup();
        // Three packets from three different input ports all heading east.
        let dests = 3u16;
        for (ip, pkt) in [(Port::Local.index(), 1u64), (2, 2), (3, 3)] {
            let mut f = flit_to(dests, pkt);
            f.vc = 1;
            soa.in_push(soa.ivc(NodeId(0), ip, 1), f);
        }
        r.vc_allocate(&mut soa, &Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut m, &mut probe);
        let mut freed = Vec::new();
        r.switch_allocate(&mut soa, Dor.policy(), 2, &mut freed, &mut probe);
        // Only 2 can cross to the east output this cycle (speedup 2).
        assert_eq!(freed.len(), 2);
        let east = Port::Dir(Direction::East).index();
        assert_eq!(soa.staged(soa.np(NodeId(0), east)), 2);
    }

    #[test]
    fn switch_respects_credits() {
        let (mut r, mut soa, mesh, mut rng, mut m, mut probe) = setup();
        let east = Port::Dir(Direction::East).index();
        // Put a granted packet on local VC0 → east with zero credits.
        soa.in_push(soa.ivc(NodeId(0), Port::Local.index(), 0), flit_to(3, 1));
        r.vc_allocate(&mut soa, &Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut m, &mut probe);
        let RouteState::Active { out_vc, .. } =
            soa.route(soa.ivc(NodeId(0), Port::Local.index(), 0))
        else {
            panic!("expected grant");
        };
        for _ in 0..4 {
            soa.out_consume_credit(soa.ivc(NodeId(0), east, out_vc as usize));
        }
        let mut freed = Vec::new();
        r.switch_allocate(&mut soa, Dor.policy(), 2, &mut freed, &mut probe);
        assert!(freed.is_empty(), "no credits, no traversal");
    }

    #[test]
    fn arbiter_catchup_matches_idle_dense_ticks() {
        let (mut a, mut soa, _mesh, _rng, _m, mut probe) = setup();
        let mut b = Router::new(NodeId(0), 4);
        let mut freed = Vec::new();
        for _ in 0..7 {
            a.switch_allocate(&mut soa, Dor.policy(), 2, &mut freed, &mut probe);
        }
        assert!(freed.is_empty(), "idle router must move nothing");
        b.advance_arbiters(7);
        assert_eq!((a.sa_port_rr, a.sa_vc_rr), (b.sa_port_rr, b.sa_vc_rr));
        assert_eq!(a.va_rr, b.va_rr, "va_rr must not advance while idle");
    }

    #[test]
    fn resident_flits_counts_inputs_and_stages() {
        let (mut r, mut soa, mesh, mut rng, mut m, mut probe) = setup();
        assert_eq!(r.resident_flits(&soa), 0);
        soa.in_push(soa.ivc(NodeId(0), Port::Local.index(), 0), flit_to(3, 1));
        assert_eq!(r.resident_flits(&soa), 1);
        r.vc_allocate(&mut soa, &Dor, mesh, &NoCongestionInfo, &AllLinksUp, &mut rng, &mut m, &mut probe);
        let mut freed = Vec::new();
        r.switch_allocate(&mut soa, Dor.policy(), 2, &mut freed, &mut probe);
        // Traversal moves the flit input → output stage: still resident.
        assert_eq!(r.resident_flits(&soa), 1);
        let east = Port::Dir(Direction::East).index();
        r.launch(&mut soa, east).expect("flit staged");
        assert_eq!(r.resident_flits(&soa), 0);
    }

    #[test]
    fn quiescence_detects_outstanding_state() {
        let (r, mut soa, _mesh, _rng, _m, _probe) = setup();
        assert!(r.is_quiescent(&soa));
        soa.in_push(soa.ivc(NodeId(0), 0, 0), flit_to(3, 1));
        assert!(!r.is_quiescent(&soa));
    }
}
