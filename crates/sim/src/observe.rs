//! The observability layer: flit lifecycle events, a bounded event tracer
//! with JSONL/CSV export, a stall watchdog that turns a hung network into a
//! diagnostic bundle, and a probe fan-out combinator.
//!
//! Everything here rides on the [`Probe`] hook. The per-flit event sites in
//! the network are gated by [`Probe::wants_flit_events`], sampled once per
//! cycle, so a run without a subscriber pays nothing beyond a few virtual
//! no-op calls per cycle — the hot path stays within noise of the committed
//! perf baseline.
//!
//! ```
//! use footprint_sim::{EventTrace, Network, SimConfig, SingleFlow, FlowSet};
//! use footprint_routing::RoutingSpec;
//! use footprint_topology::NodeId;
//!
//! let mut net = Network::new(SimConfig::small(), RoutingSpec::Dor.build(), 1)?;
//! let mut wl = FlowSet::new(vec![SingleFlow {
//!     src: NodeId(0), dest: NodeId(3), rate: 1.0, size: 1,
//! }]);
//! let mut trace = EventTrace::with_capacity(256);
//! net.run_probed(&mut wl, 50, &mut trace);
//! assert!(trace.len() > 0);
//! # Ok::<(), footprint_sim::ConfigError>(())
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};

use crate::metrics::{EjectedPacket, Probe, VaBlockInfo};
use crate::network::Network;
use crate::packet::PacketId;
use footprint_topology::{NodeId, Port};

/// What happened to a flit (or head packet) at an event site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitEventKind {
    /// A flit left its source onto the injection channel.
    Inject,
    /// A waiting head packet was granted an output VC (the outcome of
    /// route computation + VC allocation).
    VcGrant,
    /// A flit won switch allocation and traversed to an output stage.
    SaGrant,
    /// A flit was consumed by the destination sink.
    Eject,
    /// A head packet requested VCs and got none — carries the §4.3
    /// blocking-purity inputs. Emitted by the tracer from the
    /// [`Probe::va_blocked`] hook (not gated by `wants_flit_events`).
    VaBlock,
}

impl FlitEventKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            FlitEventKind::Inject => "inject",
            FlitEventKind::VcGrant => "vc_grant",
            FlitEventKind::SaGrant => "sa_grant",
            FlitEventKind::Eject => "eject",
            FlitEventKind::VaBlock => "va_block",
        }
    }
}

/// One flit lifecycle event, delivered through [`Probe::flit_event`].
///
/// The cycle number is not part of the event: subscribers receive
/// [`Probe::cycle_start`] and track it themselves (the network fires it
/// before any event of the cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitEvent {
    /// Event kind.
    pub kind: FlitEventKind,
    /// Node where the event occurred.
    pub node: NodeId,
    /// Packet involved.
    pub packet: PacketId,
    /// The packet's source endpoint.
    pub src: NodeId,
    /// The packet's destination endpoint.
    pub dest: NodeId,
    /// Traffic class.
    pub class: u8,
    /// Output port involved (`Local` for inject/eject).
    pub port: Port,
    /// VC involved (granted VC for `VcGrant`, carrying VC otherwise).
    pub vc: u8,
    /// `true` when the flit is a head (or single-flit) flit.
    pub head: bool,
}

/// One record of the bounded event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// Event kind.
    pub kind: FlitEventKind,
    /// Node where the event occurred.
    pub node: NodeId,
    /// Packet involved.
    pub packet: PacketId,
    /// The packet's source endpoint.
    pub src: NodeId,
    /// The packet's destination endpoint.
    pub dest: NodeId,
    /// Traffic class.
    pub class: u8,
    /// Output port involved.
    pub port: Port,
    /// VC involved.
    pub vc: u8,
    /// Busy VCs owned by the packet's destination (`VaBlock` only).
    pub footprint_vcs: u32,
    /// All busy VCs at the requested ports (`VaBlock` only).
    pub busy_vcs: u32,
}

/// A bounded flit/packet event tracer.
///
/// Keeps the most recent `capacity` events in a ring buffer (the tail of a
/// run is what matters when diagnosing a stall) and counts what it had to
/// drop. Export the buffer as JSON lines ([`EventTrace::write_jsonl`]) or
/// CSV ([`EventTrace::write_csv`]).
#[derive(Debug)]
pub struct EventTrace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    cycle: u64,
}

impl EventTrace {
    /// A tracer retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        EventTrace {
            records: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            cycle: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Events discarded because the buffer was full (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    fn record(&mut self, rec: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Writes the buffer as JSON lines (one object per event).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for r in &self.records {
            writeln!(
                w,
                "{{\"cycle\":{},\"kind\":\"{}\",\"node\":{},\"packet\":{},\
                 \"src\":{},\"dest\":{},\"class\":{},\"port\":{},\"vc\":{},\
                 \"footprint_vcs\":{},\"busy_vcs\":{}}}",
                r.cycle,
                r.kind.label(),
                r.node.index(),
                r.packet.0,
                r.src.index(),
                r.dest.index(),
                r.class,
                r.port.index(),
                r.vc,
                r.footprint_vcs,
                r.busy_vcs,
            )?;
        }
        Ok(())
    }

    /// Writes the buffer as CSV with a header row.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "cycle,kind,node,packet,src,dest,class,port,vc,footprint_vcs,busy_vcs"
        )?;
        for r in &self.records {
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{},{},{}",
                r.cycle,
                r.kind.label(),
                r.node.index(),
                r.packet.0,
                r.src.index(),
                r.dest.index(),
                r.class,
                r.port.index(),
                r.vc,
                r.footprint_vcs,
                r.busy_vcs,
            )?;
        }
        Ok(())
    }

    /// Writes the JSONL export to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_jsonl(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_jsonl(&mut f)?;
        f.flush()
    }

    /// Writes the CSV export to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_csv(&mut f)?;
        f.flush()
    }
}

impl Probe for EventTrace {
    fn cycle_start(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    fn wants_flit_events(&self) -> bool {
        true
    }

    fn flit_event(&mut self, ev: &FlitEvent) {
        self.record(TraceRecord {
            cycle: self.cycle,
            kind: ev.kind,
            node: ev.node,
            packet: ev.packet,
            src: ev.src,
            dest: ev.dest,
            class: ev.class,
            port: ev.port,
            vc: ev.vc,
            footprint_vcs: 0,
            busy_vcs: 0,
        });
    }

    fn va_blocked(&mut self, info: &VaBlockInfo) {
        self.record(TraceRecord {
            cycle: self.cycle,
            kind: FlitEventKind::VaBlock,
            node: info.node,
            packet: info.packet,
            src: info.node,
            dest: info.dest,
            class: info.class,
            port: Port::Local,
            vc: 0,
            footprint_vcs: info.footprint_vcs,
            busy_vcs: info.busy_vcs,
        });
    }
}

/// A packet the watchdog saw enter the network and not (yet) leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlightPacket {
    /// Packet id.
    pub id: PacketId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Traffic class.
    pub class: u8,
    /// Cycle the head flit was injected.
    pub injected: u64,
}

/// Detects global forward-progress loss: no flit moved anywhere (inject,
/// switch traversal or eject) for `threshold` consecutive cycles while
/// packets were in flight.
///
/// The watchdog is a [`Probe`]: attach it with
/// [`Network::run_watched`](crate::Network::run_watched), which checks it
/// every cycle and returns a [`StallDiagnostic`] bundle instead of spinning
/// forever — the debugging artifact a broken routing function or
/// flow-control bug should produce, rather than a hung multi-hour sweep.
#[derive(Debug)]
pub struct StallWatchdog {
    threshold: u64,
    cycle: u64,
    last_progress: u64,
    progressed: bool,
    in_flight: Vec<InFlightPacket>,
    stalled_at: Option<u64>,
}

impl StallWatchdog {
    /// A watchdog that trips after `threshold` cycles without any flit
    /// movement while packets are in flight.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "watchdog threshold must be positive");
        StallWatchdog {
            threshold,
            cycle: 0,
            last_progress: 0,
            progressed: false,
            in_flight: Vec::new(),
            stalled_at: None,
        }
    }

    /// The configured no-progress threshold in cycles.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// `true` once the watchdog has tripped.
    pub fn stalled(&self) -> bool {
        self.stalled_at.is_some()
    }

    /// Packets currently in flight (injected, not yet fully ejected), in
    /// injection order — the front entries are the oldest.
    pub fn in_flight(&self) -> &[InFlightPacket] {
        &self.in_flight
    }

    /// Builds the full diagnostic bundle for the current network state:
    /// occupancy map, per-router VC dumps of the congested routers, and the
    /// oldest in-flight packets.
    pub fn diagnose(&self, net: &Network) -> StallDiagnostic {
        const MAX_ROUTERS: usize = 8;
        const MAX_PACKETS: usize = 16;
        let snapshot = net.occupancy_snapshot();
        let mut congested: Vec<NodeId> = Vec::new();
        for e in &snapshot {
            if !congested.contains(&e.node) {
                congested.push(e.node);
            }
        }
        congested.truncate(MAX_ROUTERS);
        StallDiagnostic {
            cycle: net.cycle(),
            threshold: self.threshold,
            last_progress: self.last_progress,
            in_flight: self.in_flight.len(),
            source_backlog: net.source_backlog(),
            occupancy_map: net.occupancy_map(),
            router_dumps: congested.iter().map(|&n| net.dump_router(n)).collect(),
            oldest_packets: self
                .in_flight
                .iter()
                .take(MAX_PACKETS)
                .copied()
                .collect(),
            // The sentinel's wait-for analysis settles the first question a
            // stall raises: protocol deadlock, or congestion/livelock?
            deadlock: crate::sentinel::find_protocol_deadlock(net),
        }
    }
}

impl Probe for StallWatchdog {
    fn cycle_start(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.progressed = false;
    }

    fn wants_flit_events(&self) -> bool {
        true
    }

    fn flit_event(&mut self, ev: &FlitEvent) {
        self.progressed = true;
        if ev.kind == FlitEventKind::Inject && ev.head {
            self.in_flight.push(InFlightPacket {
                id: ev.packet,
                src: ev.src,
                dest: ev.dest,
                class: ev.class,
                injected: self.cycle,
            });
        }
    }

    fn packet_ejected(&mut self, packet: &EjectedPacket) {
        if let Some(pos) = self.in_flight.iter().position(|p| p.id == packet.id) {
            self.in_flight.remove(pos);
        }
    }

    fn cycle_end(&mut self, cycle: u64) {
        if self.progressed || self.in_flight.is_empty() {
            self.last_progress = cycle;
        } else if cycle - self.last_progress >= self.threshold && self.stalled_at.is_none() {
            self.stalled_at = Some(cycle);
        }
    }
}

/// Everything known about a detected stall: where flits sit, which routers
/// hold them, and which packets have been waiting longest. Rendered through
/// `Display` as the human-readable bundle.
#[derive(Debug, Clone)]
pub struct StallDiagnostic {
    /// Cycle the stall was detected.
    pub cycle: u64,
    /// The watchdog threshold that tripped.
    pub threshold: u64,
    /// Last cycle any flit moved.
    pub last_progress: u64,
    /// Packets in flight at detection time.
    pub in_flight: usize,
    /// Packets still queued at sources.
    pub source_backlog: usize,
    /// ASCII occupancy map of the mesh (from `Network::occupancy_map`).
    pub occupancy_map: String,
    /// Full VC-state dumps of the routers holding flits (capped).
    pub router_dumps: Vec<String>,
    /// The oldest in-flight packets (capped), injection order.
    pub oldest_packets: Vec<InFlightPacket>,
    /// The sentinel's wait-for-graph verdict: `Some` when a true protocol
    /// deadlock (or unroutable head) underlies the stall, `None` when no
    /// wait-for cycle exists and the stall is livelock or congestion.
    pub deadlock: Option<crate::sentinel::DeadlockFinding>,
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "STALL: no flit moved for {} cycles (detected at cycle {}, last progress at {})",
            self.cycle - self.last_progress,
            self.cycle,
            self.last_progress
        )?;
        writeln!(
            f,
            "{} packet(s) in flight, {} queued at sources; watchdog threshold {} cycles",
            self.in_flight, self.source_backlog, self.threshold
        )?;
        match &self.deadlock {
            Some(finding) => writeln!(f, "verdict: protocol deadlock cycle found — {finding}")?,
            None => writeln!(
                f,
                "verdict: no wait-for cycle: livelock or congestion (all blocked flits \
                 still have a live path forward)"
            )?,
        }
        writeln!(f, "\noccupancy map:\n{}", self.occupancy_map)?;
        if !self.oldest_packets.is_empty() {
            writeln!(f, "oldest in-flight packets:")?;
            for p in &self.oldest_packets {
                writeln!(
                    f,
                    "  packet {} {} -> {} (class {}), injected at cycle {}",
                    p.id.0, p.src, p.dest, p.class, p.injected
                )?;
            }
        }
        for dump in &self.router_dumps {
            writeln!(f, "\n{dump}")?;
        }
        Ok(())
    }
}

impl std::error::Error for StallDiagnostic {}

/// Fans events out to two probes — compose subscribers without boxing:
/// `ProbePair::new(&mut watchdog, &mut trace)`.
pub struct ProbePair<'a> {
    a: &'a mut dyn Probe,
    b: &'a mut dyn Probe,
}

impl<'a> ProbePair<'a> {
    /// Combines two probes; both receive every event.
    pub fn new(a: &'a mut dyn Probe, b: &'a mut dyn Probe) -> Self {
        ProbePair { a, b }
    }
}

impl Probe for ProbePair<'_> {
    fn cycle_start(&mut self, cycle: u64) {
        self.a.cycle_start(cycle);
        self.b.cycle_start(cycle);
    }

    fn packet_ejected(&mut self, packet: &EjectedPacket) {
        self.a.packet_ejected(packet);
        self.b.packet_ejected(packet);
    }

    fn packet_generated(&mut self, node: NodeId, packet: &crate::packet::NewPacket, cycle: u64) {
        self.a.packet_generated(node, packet, cycle);
        self.b.packet_generated(node, packet, cycle);
    }

    fn va_blocked(&mut self, info: &VaBlockInfo) {
        self.a.va_blocked(info);
        self.b.va_blocked(info);
    }

    fn wants_flit_events(&self) -> bool {
        self.a.wants_flit_events() || self.b.wants_flit_events()
    }

    fn wants_flit_events_of(&self, kind: FlitEventKind) -> bool {
        self.a.wants_flit_events_of(kind) || self.b.wants_flit_events_of(kind)
    }

    fn wants_full_tick(&self, cycle: u64) -> bool {
        self.a.wants_full_tick(cycle) || self.b.wants_full_tick(cycle)
    }

    fn flit_event(&mut self, event: &FlitEvent) {
        self.a.flit_event(event);
        self.b.flit_event(event);
    }

    fn sample(&mut self, cycle: u64, net: &Network) {
        self.a.sample(cycle, net);
        self.b.sample(cycle, net);
    }

    fn cycle_end(&mut self, cycle: u64) {
        self.a.cycle_end(cycle);
        self.b.cycle_end(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{FlowSet, SingleFlow};
    use crate::{Network, SimConfig};
    use footprint_routing::RoutingSpec;

    fn flow_net() -> (Network, FlowSet) {
        let net = Network::new(SimConfig::small(), RoutingSpec::Footprint.build(), 5).unwrap();
        let wl = FlowSet::new(vec![SingleFlow {
            src: NodeId(0),
            dest: NodeId(15),
            rate: 0.8,
            size: 2,
        }]);
        (net, wl)
    }

    #[test]
    fn trace_records_full_flit_lifecycle() {
        let (mut net, mut wl) = flow_net();
        let mut trace = EventTrace::with_capacity(4096);
        net.run_probed(&mut wl, 120, &mut trace);
        let kinds: Vec<FlitEventKind> = trace.records().map(|r| r.kind).collect();
        for kind in [
            FlitEventKind::Inject,
            FlitEventKind::VcGrant,
            FlitEventKind::SaGrant,
            FlitEventKind::Eject,
        ] {
            assert!(kinds.contains(&kind), "missing {kind:?} events");
        }
        // Cycles are recorded and non-decreasing.
        let cycles: Vec<u64> = trace.records().map(|r| r.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn trace_is_bounded_and_keeps_the_tail() {
        let (mut net, mut wl) = flow_net();
        let mut trace = EventTrace::with_capacity(16);
        net.run_probed(&mut wl, 200, &mut trace);
        assert_eq!(trace.len(), 16);
        assert!(trace.dropped() > 0);
        // The retained events are the most recent ones.
        let first_kept = trace.records().next().unwrap().cycle;
        assert!(first_kept > 0);
    }

    #[test]
    fn trace_exports_jsonl_and_csv() {
        let (mut net, mut wl) = flow_net();
        let mut trace = EventTrace::with_capacity(64);
        net.run_probed(&mut wl, 60, &mut trace);
        let mut jsonl = Vec::new();
        trace.write_jsonl(&mut jsonl).unwrap();
        let jsonl = String::from_utf8(jsonl).unwrap();
        assert_eq!(jsonl.lines().count(), trace.len());
        assert!(jsonl.lines().all(|l| l.starts_with("{\"cycle\":")));
        assert!(jsonl.contains("\"kind\":\"inject\""));
        let mut csv = Vec::new();
        trace.write_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        assert!(csv.starts_with("cycle,kind,node,"));
        assert_eq!(csv.lines().count(), trace.len() + 1);
    }

    #[test]
    fn watchdog_stays_quiet_on_healthy_traffic() {
        let (mut net, mut wl) = flow_net();
        let mut dog = StallWatchdog::new(50);
        assert!(net.run_watched(&mut wl, 400, &mut crate::NullProbe, &mut dog).is_ok());
        assert!(!dog.stalled());
    }

    #[test]
    fn watchdog_tracks_in_flight_packets() {
        let (mut net, mut wl) = flow_net();
        let mut dog = StallWatchdog::new(1_000);
        net.run_probed(&mut wl, 50, &mut dog);
        let mut none = crate::NoTraffic;
        net.run_probed(&mut none, 200, &mut dog);
        assert!(net.is_quiescent());
        assert!(dog.in_flight().is_empty(), "drained network has no in-flight packets");
    }

    #[test]
    fn probe_pair_fans_out() {
        let (mut net, mut wl) = flow_net();
        let mut t1 = EventTrace::with_capacity(1024);
        let mut t2 = EventTrace::with_capacity(1024);
        {
            let mut pair = ProbePair::new(&mut t1, &mut t2);
            net.run_probed(&mut wl, 40, &mut pair);
        }
        assert!(!t1.is_empty());
        assert_eq!(t1.len(), t2.len());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_trace_panics() {
        let _ = EventTrace::with_capacity(0);
    }
}
