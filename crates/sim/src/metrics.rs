//! Measurement: per-class counters, blocking/purity accounting and the
//! probe hook for custom instrumentation.

use crate::packet::PacketId;
use footprint_topology::NodeId;

/// A packet that finished ejecting (tail consumed by the destination sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EjectedPacket {
    /// Packet id.
    pub id: PacketId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Creation cycle at the source.
    pub birth: u64,
    /// Cycle the tail flit was consumed.
    pub ejected: u64,
    /// Packet size in flits.
    pub size: u16,
    /// Traffic class.
    pub class: u8,
}

impl EjectedPacket {
    /// End-to-end packet latency (including source queueing), in cycles.
    #[inline]
    pub fn latency(&self) -> u64 {
        self.ejected - self.birth
    }
}

/// A VC-allocation failure: a head packet requested VCs this cycle and
/// received no grant. Carries the blocking-purity inputs of §4.3: how many
/// of the busy VCs at the requested port(s) were footprint VCs for this
/// packet's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaBlockInfo {
    /// Router where the failure occurred.
    pub node: NodeId,
    /// Blocked packet.
    pub packet: PacketId,
    /// Its destination.
    pub dest: NodeId,
    /// Its traffic class.
    pub class: u8,
    /// Busy VCs owned by the same destination at the requested ports.
    pub footprint_vcs: u32,
    /// All busy VCs at the requested ports.
    pub busy_vcs: u32,
}

impl VaBlockInfo {
    /// The purity of this blocking event: footprint VCs over busy VCs
    /// (`None` when no VC was busy — pure contention, not HoL blocking).
    pub fn purity(&self) -> Option<f64> {
        if self.busy_vcs == 0 {
            None
        } else {
            Some(self.footprint_vcs as f64 / self.busy_vcs as f64)
        }
    }
}

/// Instrumentation hook invoked by the network as events occur. All methods
/// default to no-ops, so implementors opt into exactly the events they need
/// and a [`NullProbe`] run costs a handful of virtual no-op calls per cycle.
///
/// The per-flit hooks ([`Probe::flit_event`]) are additionally gated by
/// [`Probe::wants_flit_events`], sampled once per cycle: with the default
/// `false`, the network skips the call sites entirely, so tracing-grade
/// instrumentation adds nothing to the hot path unless a subscriber asks
/// for it.
pub trait Probe {
    /// A cycle is about to execute (fired before any event of that cycle).
    fn cycle_start(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// A packet finished ejecting.
    fn packet_ejected(&mut self, packet: &EjectedPacket) {
        let _ = packet;
    }

    /// A packet was generated at `node` on `cycle` (fired before the
    /// packet is enqueued at the source, so it sees drops too). Exact
    /// per-class offered-load accounting hangs off this hook; the default
    /// no-op keeps it off the hot path for probes that don't care.
    fn packet_generated(&mut self, node: NodeId, packet: &crate::packet::NewPacket, cycle: u64) {
        let _ = (node, packet, cycle);
    }

    /// A head packet failed VC allocation this cycle.
    fn va_blocked(&mut self, info: &VaBlockInfo) {
        let _ = info;
    }

    /// `true` to receive per-flit lifecycle events through
    /// [`Probe::flit_event`]. Sampled once per cycle; the default `false`
    /// keeps flit-event call sites off the hot path entirely.
    fn wants_flit_events(&self) -> bool {
        false
    }

    /// `true` to receive flit events of `kind` specifically. Each event
    /// site samples this with its own kind once per cycle, so a probe that
    /// needs only part of the lifecycle (the sentinel counts injects and
    /// ejects) can decline the grant events and keep the allocators'
    /// emission off the hot path. Defaults to [`Probe::wants_flit_events`].
    ///
    /// This gate is an optimization, not a filter contract: composed
    /// probes ([`ProbePair`]) OR their subscriptions, so `flit_event` may
    /// still deliver kinds a probe declined — subscribers must dispatch on
    /// `event.kind` regardless.
    ///
    /// [`ProbePair`]: crate::observe::ProbePair
    fn wants_flit_events_of(&self, kind: crate::observe::FlitEventKind) -> bool {
        let _ = kind;
        self.wants_flit_events()
    }

    /// `true` to force the active-set scheduler to process every router,
    /// wire and endpoint on `cycle` — a *full tick*. Sampled once at cycle
    /// start. Probes whose audits must observe the whole network on their
    /// stride (the invariant sentinel) return `true` on those cycles; the
    /// default `false` leaves idle-skipping in force. Full ticks are
    /// bit-identical to skipped ones (idle components are exact no-ops),
    /// so this is a visibility guarantee, never a semantic switch.
    fn wants_full_tick(&self, cycle: u64) -> bool {
        let _ = cycle;
        false
    }

    /// A flit lifecycle event (inject, VC grant, switch grant, eject).
    /// Only delivered while [`Probe::wants_flit_events`] returns `true`.
    fn flit_event(&mut self, event: &crate::observe::FlitEvent) {
        let _ = event;
    }

    /// Topology-wide sampling hook, fired once per cycle at cycle end with
    /// read access to the whole network (occupancy snapshots, channel
    /// loads). Subscribers apply their own stride.
    fn sample(&mut self, cycle: u64, net: &crate::network::Network) {
        let _ = (cycle, net);
    }

    /// A cycle completed.
    fn cycle_end(&mut self, cycle: u64) {
        let _ = cycle;
    }
}

/// A probe that records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Aggregate statistics for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassStats {
    /// Packets generated.
    pub generated_packets: u64,
    /// Flits generated.
    pub generated_flits: u64,
    /// Packets fully ejected.
    pub ejected_packets: u64,
    /// Flits ejected.
    pub ejected_flits: u64,
    /// Ejected packets that contribute to the latency statistics: packets
    /// *born inside* the measurement window. Warmup-born packets draining
    /// into the window still count toward `ejected_packets`/`ejected_flits`
    /// (throughput is a window property) but are excluded here, following
    /// BookSim's convention of tagging only measurement-phase packets.
    pub measured_packets: u64,
    /// Sum of packet latencies (cycles) over the measured packets.
    pub latency_sum: u128,
    /// Maximum packet latency observed among the measured packets.
    pub latency_max: u64,
    /// Packets dropped at the source because their destination was
    /// unreachable under the active fault state (counted in
    /// `generated_packets` too: generated = ejected + dropped + in-flight).
    pub dropped_packets: u64,
    /// Flits of the dropped packets.
    pub dropped_flits: u64,
    /// Source-retry attempts scheduled under
    /// [`UnreachablePolicy::Retry`](crate::UnreachablePolicy::Retry).
    pub retry_attempts: u64,
}

impl ClassStats {
    /// Mean packet latency over the measured packets, or 0 if none.
    pub fn mean_latency(&self) -> f64 {
        if self.measured_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.measured_packets as f64
        }
    }
}

/// Network-wide measurement counters. The driving code calls
/// [`Metrics::reset_window`] at the warmup/measurement boundary so the
/// counters cover only the measurement window.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    classes: Vec<ClassStats>,
    /// VC-allocation failures (blocking events) in the window.
    pub va_blocks: u64,
    /// Sum of per-event blocking purity (events with at least one busy VC).
    pub purity_sum: f64,
    /// Number of events contributing to `purity_sum`.
    pub purity_events: u64,
    /// Cycles elapsed in the window.
    pub cycles: u64,
    /// First cycle of the measurement window: packets born earlier are
    /// excluded from the latency statistics (see [`ClassStats`]).
    measure_from: u64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn class_mut(&mut self, class: u8) -> &mut ClassStats {
        let idx = class as usize;
        if idx >= self.classes.len() {
            self.classes.resize(idx + 1, ClassStats::default());
        }
        &mut self.classes[idx]
    }

    /// Number of traffic classes that have appeared so far.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Stats for one class (zeros if the class never appeared).
    pub fn class(&self, class: u8) -> ClassStats {
        self.classes
            .get(class as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Stats summed over all classes.
    pub fn total(&self) -> ClassStats {
        let mut t = ClassStats::default();
        for c in &self.classes {
            t.generated_packets += c.generated_packets;
            t.generated_flits += c.generated_flits;
            t.ejected_packets += c.ejected_packets;
            t.ejected_flits += c.ejected_flits;
            t.measured_packets += c.measured_packets;
            t.latency_sum += c.latency_sum;
            t.latency_max = t.latency_max.max(c.latency_max);
            t.dropped_packets += c.dropped_packets;
            t.dropped_flits += c.dropped_flits;
            t.retry_attempts += c.retry_attempts;
        }
        t
    }

    /// Records a generated packet.
    pub fn record_generated(&mut self, class: u8, size: u16) {
        let c = self.class_mut(class);
        c.generated_packets += 1;
        c.generated_flits += size as u64;
    }

    /// Records an ejected packet. Packets born before the measurement
    /// window ([`Metrics::reset_window_at`]) count toward the ejection
    /// totals but not the latency statistics.
    pub fn record_ejected(&mut self, p: &EjectedPacket) {
        let lat = p.latency();
        let measured = p.birth >= self.measure_from;
        let c = self.class_mut(p.class);
        c.ejected_packets += 1;
        c.ejected_flits += p.size as u64;
        if measured {
            c.measured_packets += 1;
            c.latency_sum += lat as u128;
            c.latency_max = c.latency_max.max(lat);
        }
    }

    /// Records a packet dropped at the source as unreachable.
    pub fn record_dropped(&mut self, class: u8, size: u16) {
        let c = self.class_mut(class);
        c.dropped_packets += 1;
        c.dropped_flits += size as u64;
    }

    /// Records one source-retry attempt for an unreachable packet.
    pub fn record_retry(&mut self, class: u8) {
        self.class_mut(class).retry_attempts += 1;
    }

    /// Records a VC-allocation failure.
    pub fn record_va_block(&mut self, info: &VaBlockInfo) {
        self.va_blocks += 1;
        if let Some(p) = info.purity() {
            self.purity_sum += p;
            self.purity_events += 1;
        }
    }

    /// Mean blocking purity over the window (§4.3): footprint VCs over busy
    /// VCs, averaged across blocking events.
    pub fn mean_purity(&self) -> f64 {
        if self.purity_events == 0 {
            0.0
        } else {
            self.purity_sum / self.purity_events as f64
        }
    }

    /// Degree of HoL blocking (§4.3, Figure 10(c)): impurity × number of
    /// blocking events, normalized per ejected packet.
    pub fn hol_degree(&self) -> f64 {
        let ejected = self.total().ejected_packets;
        if ejected == 0 {
            0.0
        } else {
            (1.0 - self.mean_purity()) * self.va_blocks as f64 / ejected as f64
        }
    }

    /// Accepted throughput in flits per node per cycle for class `class`.
    pub fn throughput(&self, class: u8, nodes: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.class(class).ejected_flits as f64 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Accepted throughput over all classes, flits per node per cycle.
    pub fn total_throughput(&self, nodes: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total().ejected_flits as f64 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Zeroes every counter — called at the warmup/measurement boundary.
    ///
    /// Latency statistics keep counting every ejected packet, including
    /// those born before the reset; use [`Metrics::reset_window_at`] to
    /// also exclude warmup-born packets from the latency population.
    pub fn reset_window(&mut self) {
        *self = Metrics::default();
    }

    /// Zeroes every counter and marks `cycle` as the start of the
    /// measurement window: packets born before it are excluded from the
    /// latency statistics (but still counted as ejections, since accepted
    /// throughput is a property of the window, not of packet birth).
    pub fn reset_window_at(&mut self, cycle: u64) {
        *self = Metrics::default();
        self.measure_from = cycle;
    }

    /// First cycle of the measurement window (0 unless
    /// [`Metrics::reset_window_at`] was used).
    pub fn measure_from(&self) -> u64 {
        self.measure_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(class: u8, birth: u64, ejected: u64, size: u16) -> EjectedPacket {
        EjectedPacket {
            id: PacketId(0),
            src: NodeId(0),
            dest: NodeId(1),
            birth,
            ejected,
            size,
            class,
        }
    }

    #[test]
    fn latency_accounting() {
        let mut m = Metrics::new();
        m.record_ejected(&pkt(0, 10, 30, 1));
        m.record_ejected(&pkt(0, 0, 40, 2));
        let c = m.class(0);
        assert_eq!(c.ejected_packets, 2);
        assert_eq!(c.ejected_flits, 3);
        assert!((c.mean_latency() - 30.0).abs() < 1e-9);
        assert_eq!(c.latency_max, 40);
    }

    #[test]
    fn classes_are_separate() {
        let mut m = Metrics::new();
        m.record_generated(0, 1);
        m.record_generated(1, 4);
        assert_eq!(m.class(0).generated_flits, 1);
        assert_eq!(m.class(1).generated_flits, 4);
        assert_eq!(m.total().generated_flits, 5);
        assert_eq!(m.class(7), ClassStats::default());
    }

    #[test]
    fn throughput_normalizes_by_cycles_and_nodes() {
        let mut m = Metrics::new();
        m.cycles = 100;
        m.record_ejected(&pkt(0, 0, 50, 1));
        m.record_ejected(&pkt(0, 0, 60, 1));
        // 2 flits / (100 cycles × 4 nodes) = 0.005
        assert!((m.throughput(0, 4) - 0.005).abs() < 1e-12);
        assert!((m.total_throughput(4) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn purity_math_matches_definition() {
        let mut m = Metrics::new();
        let info = VaBlockInfo {
            node: NodeId(0),
            packet: PacketId(1),
            dest: NodeId(2),
            class: 0,
            footprint_vcs: 1,
            busy_vcs: 4,
        };
        assert_eq!(info.purity(), Some(0.25));
        m.record_va_block(&info);
        m.record_va_block(&VaBlockInfo {
            footprint_vcs: 3,
            busy_vcs: 4,
            ..info
        });
        assert!((m.mean_purity() - 0.5).abs() < 1e-12);
        assert_eq!(m.va_blocks, 2);
        // HoL degree needs ejected packets.
        m.record_ejected(&pkt(0, 0, 10, 1));
        assert!((m.hol_degree() - 0.5 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn contention_without_busy_vcs_has_no_purity() {
        let info = VaBlockInfo {
            node: NodeId(0),
            packet: PacketId(1),
            dest: NodeId(2),
            class: 0,
            footprint_vcs: 0,
            busy_vcs: 0,
        };
        assert_eq!(info.purity(), None);
        let mut m = Metrics::new();
        m.record_va_block(&info);
        assert_eq!(m.purity_events, 0);
        assert_eq!(m.va_blocks, 1);
    }

    #[test]
    fn reset_window_zeroes_everything() {
        let mut m = Metrics::new();
        m.record_generated(0, 1);
        m.cycles = 5;
        m.reset_window();
        assert_eq!(m.total().generated_packets, 0);
        assert_eq!(m.cycles, 0);
    }

    #[test]
    fn warmup_born_packets_are_excluded_from_latency() {
        let mut m = Metrics::new();
        m.reset_window_at(100);
        assert_eq!(m.measure_from(), 100);
        // Born during warmup (cycle 50), drains into the window: counted
        // as an ejection, excluded from the latency population.
        m.record_ejected(&pkt(0, 50, 150, 2));
        let c = m.class(0);
        assert_eq!(c.ejected_packets, 1);
        assert_eq!(c.ejected_flits, 2);
        assert_eq!(c.measured_packets, 0);
        assert_eq!(c.latency_sum, 0);
        assert_eq!(c.latency_max, 0);
        assert_eq!(c.mean_latency(), 0.0);
        // Born inside the window: fully measured.
        m.record_ejected(&pkt(0, 100, 140, 1));
        let c = m.class(0);
        assert_eq!(c.ejected_packets, 2);
        assert_eq!(c.measured_packets, 1);
        assert!((c.mean_latency() - 40.0).abs() < 1e-12);
        assert_eq!(c.latency_max, 40);
        assert_eq!(m.total().measured_packets, 1);
    }
}
