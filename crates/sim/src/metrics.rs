//! Measurement: per-class counters, blocking/purity accounting and the
//! probe hook for custom instrumentation.

use crate::packet::PacketId;
use footprint_topology::NodeId;

/// A packet that finished ejecting (tail consumed by the destination sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EjectedPacket {
    /// Packet id.
    pub id: PacketId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dest: NodeId,
    /// Creation cycle at the source.
    pub birth: u64,
    /// Cycle the tail flit was consumed.
    pub ejected: u64,
    /// Packet size in flits.
    pub size: u16,
    /// Traffic class.
    pub class: u8,
}

impl EjectedPacket {
    /// End-to-end packet latency (including source queueing), in cycles.
    #[inline]
    pub fn latency(&self) -> u64 {
        self.ejected - self.birth
    }
}

/// A VC-allocation failure: a head packet requested VCs this cycle and
/// received no grant. Carries the blocking-purity inputs of §4.3: how many
/// of the busy VCs at the requested port(s) were footprint VCs for this
/// packet's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaBlockInfo {
    /// Router where the failure occurred.
    pub node: NodeId,
    /// Blocked packet.
    pub packet: PacketId,
    /// Its destination.
    pub dest: NodeId,
    /// Its traffic class.
    pub class: u8,
    /// Busy VCs owned by the same destination at the requested ports.
    pub footprint_vcs: u32,
    /// All busy VCs at the requested ports.
    pub busy_vcs: u32,
}

impl VaBlockInfo {
    /// The purity of this blocking event: footprint VCs over busy VCs
    /// (`None` when no VC was busy — pure contention, not HoL blocking).
    pub fn purity(&self) -> Option<f64> {
        if self.busy_vcs == 0 {
            None
        } else {
            Some(self.footprint_vcs as f64 / self.busy_vcs as f64)
        }
    }
}

/// Instrumentation hook invoked by the network as events occur. All methods
/// default to no-ops.
pub trait Probe {
    /// A packet finished ejecting.
    fn packet_ejected(&mut self, packet: &EjectedPacket) {
        let _ = packet;
    }

    /// A head packet failed VC allocation this cycle.
    fn va_blocked(&mut self, info: &VaBlockInfo) {
        let _ = info;
    }

    /// A cycle completed.
    fn cycle_end(&mut self, cycle: u64) {
        let _ = cycle;
    }
}

/// A probe that records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Aggregate statistics for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassStats {
    /// Packets generated.
    pub generated_packets: u64,
    /// Flits generated.
    pub generated_flits: u64,
    /// Packets fully ejected.
    pub ejected_packets: u64,
    /// Flits ejected.
    pub ejected_flits: u64,
    /// Sum of packet latencies (cycles) over ejected packets.
    pub latency_sum: u128,
    /// Maximum packet latency observed.
    pub latency_max: u64,
}

impl ClassStats {
    /// Mean packet latency over the ejected packets, or 0 if none ejected.
    pub fn mean_latency(&self) -> f64 {
        if self.ejected_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.ejected_packets as f64
        }
    }
}

/// Network-wide measurement counters. The driving code calls
/// [`Metrics::reset_window`] at the warmup/measurement boundary so the
/// counters cover only the measurement window.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    classes: Vec<ClassStats>,
    /// VC-allocation failures (blocking events) in the window.
    pub va_blocks: u64,
    /// Sum of per-event blocking purity (events with at least one busy VC).
    pub purity_sum: f64,
    /// Number of events contributing to `purity_sum`.
    pub purity_events: u64,
    /// Cycles elapsed in the window.
    pub cycles: u64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn class_mut(&mut self, class: u8) -> &mut ClassStats {
        let idx = class as usize;
        if idx >= self.classes.len() {
            self.classes.resize(idx + 1, ClassStats::default());
        }
        &mut self.classes[idx]
    }

    /// Stats for one class (zeros if the class never appeared).
    pub fn class(&self, class: u8) -> ClassStats {
        self.classes
            .get(class as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Stats summed over all classes.
    pub fn total(&self) -> ClassStats {
        let mut t = ClassStats::default();
        for c in &self.classes {
            t.generated_packets += c.generated_packets;
            t.generated_flits += c.generated_flits;
            t.ejected_packets += c.ejected_packets;
            t.ejected_flits += c.ejected_flits;
            t.latency_sum += c.latency_sum;
            t.latency_max = t.latency_max.max(c.latency_max);
        }
        t
    }

    /// Records a generated packet.
    pub fn record_generated(&mut self, class: u8, size: u16) {
        let c = self.class_mut(class);
        c.generated_packets += 1;
        c.generated_flits += size as u64;
    }

    /// Records an ejected packet.
    pub fn record_ejected(&mut self, p: &EjectedPacket) {
        let lat = p.latency();
        let c = self.class_mut(p.class);
        c.ejected_packets += 1;
        c.ejected_flits += p.size as u64;
        c.latency_sum += lat as u128;
        c.latency_max = c.latency_max.max(lat);
    }

    /// Records a VC-allocation failure.
    pub fn record_va_block(&mut self, info: &VaBlockInfo) {
        self.va_blocks += 1;
        if let Some(p) = info.purity() {
            self.purity_sum += p;
            self.purity_events += 1;
        }
    }

    /// Mean blocking purity over the window (§4.3): footprint VCs over busy
    /// VCs, averaged across blocking events.
    pub fn mean_purity(&self) -> f64 {
        if self.purity_events == 0 {
            0.0
        } else {
            self.purity_sum / self.purity_events as f64
        }
    }

    /// Degree of HoL blocking (§4.3, Figure 10(c)): impurity × number of
    /// blocking events, normalized per ejected packet.
    pub fn hol_degree(&self) -> f64 {
        let ejected = self.total().ejected_packets;
        if ejected == 0 {
            0.0
        } else {
            (1.0 - self.mean_purity()) * self.va_blocks as f64 / ejected as f64
        }
    }

    /// Accepted throughput in flits per node per cycle for class `class`.
    pub fn throughput(&self, class: u8, nodes: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.class(class).ejected_flits as f64 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Accepted throughput over all classes, flits per node per cycle.
    pub fn total_throughput(&self, nodes: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total().ejected_flits as f64 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Zeroes every counter — called at the warmup/measurement boundary.
    pub fn reset_window(&mut self) {
        *self = Metrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(class: u8, birth: u64, ejected: u64, size: u16) -> EjectedPacket {
        EjectedPacket {
            id: PacketId(0),
            src: NodeId(0),
            dest: NodeId(1),
            birth,
            ejected,
            size,
            class,
        }
    }

    #[test]
    fn latency_accounting() {
        let mut m = Metrics::new();
        m.record_ejected(&pkt(0, 10, 30, 1));
        m.record_ejected(&pkt(0, 0, 40, 2));
        let c = m.class(0);
        assert_eq!(c.ejected_packets, 2);
        assert_eq!(c.ejected_flits, 3);
        assert!((c.mean_latency() - 30.0).abs() < 1e-9);
        assert_eq!(c.latency_max, 40);
    }

    #[test]
    fn classes_are_separate() {
        let mut m = Metrics::new();
        m.record_generated(0, 1);
        m.record_generated(1, 4);
        assert_eq!(m.class(0).generated_flits, 1);
        assert_eq!(m.class(1).generated_flits, 4);
        assert_eq!(m.total().generated_flits, 5);
        assert_eq!(m.class(7), ClassStats::default());
    }

    #[test]
    fn throughput_normalizes_by_cycles_and_nodes() {
        let mut m = Metrics::new();
        m.cycles = 100;
        m.record_ejected(&pkt(0, 0, 50, 1));
        m.record_ejected(&pkt(0, 0, 60, 1));
        // 2 flits / (100 cycles × 4 nodes) = 0.005
        assert!((m.throughput(0, 4) - 0.005).abs() < 1e-12);
        assert!((m.total_throughput(4) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn purity_math_matches_definition() {
        let mut m = Metrics::new();
        let info = VaBlockInfo {
            node: NodeId(0),
            packet: PacketId(1),
            dest: NodeId(2),
            class: 0,
            footprint_vcs: 1,
            busy_vcs: 4,
        };
        assert_eq!(info.purity(), Some(0.25));
        m.record_va_block(&info);
        m.record_va_block(&VaBlockInfo {
            footprint_vcs: 3,
            busy_vcs: 4,
            ..info
        });
        assert!((m.mean_purity() - 0.5).abs() < 1e-12);
        assert_eq!(m.va_blocks, 2);
        // HoL degree needs ejected packets.
        m.record_ejected(&pkt(0, 0, 10, 1));
        assert!((m.hol_degree() - 0.5 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn contention_without_busy_vcs_has_no_purity() {
        let info = VaBlockInfo {
            node: NodeId(0),
            packet: PacketId(1),
            dest: NodeId(2),
            class: 0,
            footprint_vcs: 0,
            busy_vcs: 0,
        };
        assert_eq!(info.purity(), None);
        let mut m = Metrics::new();
        m.record_va_block(&info);
        assert_eq!(m.purity_events, 0);
        assert_eq!(m.va_blocks, 1);
    }

    #[test]
    fn reset_window_zeroes_everything() {
        let mut m = Metrics::new();
        m.record_generated(0, 1);
        m.cycles = 5;
        m.reset_window();
        assert_eq!(m.total().generated_packets, 0);
        assert_eq!(m.cycles, 0);
    }
}
