//! Simulator configuration (the paper's Table 2).

use core::fmt;
use footprint_topology::{AnyTopology, FaultPlanError, TopologyError, TopologySpec};

/// Microarchitectural configuration of the simulated network.
///
/// Defaults follow the paper's Table 2: 8×8 mesh, 10 VCs per physical
/// channel, 4-flit VC buffers, credit-based wormhole flow control, internal
/// speedup 2.0. The topology is carried as a validated [`TopologySpec`];
/// meshes, tori and rings all run the same datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Topology shape and dimensions (validated by [`SimConfig::validate`]).
    pub topology: TopologySpec,
    /// VCs per physical channel.
    pub num_vcs: usize,
    /// VC buffer depth in flits.
    pub vc_buffer_depth: usize,
    /// Internal speedup: maximum switch grants per input/output port per
    /// cycle. Links still carry one flit per cycle.
    pub speedup: usize,
    /// One-way link latency in cycles (1 in the paper's configuration;
    /// higher values model longer wires or repeated links and stress the
    /// credit loop).
    pub link_latency: usize,
}

impl SimConfig {
    /// The paper's baseline configuration (Table 2 defaults).
    pub fn paper_default() -> Self {
        SimConfig {
            topology: TopologySpec::mesh(8),
            num_vcs: 10,
            vc_buffer_depth: 4,
            speedup: 2,
            link_latency: 1,
        }
    }

    /// A small configuration for unit tests (4×4 mesh, 4 VCs).
    pub fn small() -> Self {
        SimConfig {
            topology: TopologySpec::mesh(4),
            num_vcs: 4,
            vc_buffer_depth: 4,
            speedup: 2,
            link_latency: 1,
        }
    }

    /// The live topology this configuration describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid — call [`SimConfig::validate`] first
    /// on untrusted configurations (the network constructor always does).
    pub fn topo(&self) -> AnyTopology {
        self.topology
            .validate()
            .expect("SimConfig topology must validate before use")
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is out of range
    /// (the topology must validate, `num_vcs` must be 1–64, buffers and
    /// speedup nonzero).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.topology.validate()?;
        if self.num_vcs == 0 || self.num_vcs > 64 {
            return Err(ConfigError::NumVcs(self.num_vcs));
        }
        if self.vc_buffer_depth == 0 {
            return Err(ConfigError::BufferDepth);
        }
        if self.speedup == 0 {
            return Err(ConfigError::Speedup);
        }
        if self.link_latency == 0 {
            return Err(ConfigError::LinkLatency);
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The topology spec does not describe a buildable fabric (degenerate
    /// dimensions, too many nodes, gated shape — see [`TopologyError`]).
    Topology(TopologyError),
    /// VC count out of the supported 1–64 range.
    NumVcs(usize),
    /// Zero VC buffer depth.
    BufferDepth,
    /// Zero internal speedup.
    Speedup,
    /// Zero link latency (combinational links are not modeled).
    LinkLatency,
    /// The routing algorithm needs more VCs than configured (Duato-based
    /// algorithms need `escape_vcs + 1`; dateline DOR on a wrapping fabric
    /// needs 2).
    TooFewVcsForRouting {
        /// Algorithm name.
        algorithm: &'static str,
        /// VCs required.
        required: usize,
        /// VCs configured.
        configured: usize,
    },
    /// The routing algorithm has no deadlock-free embedding on the
    /// configured topology (its wrap strategy is `Unsupported` and the
    /// fabric has wraparound channels).
    UnsupportedRouting {
        /// Algorithm name.
        algorithm: &'static str,
        /// The offending topology.
        topology: TopologySpec,
    },
    /// The fault plan does not fit the configured topology (see
    /// [`FaultPlanError`]).
    Fault(FaultPlanError),
    /// A traffic pattern's destination function is not defined on the
    /// configured topology (the bit-manipulating patterns need a
    /// power-of-two node count). Carried as plain data because the traffic
    /// layer sits above this crate.
    PatternMesh {
        /// Pattern display name.
        pattern: &'static str,
        /// The offending node count.
        nodes: usize,
    },
    /// An invalid workload composition (bad modulation schedule, tenant
    /// rates over the injection budget, …). Carried as a rendered message
    /// because the workload layer sits above this crate and its parameters
    /// are floats, which would break this enum's `Eq`.
    Workload(String),
}

impl From<FaultPlanError> for ConfigError {
    fn from(e: FaultPlanError) -> Self {
        ConfigError::Fault(e)
    }
}

impl From<TopologyError> for ConfigError {
    fn from(e: TopologyError) -> Self {
        ConfigError::Topology(e)
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Topology(e) => write!(f, "invalid topology: {e}"),
            ConfigError::NumVcs(n) => write!(f, "unsupported VC count {n} (expected 1..=64)"),
            ConfigError::BufferDepth => f.write_str("VC buffer depth must be nonzero"),
            ConfigError::Speedup => f.write_str("internal speedup must be nonzero"),
            ConfigError::LinkLatency => f.write_str("link latency must be at least one cycle"),
            ConfigError::TooFewVcsForRouting {
                algorithm,
                required,
                configured,
            } => write!(
                f,
                "routing algorithm `{algorithm}` needs at least {required} VCs, got {configured}"
            ),
            ConfigError::UnsupportedRouting {
                algorithm,
                topology,
            } => write!(
                f,
                "routing algorithm `{algorithm}` has no deadlock-free embedding on `{topology}`"
            ),
            ConfigError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            ConfigError::PatternMesh { pattern, nodes } => write!(
                f,
                "pattern `{pattern}` requires a power-of-two node count, got {nodes}"
            ),
            ConfigError::Workload(msg) => write!(f, "invalid workload: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::Mesh;

    #[test]
    fn paper_default_matches_table_2() {
        let c = SimConfig::paper_default();
        assert_eq!(c.topology, TopologySpec::mesh(8));
        assert_eq!(c.topo(), AnyTopology::Mesh(Mesh::square(8)));
        assert_eq!(c.num_vcs, 10);
        assert_eq!(c.vc_buffer_depth, 4);
        assert_eq!(c.speedup, 2);
        assert!(c.validate().is_ok());
        assert_eq!(SimConfig::default(), c);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut c = SimConfig::small();
        c.num_vcs = 0;
        assert_eq!(c.validate(), Err(ConfigError::NumVcs(0)));
        let mut c = SimConfig::small();
        c.num_vcs = 65;
        assert!(c.validate().is_err());
        let mut c = SimConfig::small();
        c.vc_buffer_depth = 0;
        assert_eq!(c.validate(), Err(ConfigError::BufferDepth));
        let mut c = SimConfig::small();
        c.speedup = 0;
        assert_eq!(c.validate(), Err(ConfigError::Speedup));
        let mut c = SimConfig::small();
        c.link_latency = 0;
        assert_eq!(c.validate(), Err(ConfigError::LinkLatency));
    }

    #[test]
    fn validation_rejects_degenerate_topologies() {
        for (w, h) in [(1u16, 4u16), (4, 1), (1, 1)] {
            let mut c = SimConfig::small();
            c.topology = TopologySpec::Mesh {
                width: w,
                height: h,
            };
            assert_eq!(
                c.validate(),
                Err(ConfigError::Topology(TopologyError::MeshTooSmall {
                    width: w,
                    height: h
                }))
            );
        }
        let mut c = SimConfig::small();
        c.topology = TopologySpec::Mesh {
            width: 2,
            height: 2,
        };
        assert!(c.validate().is_ok());
        let mut c = SimConfig::small();
        c.topology = TopologySpec::Torus {
            width: 2,
            height: 4,
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::Topology(TopologyError::TorusTooSmall { .. }))
        ));
    }

    #[test]
    fn wrapping_topologies_validate_and_resolve() {
        let mut c = SimConfig::small();
        c.topology = TopologySpec::torus(4);
        assert!(c.validate().is_ok());
        assert!(c.topo().wraps());
        c.topology = TopologySpec::ring(8);
        assert!(c.validate().is_ok());
        assert_eq!(c.topo().len(), 8);
    }

    #[test]
    fn fault_plan_errors_convert_and_display() {
        let e: ConfigError = FaultPlanError::DegradePeriodTooShort { period: 1 }.into();
        assert!(matches!(e, ConfigError::Fault(_)));
        assert!(e.to_string().contains("fault plan"));
    }

    #[test]
    fn workload_errors_render_their_message() {
        let e = ConfigError::Workload("tenant rates sum to 1.4".into());
        assert_eq!(e.to_string(), "invalid workload: tenant rates sum to 1.4");
    }

    #[test]
    fn errors_display_meaningfully() {
        assert!(ConfigError::NumVcs(0).to_string().contains("VC count"));
        let e = ConfigError::TooFewVcsForRouting {
            algorithm: "footprint",
            required: 2,
            configured: 1,
        };
        assert!(e.to_string().contains("footprint"));
        let e = ConfigError::UnsupportedRouting {
            algorithm: "dor-xordet",
            topology: TopologySpec::torus(8),
        };
        assert!(e.to_string().contains("dor-xordet"));
        assert!(e.to_string().contains("torus"));
        let e = ConfigError::PatternMesh {
            pattern: "shuffle",
            nodes: 36,
        };
        assert!(e.to_string().contains("shuffle"));
        assert!(e.to_string().contains("36"));
    }
}
