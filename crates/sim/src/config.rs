//! Simulator configuration (the paper's Table 2).

use core::fmt;
use footprint_topology::{FaultPlanError, Mesh};

/// Microarchitectural configuration of the simulated network.
///
/// Defaults follow the paper's Table 2: 8×8 mesh, 10 VCs per physical
/// channel, 4-flit VC buffers, credit-based wormhole flow control, internal
/// speedup 2.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Topology.
    pub mesh: Mesh,
    /// VCs per physical channel.
    pub num_vcs: usize,
    /// VC buffer depth in flits.
    pub vc_buffer_depth: usize,
    /// Internal speedup: maximum switch grants per input/output port per
    /// cycle. Links still carry one flit per cycle.
    pub speedup: usize,
    /// One-way link latency in cycles (1 in the paper's configuration;
    /// higher values model longer wires or repeated links and stress the
    /// credit loop).
    pub link_latency: usize,
}

impl SimConfig {
    /// The paper's baseline configuration (Table 2 defaults).
    pub fn paper_default() -> Self {
        SimConfig {
            mesh: Mesh::square(8),
            num_vcs: 10,
            vc_buffer_depth: 4,
            speedup: 2,
            link_latency: 1,
        }
    }

    /// A small configuration for unit tests (4×4 mesh, 4 VCs).
    pub fn small() -> Self {
        SimConfig {
            mesh: Mesh::square(4),
            num_vcs: 4,
            vc_buffer_depth: 4,
            speedup: 2,
            link_latency: 1,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is out of range
    /// (`num_vcs` must be 1–64, buffers and speedup nonzero).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mesh.width() < 2 || self.mesh.height() < 2 {
            return Err(ConfigError::MeshTooSmall {
                width: self.mesh.width(),
                height: self.mesh.height(),
            });
        }
        if self.num_vcs == 0 || self.num_vcs > 64 {
            return Err(ConfigError::NumVcs(self.num_vcs));
        }
        if self.vc_buffer_depth == 0 {
            return Err(ConfigError::BufferDepth);
        }
        if self.speedup == 0 {
            return Err(ConfigError::Speedup);
        }
        if self.link_latency == 0 {
            return Err(ConfigError::LinkLatency);
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A degenerate mesh: routing on a 1×k (or k×1) mesh has no second
    /// dimension, which breaks escape-path and turn-model assumptions.
    MeshTooSmall {
        /// Configured width.
        width: u16,
        /// Configured height.
        height: u16,
    },
    /// VC count out of the supported 1–64 range.
    NumVcs(usize),
    /// Zero VC buffer depth.
    BufferDepth,
    /// Zero internal speedup.
    Speedup,
    /// Zero link latency (combinational links are not modeled).
    LinkLatency,
    /// The routing algorithm needs more VCs than configured (Duato-based
    /// algorithms need at least 2).
    TooFewVcsForRouting {
        /// Algorithm name.
        algorithm: &'static str,
        /// VCs required.
        required: usize,
        /// VCs configured.
        configured: usize,
    },
    /// The fault plan does not fit the configured mesh (see
    /// [`FaultPlanError`]).
    Fault(FaultPlanError),
    /// A traffic pattern's destination function is not defined on the
    /// configured mesh (the bit-manipulating patterns need a power-of-two
    /// node count). Carried as plain data because the traffic layer sits
    /// above this crate.
    PatternMesh {
        /// Pattern display name.
        pattern: &'static str,
        /// The offending node count.
        nodes: usize,
    },
    /// An invalid workload composition (bad modulation schedule, tenant
    /// rates over the injection budget, …). Carried as a rendered message
    /// because the workload layer sits above this crate and its parameters
    /// are floats, which would break this enum's `Eq`.
    Workload(String),
}

impl From<FaultPlanError> for ConfigError {
    fn from(e: FaultPlanError) -> Self {
        ConfigError::Fault(e)
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MeshTooSmall { width, height } => write!(
                f,
                "mesh {width}×{height} is degenerate (both dimensions must be at least 2)"
            ),
            ConfigError::NumVcs(n) => write!(f, "unsupported VC count {n} (expected 1..=64)"),
            ConfigError::BufferDepth => f.write_str("VC buffer depth must be nonzero"),
            ConfigError::Speedup => f.write_str("internal speedup must be nonzero"),
            ConfigError::LinkLatency => f.write_str("link latency must be at least one cycle"),
            ConfigError::TooFewVcsForRouting {
                algorithm,
                required,
                configured,
            } => write!(
                f,
                "routing algorithm `{algorithm}` needs at least {required} VCs, got {configured}"
            ),
            ConfigError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            ConfigError::PatternMesh { pattern, nodes } => write!(
                f,
                "pattern `{pattern}` requires a power-of-two node count, got {nodes}"
            ),
            ConfigError::Workload(msg) => write!(f, "invalid workload: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_2() {
        let c = SimConfig::paper_default();
        assert_eq!(c.mesh, Mesh::square(8));
        assert_eq!(c.num_vcs, 10);
        assert_eq!(c.vc_buffer_depth, 4);
        assert_eq!(c.speedup, 2);
        assert!(c.validate().is_ok());
        assert_eq!(SimConfig::default(), c);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut c = SimConfig::small();
        c.num_vcs = 0;
        assert_eq!(c.validate(), Err(ConfigError::NumVcs(0)));
        let mut c = SimConfig::small();
        c.num_vcs = 65;
        assert!(c.validate().is_err());
        let mut c = SimConfig::small();
        c.vc_buffer_depth = 0;
        assert_eq!(c.validate(), Err(ConfigError::BufferDepth));
        let mut c = SimConfig::small();
        c.speedup = 0;
        assert_eq!(c.validate(), Err(ConfigError::Speedup));
        let mut c = SimConfig::small();
        c.link_latency = 0;
        assert_eq!(c.validate(), Err(ConfigError::LinkLatency));
    }

    #[test]
    fn validation_rejects_degenerate_meshes() {
        for (w, h) in [(1u16, 4u16), (4, 1), (1, 1)] {
            let mut c = SimConfig::small();
            c.mesh = Mesh::new(w, h);
            assert_eq!(
                c.validate(),
                Err(ConfigError::MeshTooSmall {
                    width: w,
                    height: h
                })
            );
        }
        let mut c = SimConfig::small();
        c.mesh = Mesh::new(2, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fault_plan_errors_convert_and_display() {
        let e: ConfigError = FaultPlanError::DegradePeriodTooShort { period: 1 }.into();
        assert!(matches!(e, ConfigError::Fault(_)));
        assert!(e.to_string().contains("fault plan"));
    }

    #[test]
    fn workload_errors_render_their_message() {
        let e = ConfigError::Workload("tenant rates sum to 1.4".into());
        assert_eq!(e.to_string(), "invalid workload: tenant rates sum to 1.4");
    }

    #[test]
    fn errors_display_meaningfully() {
        assert!(ConfigError::NumVcs(0).to_string().contains("VC count"));
        let e = ConfigError::TooFewVcsForRouting {
            algorithm: "footprint",
            required: 2,
            configured: 1,
        };
        assert!(e.to_string().contains("footprint"));
        let e = ConfigError::PatternMesh {
            pattern: "shuffle",
            nodes: 36,
        };
        assert!(e.to_string().contains("shuffle"));
        assert!(e.to_string().contains("36"));
    }
}
