//! Struct-of-arrays backing store for the per-cycle datapath.
//!
//! The routers' per-VC state — input FIFOs, route state, output credit
//! counters and owner registers, staging FIFOs — lives in flat per-network
//! arrays indexed by a `(router, port, vc)` id, not in per-router objects.
//! The dense per-cycle walks (switch allocation's route-state scan, VC
//! allocation's waiting-head scan, the routing function's class scans, the
//! side band's occupancy reads) then traverse contiguous `u8`/`u16` arrays
//! and per-port bitmasks instead of chasing one heap object per VC.
//!
//! [`Router`](crate::Router) keeps only its arbiter pointers and scratch
//! buffers; everything it arbitrates over is read from and written through
//! this store. Read-only consumers (the sentinel, state dumps, probes) go
//! through the [`InPortRef`]/[`OutPortRef`] view structs, which reproduce
//! the old object API over the arrays — the layout change is invisible to
//! them by construction.
//!
//! # Indexing
//!
//! * port id: `np = node * PORT_COUNT + port`
//! * VC id:   `ivc = np * num_vcs + vc`
//!
//! # Invariants
//!
//! * `waiting_mask[np]` bit `v` is set iff `route_kind[ivc] == Waiting`.
//! * `active_mask[np]` bit `v` is set iff `route_kind[ivc] == Active`
//!   (masks fit because the config validator caps `num_vcs` at 64).
//! * `out_idle_mask[np]` / `out_drain_mask[np]` bit `v` is set iff
//!   `out_state[ivc]` is `Idle` / `Draining`; `out_owned_mask[np]` bit `v`
//!   is set iff the VC's owner register holds a destination. The routing
//!   view's per-port class scans read these instead of walking the state
//!   bytes.
//! * `in_occupied[np]` equals the number of VCs at the port whose input
//!   FIFO is nonempty (the DBAR side band's occupancy measure, O(1) here).
//! * Input FIFOs and output stages are fixed-capacity rings inside
//!   `in_store`/`stage_store`; `*_head`/`*_len` delimit the live window.

use crate::input::RouteState;
use crate::output::OutVcState;
use crate::packet::{Flit, FlitKind, PacketId};
use footprint_routing::VcReallocationPolicy;
use footprint_topology::{NodeId, Port, PORT_COUNT};

/// Packed route state (`route_kind` values).
const ROUTE_IDLE: u8 = 0;
const ROUTE_WAITING: u8 = 1;
const ROUTE_ACTIVE: u8 = 2;

/// Packed output-VC state (`out_state` values).
const OUT_IDLE: u8 = 0;
const OUT_ACTIVE: u8 = 1;
const OUT_DRAINING: u8 = 2;

/// Owner-register sentinel for "no owner yet".
const NO_OWNER: u32 = u32::MAX;

/// A placeholder flit for unoccupied ring slots (never observable: reads
/// are bounded by `*_len`).
const VACANT: Flit = Flit {
    packet: PacketId(0),
    kind: FlitKind::Single,
    src: NodeId(0),
    dest: NodeId(0),
    seq: 0,
    size: 1,
    birth: 0,
    class: 0,
    vc: 0,
};

/// The network-wide struct-of-arrays datapath state (see module docs).
#[derive(Debug)]
pub struct NocSoa {
    num_nodes: usize,
    num_vcs: usize,
    depth: usize,
    stage_cap: usize,

    // ---- input VCs (indexed by `ivc`) ----
    in_store: Vec<Flit>,
    in_head: Vec<u16>,
    in_len: Vec<u16>,
    route_kind: Vec<u8>,
    route_port: Vec<u8>,
    route_vc: Vec<u8>,
    route_packet: Vec<u64>,

    // ---- output VCs (indexed by `ivc`) ----
    out_state: Vec<u8>,
    out_owner: Vec<u32>,
    out_packet: Vec<u64>,
    out_credits: Vec<u32>,

    // ---- per (node, port) (indexed by `np`) ----
    waiting_mask: Vec<u64>,
    active_mask: Vec<u64>,
    /// Bit `v` set iff `out_state[ivc] == OUT_IDLE`.
    out_idle_mask: Vec<u64>,
    /// Bit `v` set iff `out_state[ivc] == OUT_DRAINING`.
    out_drain_mask: Vec<u64>,
    /// Bit `v` set iff `out_owner[ivc] != NO_OWNER`.
    out_owned_mask: Vec<u64>,
    in_occupied: Vec<u16>,
    stage_store: Vec<Flit>,
    stage_head: Vec<u16>,
    stage_len: Vec<u16>,
}

impl NocSoa {
    /// Creates the store for `num_nodes` routers with `num_vcs` VCs of
    /// `depth` flits per port and `speedup`-deep output stages.
    pub fn new(num_nodes: usize, num_vcs: usize, depth: usize, speedup: usize) -> Self {
        assert!((1..=64).contains(&num_vcs), "num_vcs out of mask range");
        assert!(depth >= 1 && depth <= u16::MAX as usize);
        assert!(speedup >= 1 && speedup <= u16::MAX as usize);
        let nps = num_nodes * PORT_COUNT;
        let ivcs = nps * num_vcs;
        NocSoa {
            num_nodes,
            num_vcs,
            depth,
            stage_cap: speedup,
            in_store: vec![VACANT; ivcs * depth],
            in_head: vec![0; ivcs],
            in_len: vec![0; ivcs],
            route_kind: vec![ROUTE_IDLE; ivcs],
            route_port: vec![0; ivcs],
            route_vc: vec![0; ivcs],
            route_packet: vec![0; ivcs],
            out_state: vec![OUT_IDLE; ivcs],
            out_owner: vec![NO_OWNER; ivcs],
            out_packet: vec![0; ivcs],
            out_credits: vec![crate::cast::idx_u32(depth); ivcs],
            waiting_mask: vec![0; nps],
            active_mask: vec![0; nps],
            out_idle_mask: vec![Self::vc_range_mask(0, num_vcs); nps],
            out_drain_mask: vec![0; nps],
            out_owned_mask: vec![0; nps],
            in_occupied: vec![0; nps],
            stage_store: vec![VACANT; nps * speedup],
            stage_head: vec![0; nps],
            stage_len: vec![0; nps],
        }
    }

    /// Serializes every array verbatim (ring slots outside the live
    /// windows included), prefixed by the geometry, so a restore is an
    /// exact image of the store at snapshot time.
    pub(crate) fn snapshot_write(&self, w: &mut crate::snapshot::SnapWriter) {
        w.usize(self.num_nodes);
        w.usize(self.num_vcs);
        w.usize(self.depth);
        w.usize(self.stage_cap);
        for f in &self.in_store {
            w.flit(f);
        }
        for &v in &self.in_head {
            w.u16(v);
        }
        for &v in &self.in_len {
            w.u16(v);
        }
        for &v in &self.route_kind {
            w.u8(v);
        }
        for &v in &self.route_port {
            w.u8(v);
        }
        for &v in &self.route_vc {
            w.u8(v);
        }
        for &v in &self.route_packet {
            w.u64(v);
        }
        for &v in &self.out_state {
            w.u8(v);
        }
        for &v in &self.out_owner {
            w.u32(v);
        }
        for &v in &self.out_packet {
            w.u64(v);
        }
        for &v in &self.out_credits {
            w.u32(v);
        }
        for &v in &self.waiting_mask {
            w.u64(v);
        }
        for &v in &self.active_mask {
            w.u64(v);
        }
        for &v in &self.out_idle_mask {
            w.u64(v);
        }
        for &v in &self.out_drain_mask {
            w.u64(v);
        }
        for &v in &self.out_owned_mask {
            w.u64(v);
        }
        for &v in &self.in_occupied {
            w.u16(v);
        }
        for f in &self.stage_store {
            w.flit(f);
        }
        for &v in &self.stage_head {
            w.u16(v);
        }
        for &v in &self.stage_len {
            w.u16(v);
        }
    }

    /// Restores a [`NocSoa::snapshot_write`] image in place. The geometry
    /// echo must match this store exactly.
    pub(crate) fn snapshot_read(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), String> {
        r.expect_usize(self.num_nodes, "soa nodes")?;
        r.expect_usize(self.num_vcs, "soa vcs")?;
        r.expect_usize(self.depth, "soa depth")?;
        r.expect_usize(self.stage_cap, "soa stage cap")?;
        for f in &mut self.in_store {
            *f = r.flit()?;
        }
        for v in &mut self.in_head {
            *v = r.u16()?;
        }
        for v in &mut self.in_len {
            *v = r.u16()?;
        }
        for v in &mut self.route_kind {
            *v = r.u8()?;
        }
        for v in &mut self.route_port {
            *v = r.u8()?;
        }
        for v in &mut self.route_vc {
            *v = r.u8()?;
        }
        for v in &mut self.route_packet {
            *v = r.u64()?;
        }
        for v in &mut self.out_state {
            *v = r.u8()?;
        }
        for v in &mut self.out_owner {
            *v = r.u32()?;
        }
        for v in &mut self.out_packet {
            *v = r.u64()?;
        }
        for v in &mut self.out_credits {
            *v = r.u32()?;
        }
        for v in &mut self.waiting_mask {
            *v = r.u64()?;
        }
        for v in &mut self.active_mask {
            *v = r.u64()?;
        }
        for v in &mut self.out_idle_mask {
            *v = r.u64()?;
        }
        for v in &mut self.out_drain_mask {
            *v = r.u64()?;
        }
        for v in &mut self.out_owned_mask {
            *v = r.u64()?;
        }
        for v in &mut self.in_occupied {
            *v = r.u16()?;
        }
        for f in &mut self.stage_store {
            *f = r.flit()?;
        }
        for v in &mut self.stage_head {
            *v = r.u16()?;
        }
        for v in &mut self.stage_len {
            *v = r.u16()?;
        }
        Ok(())
    }

    /// VCs per physical channel.
    #[inline]
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    /// Input-VC buffer depth (= downstream credit capacity).
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Flat port id of `(node, port)`.
    #[inline]
    pub fn np(&self, node: NodeId, port: usize) -> usize {
        node.index() * PORT_COUNT + port
    }

    /// Flat VC id of `(node, port, vc)`.
    #[inline]
    pub fn ivc(&self, node: NodeId, port: usize, vc: usize) -> usize {
        (node.index() * PORT_COUNT + port) * self.num_vcs + vc
    }

    // ------------------------------------------------------------------
    // Input VCs
    // ------------------------------------------------------------------

    /// Number of buffered flits in input VC `ivc`.
    #[inline]
    pub fn in_len(&self, ivc: usize) -> usize {
        self.in_len[ivc] as usize
    }

    /// The front flit of input VC `ivc`, if any.
    #[inline]
    pub fn in_front(&self, ivc: usize) -> Option<&Flit> {
        if self.in_len[ivc] == 0 {
            None
        } else {
            Some(&self.in_store[ivc * self.depth + self.in_head[ivc] as usize])
        }
    }

    /// The buffered flits of input VC `ivc`, front first.
    pub fn in_flits(&self, ivc: usize) -> impl Iterator<Item = &Flit> {
        let base = ivc * self.depth;
        let head = self.in_head[ivc] as usize;
        let depth = self.depth;
        (0..self.in_len[ivc] as usize).map(move |k| &self.in_store[base + (head + k) % depth])
    }

    /// Routing/allocation state of input VC `ivc`.
    #[inline]
    pub fn route(&self, ivc: usize) -> RouteState {
        match self.route_kind[ivc] {
            ROUTE_IDLE => RouteState::Idle,
            ROUTE_WAITING => RouteState::Waiting,
            _ => RouteState::Active {
                packet: PacketId(self.route_packet[ivc]),
                out_port: Port::from_index(self.route_port[ivc] as usize),
                out_vc: self.route_vc[ivc],
            },
        }
    }

    /// `true` if a head flit waits for VC allocation in `ivc`.
    #[inline]
    pub fn waiting(&self, ivc: usize) -> bool {
        self.route_kind[ivc] == ROUTE_WAITING
    }

    /// The `(out_port, out_vc)` of an *active* grant, without rebuilding
    /// the [`RouteState`] enum — the switch allocator's inner loop reads
    /// this once per granted VC per cycle.
    ///
    /// Callers must know the VC is active (e.g. from [`active_mask`]);
    /// debug builds verify it.
    ///
    /// [`active_mask`]: NocSoa::active_mask
    #[inline]
    pub(crate) fn route_target(&self, ivc: usize) -> (usize, u8) {
        debug_assert_eq!(self.route_kind[ivc], ROUTE_ACTIVE);
        (self.route_port[ivc] as usize, self.route_vc[ivc])
    }

    /// Bitmask of the port's VCs holding a waiting head.
    #[inline]
    pub fn waiting_mask(&self, np: usize) -> u64 {
        self.waiting_mask[np]
    }

    /// Bitmask of the port's VCs streaming under an active grant.
    #[inline]
    pub fn active_mask(&self, np: usize) -> u64 {
        self.active_mask[np]
    }

    /// Number of the port's input VCs holding at least one flit (the DBAR
    /// side band's congestion measure).
    #[inline]
    pub fn in_occupied(&self, np: usize) -> usize {
        self.in_occupied[np] as usize
    }

    /// Accepts an arriving flit into input VC `ivc`; transitions
    /// `Idle → Waiting` when a head flit reaches the front.
    ///
    /// # Panics
    ///
    /// Panics on buffer overflow — arrivals are gated by credits upstream,
    /// so an overflow indicates a flow-control bug.
    pub fn in_push(&mut self, ivc: usize, flit: Flit) {
        let len = self.in_len[ivc] as usize;
        assert!(len < self.depth, "input VC overflow");
        let slot = ivc * self.depth + (self.in_head[ivc] as usize + len) % self.depth;
        self.in_store[slot] = flit;
        self.in_len[ivc] = (len + 1) as u16;
        if len == 0 {
            self.in_occupied[ivc / self.num_vcs] += 1;
        }
        self.refresh_route_state(ivc);
    }

    /// Records a VC-allocation grant for the waiting head in `ivc`.
    ///
    /// # Panics
    ///
    /// Panics if the VC holds no waiting head.
    pub fn in_grant(&mut self, ivc: usize, out_port: Port, out_vc: u8) {
        assert_eq!(
            self.route_kind[ivc], ROUTE_WAITING,
            "grant without a waiting head"
        );
        let head = self.in_front(ivc).expect("waiting implies non-empty");
        self.route_packet[ivc] = head.packet.0;
        self.route_port[ivc] = out_port.index() as u8;
        self.route_vc[ivc] = out_vc;
        self.route_kind[ivc] = ROUTE_ACTIVE;
        let (np, bit) = (ivc / self.num_vcs, 1u64 << (ivc % self.num_vcs));
        self.waiting_mask[np] &= !bit;
        self.active_mask[np] |= bit;
    }

    /// Pops the front flit of `ivc` after a switch grant. When a tail
    /// leaves, the route state resets so a queued-behind packet's head can
    /// be routed next.
    ///
    /// # Panics
    ///
    /// Panics if the VC is empty or not `Active`.
    pub fn in_pop_granted(&mut self, ivc: usize) -> Flit {
        assert_eq!(
            self.route_kind[ivc], ROUTE_ACTIVE,
            "pop without an active grant"
        );
        let len = self.in_len[ivc] as usize;
        assert!(len > 0, "pop from empty input VC");
        let head = self.in_head[ivc] as usize;
        let flit = self.in_store[ivc * self.depth + head];
        debug_assert_eq!(
            flit.packet.0, self.route_packet[ivc],
            "front flit not of the active packet"
        );
        self.in_head[ivc] = ((head + 1) % self.depth) as u16;
        self.in_len[ivc] = (len - 1) as u16;
        let (np, bit) = (ivc / self.num_vcs, 1u64 << (ivc % self.num_vcs));
        if len == 1 {
            self.in_occupied[np] -= 1;
        }
        if flit.is_tail() {
            self.route_kind[ivc] = ROUTE_IDLE;
            self.active_mask[np] &= !bit;
            self.refresh_route_state(ivc);
        }
        flit
    }

    /// `Idle → Waiting` when a head flit sits at the front of `ivc`.
    fn refresh_route_state(&mut self, ivc: usize) {
        if self.route_kind[ivc] == ROUTE_IDLE {
            if let Some(f) = self.in_front(ivc) {
                if f.is_head() {
                    self.route_kind[ivc] = ROUTE_WAITING;
                    self.waiting_mask[ivc / self.num_vcs] |= 1 << (ivc % self.num_vcs);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Output VCs
    // ------------------------------------------------------------------

    /// Allocation state of output VC `ivc`.
    #[inline]
    pub fn out_state(&self, ivc: usize) -> OutVcState {
        match self.out_state[ivc] {
            OUT_IDLE => OutVcState::Idle,
            OUT_ACTIVE => OutVcState::Active(PacketId(self.out_packet[ivc])),
            _ => OutVcState::Draining,
        }
    }

    /// Owner register of output VC `ivc` (persists after the VC drains;
    /// see [`crate::OutVc`]).
    #[inline]
    pub fn out_owner(&self, ivc: usize) -> Option<NodeId> {
        let o = self.out_owner[ivc];
        (o != NO_OWNER).then_some(NodeId(o as u16))
    }

    /// Remaining downstream credits of output VC `ivc`.
    #[inline]
    pub fn out_credits(&self, ivc: usize) -> u32 {
        self.out_credits[ivc]
    }

    /// `true` if a fresh (non-join) allocation of `ivc` is permitted under
    /// `policy`.
    #[inline]
    pub fn out_idle_for(&self, ivc: usize, policy: VcReallocationPolicy) -> bool {
        match self.out_state[ivc] {
            OUT_IDLE => true,
            OUT_ACTIVE => false,
            _ => policy == VcReallocationPolicy::NonAtomic,
        }
    }

    /// `true` if a packet destined to `dest` may join output VC `ivc`
    /// right now (draining, owner matches, a credit available).
    #[inline]
    pub fn out_joinable_by(&self, ivc: usize, dest: NodeId) -> bool {
        self.out_state[ivc] == OUT_DRAINING
            && self.out_owner[ivc] == u32::from(dest.0)
            && self.out_credits[ivc] > 0
    }

    /// Allocates output VC `ivc` to packet `pkt` destined to `dest`.
    ///
    /// # Panics
    ///
    /// Panics if a packet is still streaming through the VC.
    pub fn out_allocate(&mut self, ivc: usize, pkt: PacketId, dest: NodeId) {
        assert_ne!(self.out_state[ivc], OUT_ACTIVE, "allocating an active VC");
        self.out_state[ivc] = OUT_ACTIVE;
        self.out_packet[ivc] = pkt.0;
        self.out_owner[ivc] = u32::from(dest.0);
        let (np, bit) = (ivc / self.num_vcs, 1u64 << (ivc % self.num_vcs));
        self.out_idle_mask[np] &= !bit;
        self.out_drain_mask[np] &= !bit;
        self.out_owned_mask[np] |= bit;
    }

    /// Consumes one credit of `ivc` as a flit commits to it.
    ///
    /// # Panics
    ///
    /// Panics if no credits remain.
    pub fn out_consume_credit(&mut self, ivc: usize) {
        assert!(self.out_credits[ivc] > 0, "credit underflow");
        self.out_credits[ivc] -= 1;
    }

    /// Marks the current packet's tail as forwarded on `ivc`.
    pub fn out_tail_sent(&mut self, ivc: usize, policy: VcReallocationPolicy) {
        debug_assert_eq!(self.out_state[ivc], OUT_ACTIVE);
        let all_credits = self.out_credits[ivc] as usize == self.depth;
        let next = match policy {
            VcReallocationPolicy::Atomic => OUT_DRAINING,
            VcReallocationPolicy::NonAtomic if all_credits => OUT_IDLE,
            VcReallocationPolicy::NonAtomic => OUT_DRAINING,
        };
        self.out_state[ivc] = next;
        let (np, bit) = (ivc / self.num_vcs, 1u64 << (ivc % self.num_vcs));
        if next == OUT_IDLE {
            self.out_idle_mask[np] |= bit;
        } else {
            self.out_drain_mask[np] |= bit;
        }
    }

    /// Returns one credit to `ivc` (a downstream slot freed); may complete
    /// a drain.
    ///
    /// # Panics
    ///
    /// Panics on credit overflow.
    pub fn out_return_credit(&mut self, ivc: usize) {
        assert!((self.out_credits[ivc] as usize) < self.depth, "credit overflow");
        self.out_credits[ivc] += 1;
        if self.out_state[ivc] == OUT_DRAINING && self.out_credits[ivc] as usize == self.depth {
            // The owner register persists: the VC stays this destination's
            // footprint VC until another packet claims it.
            self.out_state[ivc] = OUT_IDLE;
            let (np, bit) = (ivc / self.num_vcs, 1u64 << (ivc % self.num_vcs));
            self.out_drain_mask[np] &= !bit;
            self.out_idle_mask[np] |= bit;
        }
    }

    /// The output-VC class arrays for one port, for the routing-view bulk
    /// scans: `(&out_state[..], &out_owner[..])`, both `num_vcs` long.
    #[inline]
    pub(crate) fn out_port_slices(&self, np: usize) -> (&[u8], &[u32]) {
        let lo = np * self.num_vcs;
        let hi = lo + self.num_vcs;
        (&self.out_state[lo..hi], &self.out_owner[lo..hi])
    }

    /// Packed idle test used by the bulk routing scans — must agree with
    /// [`NocSoa::out_idle_for`].
    #[inline]
    pub(crate) fn packed_idle(state: u8, policy: VcReallocationPolicy) -> bool {
        state == OUT_IDLE || (state == OUT_DRAINING && policy == VcReallocationPolicy::NonAtomic)
    }

    /// Bits `lo..hi` set (the caller-visible VC index window of a scan).
    #[inline]
    pub(crate) fn vc_range_mask(lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi <= 64);
        let upto = if hi >= 64 { !0u64 } else { (1u64 << hi) - 1 };
        upto & !((1u64 << lo) - 1)
    }

    /// Bitmask of port `np`'s output VCs a fresh allocation may claim under
    /// `policy` — the incremental equivalent of [`NocSoa::out_idle_for`]
    /// over the whole port.
    #[inline]
    pub(crate) fn out_idle_mask_for(&self, np: usize, policy: VcReallocationPolicy) -> u64 {
        match policy {
            VcReallocationPolicy::Atomic => self.out_idle_mask[np],
            VcReallocationPolicy::NonAtomic => self.out_idle_mask[np] | self.out_drain_mask[np],
        }
    }

    /// Bitmask of port `np`'s output VCs whose owner register is set.
    #[inline]
    pub(crate) fn out_owned_mask(&self, np: usize) -> u64 {
        self.out_owned_mask[np]
    }

    // ------------------------------------------------------------------
    // Output stages
    // ------------------------------------------------------------------

    /// Free slots in the staging FIFO of port `np`.
    #[inline]
    pub fn stage_space(&self, np: usize) -> usize {
        self.stage_cap - self.stage_len[np] as usize
    }

    /// Number of staged flits at port `np`.
    #[inline]
    pub fn staged(&self, np: usize) -> usize {
        self.stage_len[np] as usize
    }

    /// The staged flits of port `np`, next-to-launch first.
    pub fn staged_flits(&self, np: usize) -> impl Iterator<Item = &Flit> {
        let base = np * self.stage_cap;
        let head = self.stage_head[np] as usize;
        let cap = self.stage_cap;
        (0..self.stage_len[np] as usize).map(move |k| &self.stage_store[base + (head + k) % cap])
    }

    /// Pushes a flit that just crossed the switch into port `np`'s stage.
    ///
    /// # Panics
    ///
    /// Panics if the stage is full.
    pub fn stage_push(&mut self, np: usize, flit: Flit) {
        let len = self.stage_len[np] as usize;
        assert!(len < self.stage_cap, "stage overflow");
        let slot = np * self.stage_cap + (self.stage_head[np] as usize + len) % self.stage_cap;
        self.stage_store[slot] = flit;
        self.stage_len[np] = (len + 1) as u16;
    }

    /// Pops the next flit to launch onto port `np`'s link.
    pub fn stage_pop(&mut self, np: usize) -> Option<Flit> {
        let len = self.stage_len[np] as usize;
        if len == 0 {
            return None;
        }
        let head = self.stage_head[np] as usize;
        let flit = self.stage_store[np * self.stage_cap + head];
        self.stage_head[np] = ((head + 1) % self.stage_cap) as u16;
        self.stage_len[np] = (len - 1) as u16;
        Some(flit)
    }

    // ------------------------------------------------------------------
    // Per-router aggregates
    // ------------------------------------------------------------------

    /// Flits resident in `node`'s router: buffered in input VCs or staged
    /// at output ports (the active-set scheduler's work measure).
    pub fn resident_flits(&self, node: NodeId) -> usize {
        let np0 = node.index() * PORT_COUNT;
        let vc0 = np0 * self.num_vcs;
        let in_sum: usize = self.in_len[vc0..vc0 + PORT_COUNT * self.num_vcs]
            .iter()
            .map(|&l| l as usize)
            .sum();
        let staged: usize = self.stage_len[np0..np0 + PORT_COUNT]
            .iter()
            .map(|&l| l as usize)
            .sum();
        in_sum + staged
    }

    /// `true` when no flits, grants or outstanding credits remain anywhere
    /// in `node`'s router.
    pub fn router_quiescent(&self, node: NodeId) -> bool {
        let np0 = node.index() * PORT_COUNT;
        let vc0 = np0 * self.num_vcs;
        let nvc = PORT_COUNT * self.num_vcs;
        self.in_occupied[np0..np0 + PORT_COUNT].iter().all(|&c| c == 0)
            && self.waiting_mask[np0..np0 + PORT_COUNT].iter().all(|&m| m == 0)
            && self.active_mask[np0..np0 + PORT_COUNT].iter().all(|&m| m == 0)
            && self.stage_len[np0..np0 + PORT_COUNT].iter().all(|&l| l == 0)
            && self.out_state[vc0..vc0 + nvc].iter().all(|&s| s == OUT_IDLE)
            && self.out_credits[vc0..vc0 + nvc]
                .iter()
                .all(|&c| c as usize == self.depth)
    }

    /// Read-only view of one input port.
    #[inline]
    pub fn input(&self, node: NodeId, port: usize) -> InPortRef<'_> {
        InPortRef {
            soa: self,
            np: self.np(node, port),
        }
    }

    /// Read-only view of one output port.
    #[inline]
    pub fn output(&self, node: NodeId, port: usize) -> OutPortRef<'_> {
        OutPortRef {
            soa: self,
            np: self.np(node, port),
        }
    }

    /// Total nodes the store was sized for.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

/// Read-only view of one input VC (the old `InVc` API over the arrays).
#[derive(Clone, Copy)]
pub struct InVcRef<'a> {
    soa: &'a NocSoa,
    ivc: usize,
}

impl<'a> InVcRef<'a> {
    /// Number of buffered flits.
    #[inline]
    pub fn len(&self) -> usize {
        self.soa.in_len(self.ivc)
    }

    /// `true` when no flits are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer capacity in flits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.soa.depth
    }

    /// The front flit, if any.
    #[inline]
    pub fn front(&self) -> Option<&'a Flit> {
        self.soa.in_front(self.ivc)
    }

    /// Current routing state.
    #[inline]
    pub fn route(&self) -> RouteState {
        self.soa.route(self.ivc)
    }

    /// `true` if a head flit is waiting for VC allocation.
    #[inline]
    pub fn waiting(&self) -> bool {
        self.soa.waiting(self.ivc)
    }

    /// `true` if the VC holds nothing and no grant is outstanding.
    pub fn is_quiescent(&self) -> bool {
        self.is_empty() && self.route() == RouteState::Idle
    }

    /// The buffered flits, front first.
    pub fn flits(&self) -> impl Iterator<Item = &'a Flit> {
        self.soa.in_flits(self.ivc)
    }

    /// Appends the buffered flit destinations to `out` (FIFO order).
    pub fn dests_into(&self, out: &mut Vec<NodeId>) {
        out.extend(self.flits().map(|f| f.dest));
    }
}

/// Read-only view of one output VC (the old `OutVc` read API).
#[derive(Clone, Copy)]
pub struct OutVcRef<'a> {
    soa: &'a NocSoa,
    ivc: usize,
}

impl OutVcRef<'_> {
    /// Current allocation state.
    #[inline]
    pub fn state(&self) -> OutVcState {
        self.soa.out_state(self.ivc)
    }

    /// Destination owner register.
    #[inline]
    pub fn owner(&self) -> Option<NodeId> {
        self.soa.out_owner(self.ivc)
    }

    /// Remaining downstream credits.
    #[inline]
    pub fn credits(&self) -> u32 {
        self.soa.out_credits(self.ivc)
    }

    /// Downstream buffer capacity.
    #[inline]
    pub fn capacity(&self) -> u32 {
        crate::cast::idx_u32(self.soa.depth)
    }

    /// `true` if a fresh allocation is permitted under `policy`.
    #[inline]
    pub fn idle_for(&self, policy: VcReallocationPolicy) -> bool {
        self.soa.out_idle_for(self.ivc, policy)
    }

    /// `true` if a `dest` packet may join right now.
    #[inline]
    pub fn joinable_by(&self, dest: NodeId) -> bool {
        self.soa.out_joinable_by(self.ivc, dest)
    }

    /// `true` if the VC holds no traffic and all credits are home.
    pub fn is_quiescent(&self) -> bool {
        self.state() == OutVcState::Idle && self.credits() as usize == self.soa.depth
    }
}

/// Read-only view of one input port.
#[derive(Clone, Copy)]
pub struct InPortRef<'a> {
    soa: &'a NocSoa,
    np: usize,
}

impl<'a> InPortRef<'a> {
    /// One VC.
    #[inline]
    pub fn vc(&self, vc: usize) -> InVcRef<'a> {
        debug_assert!(vc < self.soa.num_vcs);
        InVcRef {
            soa: self.soa,
            ivc: self.np * self.soa.num_vcs + vc,
        }
    }

    /// All VCs, ascending.
    pub fn vcs(&self) -> impl Iterator<Item = InVcRef<'a>> + '_ {
        (0..self.soa.num_vcs).map(|v| self.vc(v))
    }

    /// Number of VCs whose buffers hold at least one flit.
    #[inline]
    pub fn occupied_vcs(&self) -> usize {
        self.soa.in_occupied(self.np)
    }

    /// `true` when all VCs are quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.soa.in_occupied[self.np] == 0
            && self.soa.waiting_mask[self.np] == 0
            && self.soa.active_mask[self.np] == 0
    }
}

/// Read-only view of one output port.
#[derive(Clone, Copy)]
pub struct OutPortRef<'a> {
    soa: &'a NocSoa,
    np: usize,
}

impl<'a> OutPortRef<'a> {
    /// One VC.
    #[inline]
    pub fn vc(&self, vc: usize) -> OutVcRef<'a> {
        debug_assert!(vc < self.soa.num_vcs);
        OutVcRef {
            soa: self.soa,
            ivc: self.np * self.soa.num_vcs + vc,
        }
    }

    /// All VCs, ascending.
    pub fn vcs(&self) -> impl Iterator<Item = OutVcRef<'a>> + '_ {
        (0..self.soa.num_vcs).map(|v| self.vc(v))
    }

    /// Number of staged flits.
    #[inline]
    pub fn staged(&self) -> usize {
        self.soa.staged(self.np)
    }

    /// The staged flits, next-to-launch first.
    pub fn staged_flits(&self) -> impl Iterator<Item = &'a Flit> {
        self.soa.staged_flits(self.np)
    }

    /// `true` when every VC is quiescent and the stage is empty.
    pub fn is_quiescent(&self) -> bool {
        self.soa.stage_len[self.np] == 0 && self.vcs().all(|v| v.is_quiescent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::Direction;

    fn flit(packet: u64, kind: FlitKind, seq: u16) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            src: NodeId(0),
            dest: NodeId(3),
            seq,
            size: 3,
            birth: 0,
            class: 0,
            vc: 0,
        }
    }

    fn soa() -> NocSoa {
        NocSoa::new(1, 4, 4, 2)
    }

    #[test]
    fn head_arrival_triggers_waiting_and_masks() {
        let mut s = soa();
        let ivc = s.ivc(NodeId(0), 0, 1);
        assert_eq!(s.route(ivc), RouteState::Idle);
        s.in_push(ivc, flit(1, FlitKind::Head, 0));
        assert!(s.waiting(ivc));
        assert_eq!(s.waiting_mask(0), 0b10);
        assert_eq!(s.in_occupied(0), 1);
    }

    #[test]
    fn grant_then_stream_then_reset_on_tail() {
        let mut s = soa();
        let ivc = s.ivc(NodeId(0), 0, 0);
        s.in_push(ivc, flit(1, FlitKind::Head, 0));
        s.in_push(ivc, flit(1, FlitKind::Body, 1));
        s.in_push(ivc, flit(1, FlitKind::Tail, 2));
        s.in_grant(ivc, Port::Dir(Direction::East), 2);
        assert!(matches!(s.route(ivc), RouteState::Active { out_vc: 2, .. }));
        assert_eq!(s.active_mask(0), 0b1);
        assert!(s.in_pop_granted(ivc).is_head());
        assert_eq!(s.in_pop_granted(ivc).kind, FlitKind::Body);
        assert!(s.in_pop_granted(ivc).is_tail());
        assert_eq!(s.route(ivc), RouteState::Idle);
        assert_eq!((s.waiting_mask(0), s.active_mask(0)), (0, 0));
        assert_eq!(s.in_occupied(0), 0);
        assert!(s.router_quiescent(NodeId(0)));
    }

    #[test]
    fn queued_packet_becomes_waiting_after_tail_leaves() {
        let mut s = soa();
        let ivc = s.ivc(NodeId(0), 0, 0);
        let mut single = flit(1, FlitKind::Single, 0);
        single.size = 1;
        s.in_push(ivc, single);
        s.in_grant(ivc, Port::Dir(Direction::East), 1);
        let mut f = flit(2, FlitKind::Single, 0);
        f.size = 1;
        s.in_push(ivc, f);
        assert!(matches!(
            s.route(ivc),
            RouteState::Active { packet: PacketId(1), .. }
        ));
        assert!(s.in_pop_granted(ivc).is_tail());
        assert!(s.waiting(ivc), "queued head promoted");
        assert_eq!(s.waiting_mask(0), 0b1);
        assert_eq!(s.active_mask(0), 0);
    }

    #[test]
    fn ring_wraps_across_capacity() {
        let mut s = soa();
        let ivc = s.ivc(NodeId(0), 2, 3);
        for round in 0..3u64 {
            for k in 0..4u64 {
                let mut f = flit(round * 4 + k, FlitKind::Single, 0);
                f.size = 1;
                s.in_push(ivc, f);
            }
            assert_eq!(s.in_len(ivc), 4);
            let dests: Vec<u64> = s.in_flits(ivc).map(|f| f.packet.0).collect();
            assert_eq!(dests, (round * 4..round * 4 + 4).collect::<Vec<_>>());
            for _ in 0..4 {
                s.in_grant(ivc, Port::Local, 0);
                s.in_pop_granted(ivc);
            }
        }
        assert!(s.router_quiescent(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut s = NocSoa::new(1, 1, 1, 1);
        let ivc = s.ivc(NodeId(0), 0, 0);
        let mut f = flit(1, FlitKind::Single, 0);
        f.size = 1;
        s.in_push(ivc, f);
        s.in_push(ivc, f);
    }

    #[test]
    #[should_panic(expected = "grant without a waiting head")]
    fn grant_without_head_panics() {
        let mut s = soa();
        s.in_grant(0, Port::Local, 0);
    }

    #[test]
    fn atomic_out_vc_lifecycle() {
        let mut s = NocSoa::new(1, 4, 2, 2);
        let ivc = s.ivc(NodeId(0), 1, 2);
        assert!(s.out_idle_for(ivc, VcReallocationPolicy::Atomic));
        s.out_allocate(ivc, PacketId(1), NodeId(9));
        assert_eq!(s.out_state(ivc), OutVcState::Active(PacketId(1)));
        assert_eq!(s.out_owner(ivc), Some(NodeId(9)));
        s.out_consume_credit(ivc);
        s.out_tail_sent(ivc, VcReallocationPolicy::Atomic);
        assert_eq!(s.out_state(ivc), OutVcState::Draining);
        assert!(!s.out_idle_for(ivc, VcReallocationPolicy::Atomic));
        assert!(s.out_joinable_by(ivc, NodeId(9)));
        assert!(!s.out_joinable_by(ivc, NodeId(8)));
        s.out_return_credit(ivc);
        assert_eq!(s.out_state(ivc), OutVcState::Idle);
        assert_eq!(s.out_owner(ivc), Some(NodeId(9)), "owner register persists");
        assert!(s.output(NodeId(0), 1).vc(2).is_quiescent());
    }

    #[test]
    fn non_atomic_reallocates_before_drain() {
        let mut s = NocSoa::new(1, 4, 2, 2);
        let ivc = 0;
        s.out_allocate(ivc, PacketId(1), NodeId(9));
        s.out_consume_credit(ivc);
        s.out_tail_sent(ivc, VcReallocationPolicy::NonAtomic);
        assert!(s.out_idle_for(ivc, VcReallocationPolicy::NonAtomic));
        s.out_allocate(ivc, PacketId(2), NodeId(4));
        assert_eq!(s.out_state(ivc), OutVcState::Active(PacketId(2)));
        assert_eq!(s.out_owner(ivc), Some(NodeId(4)));
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn credit_underflow_panics() {
        let mut s = NocSoa::new(1, 1, 1, 1);
        s.out_consume_credit(0);
        s.out_consume_credit(0);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_panics() {
        let mut s = NocSoa::new(1, 1, 1, 1);
        s.out_return_credit(0);
    }

    #[test]
    fn stage_ring_respects_capacity_and_order() {
        let mut s = NocSoa::new(1, 2, 4, 2);
        let np = s.np(NodeId(0), 3);
        assert_eq!(s.stage_space(np), 2);
        let mut f1 = flit(1, FlitKind::Single, 0);
        f1.seq = 0;
        let mut f2 = flit(1, FlitKind::Single, 0);
        f2.seq = 1;
        s.stage_push(np, f1);
        s.stage_push(np, f2);
        assert_eq!(s.stage_space(np), 0);
        let seqs: Vec<u16> = s.staged_flits(np).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(s.stage_pop(np).unwrap().seq, 0);
        assert_eq!(s.stage_pop(np).unwrap().seq, 1);
        assert!(s.stage_pop(np).is_none());
    }

    #[test]
    #[should_panic(expected = "stage overflow")]
    fn stage_overflow_panics() {
        let mut s = NocSoa::new(1, 1, 4, 1);
        let f = flit(1, FlitKind::Single, 0);
        s.stage_push(0, f);
        s.stage_push(0, f);
    }

    #[test]
    fn occupancy_counter_matches_scan() {
        let mut s = soa();
        let port = s.input(NodeId(0), 0);
        assert_eq!(port.occupied_vcs(), 0);
        s.in_push(s.ivc(NodeId(0), 0, 1), flit(1, FlitKind::Head, 0));
        s.in_push(s.ivc(NodeId(0), 0, 1), flit(1, FlitKind::Body, 1));
        s.in_push(s.ivc(NodeId(0), 0, 3), flit(2, FlitKind::Head, 0));
        let port = s.input(NodeId(0), 0);
        assert_eq!(port.occupied_vcs(), 2);
        assert_eq!(
            port.vcs().filter(|v| !v.is_empty()).count(),
            port.occupied_vcs()
        );
        assert!(!port.is_quiescent());
    }
}
