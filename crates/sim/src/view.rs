//! [`PortStateView`] implementations over live simulator state.

use crate::output::{OutVc, OutVcState, OutputPort};
use footprint_routing::{PortStateView, VcId, VcReallocationPolicy, VcView};
use footprint_topology::Port;

fn view_of(vc: &OutVc, policy: VcReallocationPolicy) -> VcView {
    VcView {
        idle: vc.idle_for(policy),
        owner: vc.owner(),
        credits: vc.credits(),
        joinable: vc.state() == OutVcState::Draining && vc.credits() > 0,
    }
}

/// View over a router's five output ports.
pub struct RouterOutputsView<'a> {
    ports: &'a [OutputPort],
    policy: VcReallocationPolicy,
    num_vcs: usize,
}

impl<'a> RouterOutputsView<'a> {
    /// Wraps the output-port array of one router.
    pub fn new(ports: &'a [OutputPort], policy: VcReallocationPolicy, num_vcs: usize) -> Self {
        RouterOutputsView {
            ports,
            policy,
            num_vcs,
        }
    }
}

impl PortStateView for RouterOutputsView<'_> {
    fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    fn vc(&self, port: Port, vc: VcId) -> VcView {
        view_of(self.ports[port.index()].vc(vc.index()), self.policy)
    }
}

/// View over a source's injection channel (only [`Port::Local`] is valid).
pub struct InjectionView<'a> {
    vcs: &'a [OutVc],
    policy: VcReallocationPolicy,
}

impl<'a> InjectionView<'a> {
    /// Wraps a source's output-VC array.
    pub fn new(vcs: &'a [OutVc], policy: VcReallocationPolicy) -> Self {
        InjectionView { vcs, policy }
    }
}

impl PortStateView for InjectionView<'_> {
    fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    fn vc(&self, port: Port, vc: VcId) -> VcView {
        assert_eq!(port, Port::Local, "injection view has only the local port");
        view_of(&self.vcs[vc.index()], self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use footprint_topology::{Direction, NodeId};

    #[test]
    fn router_view_reflects_vc_state() {
        let mut ports: Vec<OutputPort> = (0..5).map(|_| OutputPort::new(2, 4, 2)).collect();
        ports[1].vc_mut(1).allocate(PacketId(1), NodeId(9));
        ports[1].vc_mut(1).consume_credit();
        let view = RouterOutputsView::new(&ports, VcReallocationPolicy::Atomic, 2);
        let v = view.vc(Port::Dir(Direction::East), VcId(1));
        assert!(!v.idle);
        assert_eq!(v.owner, Some(NodeId(9)));
        assert_eq!(v.credits, 3);
        assert!(!v.joinable, "active, not draining");
        let free = view.vc(Port::Dir(Direction::East), VcId(0));
        assert!(free.idle);
        assert_eq!(view.num_vcs(), 2);
    }

    #[test]
    fn draining_vc_is_joinable_in_view() {
        let mut ports: Vec<OutputPort> = (0..5).map(|_| OutputPort::new(2, 4, 2)).collect();
        let vc = ports[2].vc_mut(1);
        vc.allocate(PacketId(1), NodeId(9));
        vc.consume_credit();
        vc.tail_sent(VcReallocationPolicy::Atomic);
        let view = RouterOutputsView::new(&ports, VcReallocationPolicy::Atomic, 2);
        let v = view.vc(Port::Dir(Direction::West), VcId(1));
        assert!(v.joinable);
        assert!(!v.idle);
        assert!(v.is_footprint_for(NodeId(9)));
    }

    #[test]
    #[should_panic(expected = "only the local port")]
    fn injection_view_rejects_direction_ports() {
        let vcs = vec![OutVc::new(4)];
        let view = InjectionView::new(&vcs, VcReallocationPolicy::Atomic);
        let _ = view.vc(Port::Dir(Direction::East), VcId(0));
    }

    #[test]
    fn injection_view_reads_local_port() {
        let vcs = vec![OutVc::new(4), OutVc::new(4)];
        let view = InjectionView::new(&vcs, VcReallocationPolicy::NonAtomic);
        assert!(view.vc(Port::Local, VcId(1)).idle);
        assert_eq!(view.num_vcs(), 2);
    }
}
