//! [`PortStateView`] implementations over live simulator state.
//!
//! [`RouterOutputsView`] is backed by the struct-of-arrays store and
//! overrides the trait's bulk scan methods (`idle_count`, `class_counts`,
//! `for_each_in_class`) with flat walks over the packed per-port state and
//! owner arrays — the routing algorithms' per-cycle class scans never
//! touch a per-VC object or a vtable entry per VC. The per-VC [`vc`]
//! accessor remains for the rare single-VC probes (and as the semantic
//! reference the bulk overrides are tested against).
//!
//! [`vc`]: PortStateView::vc

use crate::output::{OutVc, OutVcState};
use crate::soa::NocSoa;
use footprint_routing::{PortStateView, VcClass, VcId, VcReallocationPolicy, VcView};
use footprint_topology::{NodeId, Port};

fn view_of(vc: &OutVc, policy: VcReallocationPolicy) -> VcView {
    VcView {
        idle: vc.idle_for(policy),
        owner: vc.owner(),
        credits: vc.credits(),
        joinable: vc.state() == OutVcState::Draining && vc.credits() > 0,
    }
}

/// View over a router's five output ports in the SoA store.
pub struct RouterOutputsView<'a> {
    soa: &'a NocSoa,
    node: NodeId,
    policy: VcReallocationPolicy,
    num_vcs: usize,
}

impl<'a> RouterOutputsView<'a> {
    /// Wraps the output-VC state of router `node`.
    pub fn new(soa: &'a NocSoa, node: NodeId, policy: VcReallocationPolicy) -> Self {
        RouterOutputsView {
            soa,
            node,
            policy,
            num_vcs: soa.num_vcs(),
        }
    }
}

impl PortStateView for RouterOutputsView<'_> {
    fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    fn vc(&self, port: Port, vc: VcId) -> VcView {
        let ivc = self.soa.ivc(self.node, port.index(), vc.index());
        VcView {
            idle: self.soa.out_idle_for(ivc, self.policy),
            owner: self.soa.out_owner(ivc),
            credits: self.soa.out_credits(ivc),
            joinable: self.soa.out_state(ivc) == OutVcState::Draining
                && self.soa.out_credits(ivc) > 0,
        }
    }

    fn idle_count(&self, port: Port, lo: usize, hi: usize) -> usize {
        let np = self.soa.np(self.node, port.index());
        let range = NocSoa::vc_range_mask(lo, hi);
        (self.soa.out_idle_mask_for(np, self.policy) & range).count_ones() as usize
    }

    fn footprint_count(&self, port: Port, dest: NodeId, lo: usize, hi: usize) -> usize {
        self.class_masks(port, dest, lo, hi).1.count_ones() as usize
    }

    fn class_counts(&self, port: Port, dest: NodeId, lo: usize, hi: usize) -> (usize, usize, usize) {
        let (idle, fp) = self.class_masks(port, dest, lo, hi);
        let total = NocSoa::vc_range_mask(lo, hi).count_ones() as usize;
        let (idle, fp) = (idle.count_ones() as usize, fp.count_ones() as usize);
        (idle, fp, total - idle - fp)
    }

    fn class_masks(&self, port: Port, dest: NodeId, lo: usize, hi: usize) -> (u64, u64) {
        let np = self.soa.np(self.node, port.index());
        let range = NocSoa::vc_range_mask(lo, hi);
        // Footprint VCs are the owner-register matches; the owner mask
        // narrows the scan to VCs that ever carried a packet.
        let (_, owners) = self.soa.out_port_slices(np);
        let d = u32::from(dest.0);
        let mut fp = 0u64;
        let mut m = self.soa.out_owned_mask(np) & range;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            if owners[v] == d {
                fp |= 1 << v;
            }
        }
        let idle = self.soa.out_idle_mask_for(np, self.policy) & range & !fp;
        (idle, fp)
    }

    fn for_each_in_class(
        &self,
        port: Port,
        dest: NodeId,
        lo: usize,
        hi: usize,
        class: VcClass,
        limit: usize,
        emit: &mut dyn FnMut(VcId),
    ) {
        let (idle, fp) = self.class_masks(port, dest, lo, hi);
        let mut bits = match class {
            VcClass::Idle => idle,
            VcClass::Footprint => fp,
            VcClass::Busy => NocSoa::vc_range_mask(lo, hi) & !idle & !fp,
        };
        let mut emitted = 0;
        while bits != 0 && emitted < limit {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            emit(VcId::from_index(v));
            emitted += 1;
        }
    }
}

/// View over a source's injection channel (only [`Port::Local`] is valid).
pub struct InjectionView<'a> {
    vcs: &'a [OutVc],
    policy: VcReallocationPolicy,
}

impl<'a> InjectionView<'a> {
    /// Wraps a source's output-VC array.
    pub fn new(vcs: &'a [OutVc], policy: VcReallocationPolicy) -> Self {
        InjectionView { vcs, policy }
    }
}

impl PortStateView for InjectionView<'_> {
    fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    fn vc(&self, port: Port, vc: VcId) -> VcView {
        assert_eq!(port, Port::Local, "injection view has only the local port");
        view_of(&self.vcs[vc.index()], self.policy)
    }

    fn class_masks(&self, port: Port, dest: NodeId, lo: usize, hi: usize) -> (u64, u64) {
        assert_eq!(port, Port::Local, "injection view has only the local port");
        let (mut idle, mut fp) = (0u64, 0u64);
        for (v, vc) in self.vcs[lo..hi].iter().enumerate() {
            if vc.owner() == Some(dest) {
                fp |= 1 << (lo + v);
            } else if vc.idle_for(self.policy) {
                idle |= 1 << (lo + v);
            }
        }
        (idle, fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use footprint_topology::Direction;

    fn soa() -> NocSoa {
        NocSoa::new(1, 4, 4, 2)
    }

    #[test]
    fn router_view_reflects_vc_state() {
        let mut s = soa();
        let ivc = s.ivc(NodeId(0), Port::Dir(Direction::East).index(), 1);
        s.out_allocate(ivc, PacketId(1), NodeId(9));
        s.out_consume_credit(ivc);
        let view = RouterOutputsView::new(&s, NodeId(0), VcReallocationPolicy::Atomic);
        let v = view.vc(Port::Dir(Direction::East), VcId(1));
        assert!(!v.idle);
        assert_eq!(v.owner, Some(NodeId(9)));
        assert_eq!(v.credits, 3);
        assert!(!v.joinable, "active, not draining");
        let free = view.vc(Port::Dir(Direction::East), VcId(0));
        assert!(free.idle);
        assert_eq!(view.num_vcs(), 4);
    }

    #[test]
    fn draining_vc_is_joinable_in_view() {
        let mut s = soa();
        let ivc = s.ivc(NodeId(0), Port::Dir(Direction::West).index(), 1);
        s.out_allocate(ivc, PacketId(1), NodeId(9));
        s.out_consume_credit(ivc);
        s.out_tail_sent(ivc, VcReallocationPolicy::Atomic);
        let view = RouterOutputsView::new(&s, NodeId(0), VcReallocationPolicy::Atomic);
        let v = view.vc(Port::Dir(Direction::West), VcId(1));
        assert!(v.joinable);
        assert!(!v.idle);
        assert!(v.is_footprint_for(NodeId(9)));
    }

    /// The bulk overrides must agree exactly with the per-VC defaults they
    /// replaced (which still run through `vc`).
    #[test]
    fn bulk_scans_match_per_vc_classification() {
        let mut s = soa();
        let e = Port::Dir(Direction::East);
        let ep = e.index();
        // VC0 idle, VC1 active to dest 9, VC2 draining to dest 7 (footprint
        // for 7, non-atomic-idle otherwise), VC3 active to dest 7.
        s.out_allocate(s.ivc(NodeId(0), ep, 1), PacketId(1), NodeId(9));
        let v2 = s.ivc(NodeId(0), ep, 2);
        s.out_allocate(v2, PacketId(2), NodeId(7));
        s.out_consume_credit(v2);
        s.out_tail_sent(v2, VcReallocationPolicy::Atomic);
        s.out_allocate(s.ivc(NodeId(0), ep, 3), PacketId(3), NodeId(7));
        for policy in [VcReallocationPolicy::Atomic, VcReallocationPolicy::NonAtomic] {
            let view = RouterOutputsView::new(&s, NodeId(0), policy);
            for dest in [NodeId(7), NodeId(9), NodeId(5)] {
                for lo in 0..2 {
                    // Reference: the trait's default per-vc scans.
                    let (mut idle, mut fp, mut busy) = (0, 0, 0);
                    for v in lo..4 {
                        match view.vc(e, VcId::from_index(v)).class_for(dest) {
                            VcClass::Idle => idle += 1,
                            VcClass::Footprint => fp += 1,
                            VcClass::Busy => busy += 1,
                        }
                    }
                    assert_eq!(view.class_counts(e, dest, lo, 4), (idle, fp, busy));
                    // The raw masks drive every bulk scan (and the routing
                    // crate's tiering): each bit must match the per-VC
                    // classification exactly.
                    let (idle_mask, fp_mask) = view.class_masks(e, dest, lo, 4);
                    for v in lo..4 {
                        let class = view.vc(e, VcId::from_index(v)).class_for(dest);
                        assert_eq!(idle_mask >> v & 1 == 1, class == VcClass::Idle);
                        assert_eq!(fp_mask >> v & 1 == 1, class == VcClass::Footprint);
                    }
                    let ref_idle = (lo..4)
                        .filter(|&v| view.vc(e, VcId::from_index(v)).idle)
                        .count();
                    assert_eq!(view.idle_count(e, lo, 4), ref_idle);
                    for class in [VcClass::Idle, VcClass::Footprint, VcClass::Busy] {
                        let mut bulk = Vec::new();
                        view.for_each_in_class(e, dest, lo, 4, class, usize::MAX, &mut |v| {
                            bulk.push(v)
                        });
                        let reference: Vec<VcId> = (lo..4)
                            .map(VcId::from_index)
                            .filter(|&v| view.vc(e, v).class_for(dest) == class)
                            .collect();
                        assert_eq!(bulk, reference, "{policy:?} {dest:?} {class:?}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "only the local port")]
    fn injection_view_rejects_direction_ports() {
        let vcs = vec![OutVc::new(4)];
        let view = InjectionView::new(&vcs, VcReallocationPolicy::Atomic);
        let _ = view.vc(Port::Dir(Direction::East), VcId(0));
    }

    #[test]
    fn injection_view_reads_local_port() {
        let vcs = vec![OutVc::new(4), OutVc::new(4)];
        let view = InjectionView::new(&vcs, VcReallocationPolicy::NonAtomic);
        assert!(view.vc(Port::Local, VcId(1)).idle);
        assert_eq!(view.num_vcs(), 2);
    }
}
