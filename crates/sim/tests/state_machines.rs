//! Property tests for the simulator's flow-control state machines: output
//! VC lifecycle, input VC FIFO discipline and the wire pipeline.

use footprint_routing::VcReallocationPolicy;
use footprint_sim::{Flit, FlitKind, NocSoa, OutVc, OutVcState, PacketId, Pipe};
use footprint_topology::NodeId;
use proptest::prelude::*;

/// Random operation against an OutVc.
#[derive(Debug, Clone, Copy)]
enum Op {
    Allocate(u16, u16), // packet id, dest
    Consume,
    TailSent,
    ReturnCredit,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..100, 0u16..16).prop_map(|(p, d)| Op::Allocate(p, d)),
        Just(Op::Consume),
        Just(Op::TailSent),
        Just(Op::ReturnCredit),
    ]
}

proptest! {
    /// Credits never under/overflow and the state machine never wedges when
    /// operations are applied only in legal states (as the router does).
    #[test]
    fn outvc_invariants(
        ops in prop::collection::vec(arb_op(), 1..200),
        atomic in any::<bool>(),
    ) {
        let policy = if atomic {
            VcReallocationPolicy::Atomic
        } else {
            VcReallocationPolicy::NonAtomic
        };
        let capacity = 4;
        let mut vc = OutVc::new(capacity);
        let mut outstanding = 0u32; // flits sent minus credits returned
        for op in ops {
            match op {
                Op::Allocate(p, d) => {
                    let fresh = vc.idle_for(policy);
                    let join = vc.joinable_by(NodeId(d));
                    if fresh || join {
                        vc.allocate(PacketId(p as u64), NodeId(d));
                        prop_assert_eq!(vc.owner(), Some(NodeId(d)));
                        prop_assert!(matches!(vc.state(), OutVcState::Active(_)));
                    }
                }
                Op::Consume => {
                    if matches!(vc.state(), OutVcState::Active(_)) && vc.credits() > 0 {
                        vc.consume_credit();
                        outstanding += 1;
                    }
                }
                Op::TailSent => {
                    if matches!(vc.state(), OutVcState::Active(_)) {
                        vc.tail_sent(policy);
                        prop_assert!(!matches!(vc.state(), OutVcState::Active(_)));
                    }
                }
                Op::ReturnCredit => {
                    if outstanding > 0 {
                        vc.return_credit();
                        outstanding -= 1;
                    }
                }
            }
            prop_assert!(vc.credits() <= capacity);
            prop_assert_eq!(vc.credits() + outstanding, capacity, "credit conservation");
            // Atomic policy: a drained VC in Idle state implies full credits.
            if vc.state() == OutVcState::Idle && policy == VcReallocationPolicy::Atomic {
                prop_assert!(vc.idle_for(policy));
            }
        }
    }

    /// Input VC FIFO (one ring of the SoA store): packets stream in order,
    /// route state resets exactly at tails, and buffered flit count is
    /// conserved.
    #[test]
    fn invc_fifo_discipline(sizes in prop::collection::vec(1u16..4, 1..6)) {
        let capacity: usize = sizes.iter().map(|&s| s as usize).sum();
        let mut soa = NocSoa::new(1, 1, capacity.max(1), 1);
        let ivc = soa.ivc(NodeId(0), 0, 0);
        // Enqueue all packets back to back (multi-packet FIFO).
        for (pid, &size) in sizes.iter().enumerate() {
            for seq in 0..size {
                soa.in_push(ivc, Flit {
                    packet: PacketId(pid as u64),
                    kind: FlitKind::for_position(seq, size),
                    src: NodeId(0),
                    dest: NodeId(1),
                    seq,
                    size,
                    birth: 0,
                    class: 0,
                    vc: 0,
                });
            }
        }
        prop_assert_eq!(soa.in_len(ivc), capacity);
        // Drain packet by packet.
        for (pid, &size) in sizes.iter().enumerate() {
            prop_assert!(soa.waiting(ivc), "head of packet {pid} must be waiting");
            soa.in_grant(ivc, footprint_topology::Port::Local, 0);
            for seq in 0..size {
                let f = soa.in_pop_granted(ivc);
                prop_assert_eq!(f.packet, PacketId(pid as u64));
                prop_assert_eq!(f.seq, seq);
            }
        }
        prop_assert!(soa.input(NodeId(0), 0).vc(0).is_quiescent());
    }

    /// Wire pipeline: exactly-once, in-order delivery with one cycle latency.
    #[test]
    fn pipe_delivers_exactly_once_in_order(batches in prop::collection::vec(
        prop::collection::vec(0u32..1000, 0..5), 1..20,
    )) {
        let mut pipe: Pipe<u32> = Pipe::new();
        let mut sent: Vec<u32> = Vec::new();
        let mut received: Vec<u32> = Vec::new();
        for batch in &batches {
            for &x in batch {
                pipe.push(x);
                sent.push(x);
            }
            pipe.tick();
            received.extend(pipe.drain());
        }
        pipe.tick();
        received.extend(pipe.drain());
        prop_assert_eq!(received, sent);
    }
}
