//! Integration tests for the invariant sentinel: a clean run stays quiet,
//! a broken routing function trips the wait-for-graph detector, and
//! deliberate state corruption is caught at the exact cycle it happens.

use footprint_routing::{
    Priority, RoutingAlgorithm, RoutingCtx, RoutingSpec, VcId, VcReallocationPolicy, VcRequest,
};
use footprint_sim::{
    DeadlockFinding, FlowSet, Network, OutVcState, Sentinel, SentinelViolation, SimConfig,
    SingleFlow, StallWatchdog,
};
use footprint_topology::{NodeId, Port, TopologySpec, DIRECTIONS, PORT_COUNT};
use rand::RngCore;

/// A deliberately broken algorithm (same shape as the obs_smoke hook):
/// injection works, but `route` never emits a request, so every head waits
/// forever at its first router with an empty request set.
struct BlackHole;

impl RoutingAlgorithm for BlackHole {
    fn name(&self) -> &'static str {
        "blackhole"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::Atomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn route(&self, _ctx: &RoutingCtx<'_>, _rng: &mut dyn RngCore, _out: &mut Vec<VcRequest>) {}
}

/// A clockwise unidirectional ring over the 2×2 mesh (0 → 1 → 3 → 2 → 0)
/// with a single VC and no escape channel: the textbook cyclic-dependency
/// deadlock that VC ordering exists to prevent.
struct BadRing;

impl BadRing {
    fn next(node: NodeId) -> NodeId {
        match node.0 {
            0 => NodeId(1),
            1 => NodeId(3),
            3 => NodeId(2),
            2 => NodeId(0),
            n => panic!("BadRing is a 2x2 fixture, got node {n}"),
        }
    }
}

impl RoutingAlgorithm for BadRing {
    fn name(&self) -> &'static str {
        "bad-ring"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::NonAtomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn route(&self, ctx: &RoutingCtx<'_>, _rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        if ctx.current == ctx.dest {
            for v in 0..ctx.num_vcs {
                out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::High));
            }
            return;
        }
        let next = Self::next(ctx.current);
        let dir = DIRECTIONS
            .into_iter()
            .find(|&d| ctx.topo.neighbor(ctx.current, d) == Some(next))
            .expect("ring successor is a mesh neighbor");
        for v in 0..ctx.num_vcs {
            out.push(VcRequest::new(Port::Dir(dir), VcId::from_index(v), Priority::Low));
        }
    }
}

fn small_footprint_net(seed: u64) -> Network {
    let algo = RoutingSpec::Footprint.build();
    Network::new(SimConfig::small(), algo, seed).expect("valid config")
}

fn crossing_flows(rate: f64, size: u16) -> FlowSet {
    FlowSet::new(vec![
        SingleFlow {
            src: NodeId(0),
            dest: NodeId(15),
            rate,
            size,
        },
        SingleFlow {
            src: NodeId(5),
            dest: NodeId(10),
            rate,
            size,
        },
        SingleFlow {
            src: NodeId(12),
            dest: NodeId(3),
            rate,
            size,
        },
    ])
}

/// A healthy footprint run, audited every cycle, reports nothing.
#[test]
fn clean_run_reports_no_violation() {
    let mut net = small_footprint_net(0xC1EA);
    let mut wl = crossing_flows(0.3, 4);
    let mut sentinel = Sentinel::with_intervals(1, 1);
    for _ in 0..600 {
        net.step_probed(&mut wl, &mut sentinel);
        assert!(
            !sentinel.tripped(),
            "spurious violation at cycle {}: {}",
            net.cycle(),
            sentinel.report().unwrap()
        );
    }
    assert!(sentinel.injected() > 0, "workload never injected");
}

/// The BlackHole router yields a `DeadRoute` finding — an input VC whose
/// request set is empty — at the first audit after the head goes waiting,
/// and the report pins the first failing cycle.
#[test]
fn black_hole_router_trips_dead_route() {
    let algo: Box<dyn RoutingAlgorithm> = Box::new(BlackHole);
    let mut net = Network::new(SimConfig::small(), algo, 7).expect("valid config");
    let mut wl = FlowSet::new(vec![SingleFlow {
        src: NodeId(0),
        dest: NodeId(15),
        rate: 1.0,
        size: 1,
    }]);
    let mut sentinel = Sentinel::with_intervals(1, 1);
    let mut tripped_after = None;
    for _ in 0..100 {
        net.step_probed(&mut wl, &mut sentinel);
        if sentinel.tripped() {
            tripped_after = Some(net.cycle());
            break;
        }
    }
    let tripped_after = tripped_after.expect("sentinel never tripped on BlackHole");
    let report = sentinel.report().expect("tripped implies report");
    // The sample for cycle N runs before the cycle counter advances to N+1,
    // so the first failing cycle is exactly the step that tripped.
    assert_eq!(report.cycle, tripped_after - 1, "first-failure cycle");
    assert!(
        tripped_after < 20,
        "detection should follow the first stuck head within a few cycles, took {tripped_after}"
    );
    match &report.violation {
        SentinelViolation::ProtocolDeadlock(DeadlockFinding::DeadRoute(m)) => {
            assert_eq!(m.node, NodeId(0), "head is stuck at its first router");
            assert_eq!(m.dest, NodeId(15));
        }
        other => panic!("expected a dead-route finding, got: {other}"),
    }
    let rendered = report.to_string();
    assert!(rendered.contains("dead route"), "{rendered}");
    assert!(!report.excerpt.is_empty(), "excerpt should dump state");
}

/// Four packets chasing each other around a one-VC ring produce a true
/// wait-for cycle; both the sentinel and the stall watchdog report it.
#[test]
fn ring_deadlock_trips_wait_for_cycle() {
    let cfg = SimConfig {
        topology: TopologySpec::mesh(2),
        num_vcs: 1,
        vc_buffer_depth: 2,
        speedup: 2,
        link_latency: 1,
    };
    let algo: Box<dyn RoutingAlgorithm> = Box::new(BadRing);
    let mut net = Network::new(cfg, algo, 3).expect("valid config");
    let mut wl = FlowSet::new(vec![
        SingleFlow {
            src: NodeId(0),
            dest: NodeId(3),
            rate: 1.0,
            size: 8,
        },
        SingleFlow {
            src: NodeId(1),
            dest: NodeId(2),
            rate: 1.0,
            size: 8,
        },
        SingleFlow {
            src: NodeId(3),
            dest: NodeId(0),
            rate: 1.0,
            size: 8,
        },
        SingleFlow {
            src: NodeId(2),
            dest: NodeId(1),
            rate: 1.0,
            size: 8,
        },
    ]);
    let mut sentinel = Sentinel::with_intervals(1, 1);
    for _ in 0..4000 {
        net.step_probed(&mut wl, &mut sentinel);
        if sentinel.tripped() {
            break;
        }
    }
    let report = sentinel.report().expect("ring never deadlocked");
    let members = match &report.violation {
        SentinelViolation::ProtocolDeadlock(DeadlockFinding::Cycle(members)) => members,
        other => panic!("expected a wait-for cycle, got: {other}"),
    };
    assert!(
        members.len() >= 2,
        "a cycle involves at least two waiters, got {}",
        members.len()
    );
    // Once deadlocked, the watchdog's diagnosis agrees with the sentinel.
    let diag = StallWatchdog::new(16).diagnose(&net);
    let rendered = diag.to_string();
    assert!(
        rendered.contains("protocol deadlock cycle found"),
        "{rendered}"
    );
}

/// A congested-but-live network gets the livelock/congestion verdict, not
/// a deadlock verdict.
#[test]
fn live_network_diagnosis_reports_no_cycle() {
    let mut net = small_footprint_net(11);
    let mut wl = crossing_flows(0.8, 4);
    net.run(&mut wl, 300);
    let diag = StallWatchdog::new(16).diagnose(&net);
    let rendered = diag.to_string();
    assert!(rendered.contains("no wait-for cycle"), "{rendered}");
}

/// Stealing one credit from an active output VC breaks per-channel credit
/// conservation at exactly the corrupted cycle.
#[test]
fn stolen_credit_is_caught_at_the_corrupted_cycle() {
    let mut net = small_footprint_net(42);
    let mut wl = crossing_flows(0.4, 4);
    let mut sentinel = Sentinel::with_intervals(1, 1);
    let num_vcs = net.config().num_vcs;
    let nodes: Vec<NodeId> = net.topo().nodes().collect();
    let mut target = None;
    for _ in 0..500 {
        net.step_probed(&mut wl, &mut sentinel);
        assert!(!sentinel.tripped(), "clean phase must stay clean");
        'scan: for &node in &nodes {
            let soa = net.datapath();
            for p in 0..PORT_COUNT {
                for v in 0..num_vcs {
                    let vc = soa.output(node, p).vc(v);
                    if matches!(vc.state(), OutVcState::Active(_)) && vc.credits() > 0 {
                        target = Some((node, p, v));
                        break 'scan;
                    }
                }
            }
        }
        if target.is_some() {
            break;
        }
    }
    let (node, p, v) = target.expect("traffic never activated an output VC");
    let ivc = net.datapath().ivc(node, p, v);
    net.datapath_mut().out_consume_credit(ivc);
    let corrupted_at = net.cycle();
    net.step_probed(&mut wl, &mut sentinel);
    let report = sentinel.report().expect("stolen credit went unnoticed");
    assert_eq!(report.cycle, corrupted_at, "first-failure cycle");
    match &report.violation {
        SentinelViolation::CreditConservation { node: n, .. } => assert_eq!(*n, node),
        other => panic!("expected a credit-conservation violation, got: {other}"),
    }
}

/// A counterfeit flit materialising in an input buffer breaks global flit
/// conservation (resident flits exceed injected minus ejected).
#[test]
fn counterfeit_flit_breaks_flit_conservation() {
    use footprint_sim::{Flit, FlitKind, PacketId};
    let mut net = small_footprint_net(9);
    let mut wl = crossing_flows(0.3, 2);
    let mut sentinel = Sentinel::with_intervals(1, 1);
    for _ in 0..50 {
        net.step_probed(&mut wl, &mut sentinel);
    }
    assert!(!sentinel.tripped(), "clean phase must stay clean");
    // Find an empty input VC anywhere and conjure a flit into it.
    let num_vcs = net.config().num_vcs;
    let nodes: Vec<NodeId> = net.topo().nodes().collect();
    let mut slot = None;
    'scan: for &node in &nodes {
        let soa = net.datapath();
        for p in 0..PORT_COUNT {
            for v in 0..num_vcs {
                if soa.input(node, p).vc(v).is_empty() {
                    slot = Some((node, p, v));
                    break 'scan;
                }
            }
        }
    }
    let (node, p, v) = slot.expect("no empty input VC in a lightly loaded mesh");
    let ivc = net.datapath().ivc(node, p, v);
    net.datapath_mut().in_push(ivc, Flit {
        packet: PacketId(999_999),
        kind: FlitKind::Single,
        src: NodeId(0),
        dest: NodeId(15),
        seq: 0,
        size: 1,
        birth: 0,
        class: 0,
        vc: footprint_routing::VcId::from_index(v).0,
    });
    let corrupted_at = net.cycle();
    net.step_probed(&mut wl, &mut sentinel);
    let report = sentinel.report().expect("counterfeit flit went unnoticed");
    assert_eq!(report.cycle, corrupted_at, "first-failure cycle");
    assert!(
        matches!(report.violation, SentinelViolation::FlitConservation { .. }),
        "expected a flit-conservation violation, got: {}",
        report.violation
    );
}
