//! Property-based tests for the mesh topology invariants.

use footprint_topology::{Coord, Mesh, NodeId, DIRECTIONS};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = Mesh> {
    (1u16..=16, 1u16..=16).prop_map(|(w, h)| Mesh::new(w, h))
}

proptest! {
    #[test]
    fn coord_node_roundtrip(mesh in arb_mesh()) {
        for n in mesh.nodes() {
            prop_assert_eq!(mesh.node_at(mesh.coord(n)), n);
            prop_assert!(mesh.contains(mesh.coord(n)));
        }
    }

    #[test]
    fn neighbor_symmetry((mesh, seed) in arb_mesh().prop_flat_map(|m| (Just(m), 0..m.len() as u16))) {
        let n = NodeId(seed);
        for d in DIRECTIONS {
            if let Some(m2) = mesh.neighbor(n, d) {
                prop_assert_eq!(mesh.neighbor(m2, d.opposite()), Some(n));
                prop_assert_eq!(mesh.hops(n, m2), 1);
            }
        }
    }

    #[test]
    fn minimal_dirs_reduce_distance(
        (mesh, a, b) in arb_mesh().prop_flat_map(|m| {
            (Just(m), 0..m.len() as u16, 0..m.len() as u16)
        })
    ) {
        let (a, b) = (NodeId(a), NodeId(b));
        let dirs = mesh.minimal_dirs(a, b);
        if a == b {
            prop_assert_eq!(dirs.count(), 0);
        }
        for d in dirs.iter() {
            let next = mesh.neighbor(a, d).expect("productive direction stays in mesh");
            prop_assert_eq!(mesh.hops(next, b), mesh.hops(a, b) - 1);
        }
        // Non-productive directions never reduce the distance.
        for d in DIRECTIONS {
            if !dirs.contains(d) {
                if let Some(next) = mesh.neighbor(a, d) {
                    prop_assert_eq!(mesh.hops(next, b), mesh.hops(a, b) + 1);
                }
            }
        }
    }

    #[test]
    fn walking_minimal_dirs_reaches_destination(
        (mesh, a, b) in arb_mesh().prop_flat_map(|m| {
            (Just(m), 0..m.len() as u16, 0..m.len() as u16)
        })
    ) {
        let (mut cur, dst) = (NodeId(a), NodeId(b));
        let mut steps = 0u32;
        while cur != dst {
            let d = mesh.minimal_dirs(cur, dst).iter().next().unwrap();
            cur = mesh.neighbor(cur, d).unwrap();
            steps += 1;
            prop_assert!(steps <= 64, "walk must terminate");
        }
        prop_assert_eq!(steps, mesh.hops(NodeId(a), dst));
    }

    #[test]
    fn channels_are_valid(mesh in arb_mesh()) {
        for ch in mesh.channels() {
            prop_assert_eq!(mesh.neighbor(ch.src, ch.dir), Some(ch.dst));
        }
    }

    #[test]
    fn manhattan_triangle_inequality(
        (ax, ay, bx, by, cx, cy) in (0u16..32, 0u16..32, 0u16..32, 0u16..32, 0u16..32, 0u16..32)
    ) {
        let (a, b, c) = (Coord::new(ax, ay), Coord::new(bx, by), Coord::new(cx, cy));
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }
}

#[test]
fn direction_delta_moves_one_step() {
    let mesh = Mesh::square(3);
    let center = mesh.node_at(Coord::new(1, 1));
    for d in DIRECTIONS {
        let n = mesh.neighbor(center, d).unwrap();
        let (dx, dy) = d.delta();
        let c = mesh.coord(center);
        assert_eq!(mesh.coord(n).x as i32, c.x as i32 + dx);
        assert_eq!(mesh.coord(n).y as i32, c.y as i32 + dy);
    }
}
