//! The [`Topology`] trait: the contract every fabric shape implements.
//!
//! The simulator, the routing algorithms and the fault subsystem consume
//! topology through this interface (usually via the [`AnyTopology`]
//! dispatch enum), so adding a fabric shape means implementing this trait
//! — not touching the datapath.
//!
//! The contract has three parts:
//!
//! * **Geometry** — node enumeration, `(x, y)` coordinates, per-direction
//!   neighbor lookup and directed-channel enumeration. All current
//!   topologies use the four-direction port alphabet ([`Direction`]); a
//!   dimension a topology does not use (e.g. Y on a ring) simply has no
//!   neighbors.
//! * **Metric** — minimal hop count ([`Topology::hops`]), the productive
//!   directions toward a destination ([`Topology::minimal_dirs`], which is
//!   wraparound-aware on tori and rings) and the number of minimal paths.
//! * **Escape routing** — the canonical deadlock-free baseline of Duato's
//!   theory: how many escape VCs the topology needs
//!   ([`Topology::escape_vcs`]) and which escape VC class a given hop must
//!   use ([`Topology::escape_class`]). Meshes need one escape VC; wrapping
//!   topologies need two, assigned by the dateline rule (see the torus
//!   module docs for the acyclicity argument).
//!
//! [`AnyTopology`]: crate::AnyTopology

use crate::{Channel, Coord, Direction, MinimalDirs, NodeId, DIRECTIONS};
use core::fmt;

/// A network fabric shape: node/channel enumeration, neighbor map,
/// coordinate and hop metric, and the canonical deadlock-free escape
/// routing function.
///
/// Implementations are small `Copy` value types (a couple of dimension
/// fields); every method takes `&self` so the trait stays usable in
/// generic property tests, while the hot paths dispatch through the
/// [`crate::AnyTopology`] enum.
pub trait Topology: Copy + fmt::Display {
    /// Short identifier used in reports and error messages
    /// ("mesh", "torus", "ring", ...).
    fn kind_name(&self) -> &'static str;

    /// Extent in X (number of columns).
    fn width(&self) -> u16;

    /// Extent in Y (number of rows). 1 for one-dimensional topologies.
    fn height(&self) -> u16;

    /// Total number of nodes.
    fn len(&self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// `true` for the degenerate single-node fabric (never constructible
    /// through a validated [`crate::TopologySpec`]).
    fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Iterates over all node ids in index order.
    fn nodes(&self) -> NodeIter {
        NodeIter(0..self.len() as u32)
    }

    /// The coordinate of `node` (row-major: `id = y * width + x`).
    fn coord(&self, node: NodeId) -> Coord {
        debug_assert!(node.index() < self.len(), "node out of range");
        Coord {
            x: node.0 % self.width(),
            y: node.0 / self.width(),
        }
    }

    /// The node at coordinate `c`.
    fn node_at(&self, c: Coord) -> NodeId {
        debug_assert!(self.contains(c), "coord out of range");
        NodeId(c.y * self.width() + c.x)
    }

    /// `true` if `c` lies inside the coordinate grid.
    fn contains(&self, c: Coord) -> bool {
        c.x < self.width() && c.y < self.height()
    }

    /// The neighbor of `node` in direction `dir`, or `None` when the
    /// topology has no channel there (a mesh edge, the Y dimension of a
    /// ring). Wrapping topologies return the wrapped node.
    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId>;

    /// Minimal hop count between two routers under this topology's metric
    /// (Manhattan on meshes, wrap-reduced per dimension on tori/rings).
    fn hops(&self, a: NodeId, b: NodeId) -> u32;

    /// The productive (distance-reducing) directions from `cur` toward
    /// `dst`: at most one X and one Y direction. Wrap-aware: on a torus the
    /// shorter way around each dimension is chosen, with a deterministic
    /// tie-break (East / North) at exactly half the ring.
    fn minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs;

    /// The productive directions *on the acyclic (non-wraparound) subgraph*
    /// — the grid directions a mesh of the same dimensions would offer.
    /// Turn-model algorithms (Odd-Even, West-First, North-Last) route on
    /// this subgraph when the topology wraps: their turn restrictions prove
    /// deadlock freedom only for the spanning grid, so they trade the
    /// wraparound shortcut for the existing acyclicity argument.
    fn acyclic_minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs;

    /// Number of minimal paths between `a` and `b` (used by the
    /// adaptiveness metrics). On wrapping topologies this counts the paths
    /// inside the quadrant selected by [`Topology::minimal_dirs`].
    fn minimal_path_count(&self, a: NodeId, b: NodeId) -> u64;

    /// Iterates over every directed inter-router channel.
    fn channels(&self) -> ChannelIter<Self> {
        ChannelIter {
            topo: *self,
            node: 0,
            dir: 0,
            len: self.len() as u32,
        }
    }

    /// `true` if any dimension wraps around (torus, ring, circulant).
    /// Wrapping fabrics need dateline escape-VC classes; meshes do not.
    fn wraps(&self) -> bool;

    /// `true` if the directed channel leaving `node` toward `dir` is a
    /// wraparound (dateline) channel. Always `false` on acyclic fabrics.
    ///
    /// The default implementation covers every current fabric: node ids
    /// grow along each positive direction (East, North — including the
    /// circulant's skip links), so a positive-direction hop is a wrap
    /// exactly when the downstream id *decreases*, and mirrored for the
    /// negative directions. These are precisely the channels excluded from
    /// escape class 0 by the dateline rule, which is what makes cutting
    /// one interesting: the class-1 subgraph loses its acyclicity
    /// *witness* structure and must be re-checked under the fault mask.
    fn is_wrap_channel(&self, node: NodeId, dir: Direction) -> bool {
        if !self.wraps() {
            return false;
        }
        match self.neighbor(node, dir) {
            None => false,
            Some(next) => match dir {
                Direction::East | Direction::North => next.0 < node.0,
                Direction::West | Direction::South => next.0 > node.0,
            },
        }
    }

    /// Number of VCs reserved for the Duato escape layer by algorithms
    /// that use one: 1 on acyclic fabrics, 2 on wrapping fabrics (the
    /// dateline needs a pre-crossing and a post-crossing class).
    fn escape_vcs(&self) -> usize {
        if self.wraps() {
            2
        } else {
            1
        }
    }

    /// The escape-VC class (`0..escape_vcs`) a packet destined to `dst`
    /// must use on the channel leaving `cur` in direction `dir`.
    ///
    /// Always 0 on acyclic fabrics. On wrapping fabrics this implements
    /// the dateline rule *statelessly* — the class is a pure function of
    /// the channel's downstream coordinate and the destination, so
    /// adaptive algorithms need no per-packet crossing history:
    ///
    /// * eastbound channel into `next`: class 0 while `next.x > dst.x`
    ///   (the wrap edge still ahead), class 1 once `next.x <= dst.x`;
    /// * westbound: class 0 while `next.x < dst.x`, class 1 once
    ///   `next.x >= dst.x`; North/South identically on Y.
    ///
    /// Class 0 therefore never contains a wrap channel, class transitions
    /// are one-way (0 → 1 exactly at the dateline crossing), and dimension
    /// order adds only X → Y edges — the escape channel-dependence graph
    /// is acyclic. See `DESIGN.md` for the full argument.
    fn escape_class(&self, cur: NodeId, dst: NodeId, dir: Direction) -> u8;
}

/// Iterator over a topology's node ids (see [`Topology::nodes`]).
#[derive(Debug, Clone)]
pub struct NodeIter(core::ops::Range<u32>);

impl Iterator for NodeIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.0.next().map(|i| NodeId(i as u16))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for NodeIter {}

/// Iterator over a topology's directed channels (see
/// [`Topology::channels`]).
#[derive(Debug, Clone)]
pub struct ChannelIter<T> {
    topo: T,
    node: u32,
    dir: usize,
    len: u32,
}

impl<T: Topology> Iterator for ChannelIter<T> {
    type Item = Channel;

    fn next(&mut self) -> Option<Channel> {
        while self.node < self.len {
            if self.dir >= DIRECTIONS.len() {
                self.dir = 0;
                self.node += 1;
                continue;
            }
            let dir = DIRECTIONS[self.dir];
            self.dir += 1;
            let src = NodeId(self.node as u16);
            if let Some(dst) = self.topo.neighbor(src, dir) {
                return Some(Channel { src, dir, dst });
            }
        }
        None
    }
}

/// Shared per-dimension wrap arithmetic for torus-like topologies.
///
/// `k` is the dimension extent, `cur`/`dst` positions in it, and
/// (`pos`, `neg`) the direction pair for increasing/decreasing positions
/// (East/West on X, North/South on Y).
pub(crate) mod wrap {
    use crate::Direction;

    /// Distance traveling in the increasing (`pos`) direction.
    #[inline]
    pub fn fwd_dist(cur: u16, dst: u16, k: u16) -> u16 {
        (dst + k - cur) % k
    }

    /// Wrap-reduced distance: the shorter way around.
    #[inline]
    pub fn dist(cur: u16, dst: u16, k: u16) -> u32 {
        let f = fwd_dist(cur, dst, k);
        u32::from(f.min(k - f))
    }

    /// The minimal direction in this dimension, `None` at the destination
    /// position. Ties at exactly `k/2` break toward `pos` (East / North),
    /// deterministically.
    #[inline]
    pub fn minimal_dir(cur: u16, dst: u16, k: u16, pos: Direction, neg: Direction) -> Option<Direction> {
        let f = fwd_dist(cur, dst, k);
        if f == 0 {
            None
        } else if f <= k - f {
            Some(pos)
        } else {
            Some(neg)
        }
    }

    /// The dateline escape-VC class for the channel from `cur` into `next`
    /// traveling `forward` (`true` = the increasing direction): 0 while the
    /// wrap edge is still ahead of `next`, 1 from the wrap channel onward
    /// (and for journeys that never cross). See
    /// [`Topology::escape_class`](super::Topology::escape_class).
    #[inline]
    pub fn escape_class(next: u16, dst: u16, forward: bool) -> u8 {
        let pre_dateline = if forward { next > dst } else { next < dst };
        u8::from(!pre_dateline)
    }
}

#[cfg(test)]
mod tests {
    use super::wrap;
    use crate::Direction;

    #[test]
    fn fwd_dist_wraps() {
        assert_eq!(wrap::fwd_dist(6, 1, 8), 3);
        assert_eq!(wrap::fwd_dist(1, 6, 8), 5);
        assert_eq!(wrap::fwd_dist(3, 3, 8), 0);
    }

    #[test]
    fn dist_takes_shorter_way() {
        assert_eq!(wrap::dist(0, 7, 8), 1);
        assert_eq!(wrap::dist(0, 4, 8), 4);
        assert_eq!(wrap::dist(2, 5, 8), 3);
    }

    #[test]
    fn minimal_dir_breaks_ties_forward() {
        use Direction::{East, West};
        // Distance 4 both ways on k=8: East wins deterministically.
        assert_eq!(wrap::minimal_dir(0, 4, 8, East, West), Some(East));
        assert_eq!(wrap::minimal_dir(0, 7, 8, East, West), Some(West));
        assert_eq!(wrap::minimal_dir(0, 2, 8, East, West), Some(East));
        assert_eq!(wrap::minimal_dir(5, 5, 8, East, West), None);
    }

    #[test]
    fn escape_class_crosses_exactly_once() {
        // Eastbound 6 → 2 on k=8: hops into 7 (class 0), 0 (wrap: class 1),
        // 1 (class 1), 2 (class 1).
        assert_eq!(wrap::escape_class(7, 2, true), 0);
        assert_eq!(wrap::escape_class(0, 2, true), 1);
        assert_eq!(wrap::escape_class(1, 2, true), 1);
        // Non-crossing eastbound journeys stay in class 1 throughout.
        assert_eq!(wrap::escape_class(1, 3, true), 1);
        // Westbound mirror: 2 → 6 crosses at the 0 → 7 wrap channel.
        assert_eq!(wrap::escape_class(1, 6, false), 0);
        assert_eq!(wrap::escape_class(7, 6, false), 1);
        assert_eq!(wrap::escape_class(6, 6, false), 1);
    }
}
