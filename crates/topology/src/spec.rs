//! [`TopologySpec`]: the validated, serialization-stable topology
//! configuration.
//!
//! Configuration structs ([`SimConfig`], the builder) carry a
//! `TopologySpec` — plain data naming a shape and its dimensions — and
//! turn it into a live [`AnyTopology`] through [`TopologySpec::validate`],
//! which returns a typed [`TopologyError`] instead of panicking on
//! nonsense dimensions.
//!
//! The spec is `Copy + Eq + Hash` and has a stable, canonical textual form
//! (`Display`/`FromStr` round-trip: `mesh:8x8`, `torus:8x8`, `ring:16`,
//! `circulant:16/5`) so it can key caches and appear in journals without a
//! serde dependency.
//!
//! [`SimConfig`]: https://docs.rs/footprint-sim

use crate::{AnyTopology, Mesh, Ring, Torus};
use core::fmt;
use core::str::FromStr;

/// A topology configuration: shape + dimensions, before validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// A `width × height` 2D mesh (minimum 2×2).
    Mesh {
        /// Number of columns.
        width: u16,
        /// Number of rows.
        height: u16,
    },
    /// A `width × height` 2D torus (minimum 3 per dimension).
    Torus {
        /// Number of columns.
        width: u16,
        /// Number of rows.
        height: u16,
    },
    /// An `n`-node bidirectional ring (minimum 3).
    Ring {
        /// Number of nodes.
        nodes: u16,
    },
    /// A ring-circulant C(n; 1, skip). Parses, validates its dimensions
    /// and hashes canonically, but simulation is gated until a
    /// deadlock-free escape function lands
    /// ([`TopologyError::CirculantUnsupported`]).
    Circulant {
        /// Number of nodes (minimum 5).
        nodes: u16,
        /// Skip distance (in `2..=nodes/2`).
        skip: u16,
    },
}

impl TopologySpec {
    /// A square `k × k` mesh.
    pub fn mesh(k: u16) -> Self {
        TopologySpec::Mesh { width: k, height: k }
    }

    /// A square `k × k` torus.
    pub fn torus(k: u16) -> Self {
        TopologySpec::Torus { width: k, height: k }
    }

    /// An `n`-node ring.
    pub fn ring(nodes: u16) -> Self {
        TopologySpec::Ring { nodes }
    }

    /// The node count this spec describes (unvalidated arithmetic).
    pub fn nodes(self) -> usize {
        match self {
            TopologySpec::Mesh { width, height } | TopologySpec::Torus { width, height } => {
                width as usize * height as usize
            }
            TopologySpec::Ring { nodes } | TopologySpec::Circulant { nodes, .. } => nodes as usize,
        }
    }

    /// Short identifier of the shape ("mesh", "torus", "ring",
    /// "circulant").
    pub fn kind_name(self) -> &'static str {
        match self {
            TopologySpec::Mesh { .. } => "mesh",
            TopologySpec::Torus { .. } => "torus",
            TopologySpec::Ring { .. } => "ring",
            TopologySpec::Circulant { .. } => "circulant",
        }
    }

    /// Validates the dimensions and builds the live topology.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::MeshTooSmall`] — mesh below 2×2 (a single row or
    ///   column has nodes with a single neighbor and the paper's traffic
    ///   patterns degenerate).
    /// * [`TopologyError::TorusTooSmall`] — torus dimension below 3 (the
    ///   wrap channel must be distinct from the direct channel).
    /// * [`TopologyError::RingTooSmall`] — ring below 3 nodes.
    /// * [`TopologyError::TooManyNodes`] — node ids no longer fit `u16`.
    /// * [`TopologyError::CirculantBadSkip`] /
    ///   [`TopologyError::CirculantUnsupported`] — see the circulant
    ///   module docs.
    pub fn validate(self) -> Result<AnyTopology, TopologyError> {
        let nodes = match self {
            TopologySpec::Mesh { width, height } | TopologySpec::Torus { width, height } => {
                u32::from(width) * u32::from(height)
            }
            TopologySpec::Ring { nodes } | TopologySpec::Circulant { nodes, .. } => u32::from(nodes),
        };
        if nodes > u16::MAX as u32 + 1 {
            return Err(TopologyError::TooManyNodes { nodes });
        }
        match self {
            TopologySpec::Mesh { width, height } => {
                if width < 2 || height < 2 {
                    return Err(TopologyError::MeshTooSmall { width, height });
                }
                Ok(AnyTopology::Mesh(Mesh::new(width, height)))
            }
            TopologySpec::Torus { width, height } => {
                if width < Torus::MIN_DIM || height < Torus::MIN_DIM {
                    return Err(TopologyError::TorusTooSmall { width, height });
                }
                Ok(AnyTopology::Torus(Torus::new(width, height)))
            }
            TopologySpec::Ring { nodes } => {
                if nodes < Ring::MIN_NODES {
                    return Err(TopologyError::RingTooSmall { nodes });
                }
                Ok(AnyTopology::Ring(Ring::new(nodes)))
            }
            TopologySpec::Circulant { nodes, skip } => {
                if nodes < 5 || skip < 2 || skip > nodes / 2 {
                    return Err(TopologyError::CirculantBadSkip { nodes, skip });
                }
                Err(TopologyError::CirculantUnsupported { nodes, skip })
            }
        }
    }
}

impl From<Mesh> for TopologySpec {
    fn from(m: Mesh) -> Self {
        TopologySpec::Mesh {
            width: m.width(),
            height: m.height(),
        }
    }
}

impl From<Torus> for TopologySpec {
    fn from(t: Torus) -> Self {
        TopologySpec::Torus {
            width: t.width(),
            height: t.height(),
        }
    }
}

impl From<Ring> for TopologySpec {
    fn from(r: Ring) -> Self {
        TopologySpec::Ring {
            nodes: r.len() as u16,
        }
    }
}

impl From<AnyTopology> for TopologySpec {
    fn from(t: AnyTopology) -> Self {
        match t {
            AnyTopology::Mesh(m) => m.into(),
            AnyTopology::Torus(t) => t.into(),
            AnyTopology::Ring(r) => r.into(),
            AnyTopology::Circulant(c) => TopologySpec::Circulant {
                nodes: c.len() as u16,
                skip: c.skip(),
            },
        }
    }
}

impl fmt::Display for TopologySpec {
    /// The canonical textual form: `mesh:WxH`, `torus:WxH`, `ring:N`,
    /// `circulant:N/S`. Stable across releases — journals and cache keys
    /// depend on it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Mesh { width, height } => write!(f, "mesh:{width}x{height}"),
            TopologySpec::Torus { width, height } => write!(f, "torus:{width}x{height}"),
            TopologySpec::Ring { nodes } => write!(f, "ring:{nodes}"),
            TopologySpec::Circulant { nodes, skip } => write!(f, "circulant:{nodes}/{skip}"),
        }
    }
}

impl FromStr for TopologySpec {
    type Err = TopologyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || TopologyError::Unparseable(s.to_owned());
        let (kind, dims) = s.split_once(':').ok_or_else(bad)?;
        let parse_u16 = |t: &str| t.trim().parse::<u16>().map_err(|_| bad());
        match kind.trim().to_ascii_lowercase().as_str() {
            "mesh" | "torus" => {
                let (w, h) = dims.split_once(['x', 'X']).ok_or_else(bad)?;
                let (width, height) = (parse_u16(w)?, parse_u16(h)?);
                Ok(if kind.trim().eq_ignore_ascii_case("mesh") {
                    TopologySpec::Mesh { width, height }
                } else {
                    TopologySpec::Torus { width, height }
                })
            }
            "ring" => Ok(TopologySpec::Ring {
                nodes: parse_u16(dims)?,
            }),
            "circulant" => {
                let (n, k) = dims.split_once('/').ok_or_else(bad)?;
                Ok(TopologySpec::Circulant {
                    nodes: parse_u16(n)?,
                    skip: parse_u16(k)?,
                })
            }
            _ => Err(bad()),
        }
    }
}

/// A rejected topology configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Mesh below the 2×2 minimum.
    MeshTooSmall {
        /// Offending width.
        width: u16,
        /// Offending height.
        height: u16,
    },
    /// Torus dimension below the 3-extent minimum (wrap and direct
    /// channels must be distinct).
    TorusTooSmall {
        /// Offending width.
        width: u16,
        /// Offending height.
        height: u16,
    },
    /// Ring below the 3-node minimum.
    RingTooSmall {
        /// Offending node count.
        nodes: u16,
    },
    /// Node ids no longer fit `u16`.
    TooManyNodes {
        /// The requested node count.
        nodes: u32,
    },
    /// Circulant dimensions out of range (`nodes >= 5`,
    /// `2 <= skip <= nodes/2`).
    CirculantBadSkip {
        /// Requested node count.
        nodes: u16,
        /// Offending skip.
        skip: u16,
    },
    /// Circulant geometry is implemented, but no deadlock-free escape
    /// function is proven for it yet, so simulation configs are rejected.
    CirculantUnsupported {
        /// Requested node count.
        nodes: u16,
        /// Requested skip.
        skip: u16,
    },
    /// A topology string that does not match the canonical form.
    Unparseable(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::MeshTooSmall { width, height } => write!(
                f,
                "mesh {width}x{height} is too small (both dimensions must be at least 2)"
            ),
            TopologyError::TorusTooSmall { width, height } => write!(
                f,
                "torus {width}x{height} is too small (both dimensions must be at least 3 \
                 so wrap channels are distinct from direct channels)"
            ),
            TopologyError::RingTooSmall { nodes } => {
                write!(f, "ring with {nodes} nodes is too small (minimum 3)")
            }
            TopologyError::TooManyNodes { nodes } => {
                write!(f, "{nodes} nodes exceed the u16 node-id space (max 65536)")
            }
            TopologyError::CirculantBadSkip { nodes, skip } => write!(
                f,
                "circulant C({nodes}; 1, {skip}) is out of range (need nodes >= 5 and \
                 2 <= skip <= nodes/2)"
            ),
            TopologyError::CirculantUnsupported { nodes, skip } => write!(
                f,
                "circulant C({nodes}; 1, {skip}): geometry is available but simulation is \
                 not — no deadlock-free escape function is proven for circulants yet"
            ),
            TopologyError::Unparseable(s) => write!(
                f,
                "`{s}` is not a topology spec (expected mesh:WxH, torus:WxH, ring:N or \
                 circulant:N/S)"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_builds_each_shape() {
        assert!(matches!(
            TopologySpec::mesh(4).validate(),
            Ok(AnyTopology::Mesh(_))
        ));
        assert!(matches!(
            TopologySpec::torus(4).validate(),
            Ok(AnyTopology::Torus(_))
        ));
        assert!(matches!(
            TopologySpec::ring(8).validate(),
            Ok(AnyTopology::Ring(_))
        ));
    }

    #[test]
    fn validate_rejects_undersized_shapes() {
        assert_eq!(
            TopologySpec::Mesh { width: 1, height: 4 }.validate(),
            Err(TopologyError::MeshTooSmall { width: 1, height: 4 })
        );
        assert_eq!(
            TopologySpec::Torus { width: 2, height: 4 }.validate(),
            Err(TopologyError::TorusTooSmall { width: 2, height: 4 })
        );
        assert_eq!(
            TopologySpec::ring(2).validate(),
            Err(TopologyError::RingTooSmall { nodes: 2 })
        );
    }

    #[test]
    fn circulant_is_gated_with_a_typed_error() {
        assert_eq!(
            TopologySpec::Circulant { nodes: 16, skip: 5 }.validate(),
            Err(TopologyError::CirculantUnsupported { nodes: 16, skip: 5 })
        );
        assert_eq!(
            TopologySpec::Circulant { nodes: 16, skip: 1 }.validate(),
            Err(TopologyError::CirculantBadSkip { nodes: 16, skip: 1 })
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        for spec in [
            TopologySpec::mesh(8),
            TopologySpec::Mesh { width: 4, height: 2 },
            TopologySpec::torus(8),
            TopologySpec::ring(16),
            TopologySpec::Circulant { nodes: 16, skip: 5 },
        ] {
            let s = spec.to_string();
            assert_eq!(s.parse::<TopologySpec>().unwrap(), spec, "{s}");
        }
    }

    #[test]
    fn canonical_strings_are_stable() {
        assert_eq!(TopologySpec::mesh(8).to_string(), "mesh:8x8");
        assert_eq!(TopologySpec::torus(4).to_string(), "torus:4x4");
        assert_eq!(TopologySpec::ring(16).to_string(), "ring:16");
        assert_eq!(
            TopologySpec::Circulant { nodes: 16, skip: 5 }.to_string(),
            "circulant:16/5"
        );
    }

    #[test]
    fn parse_rejects_junk() {
        for junk in ["", "mesh", "mesh:8", "mobius:8x8", "ring:x", "mesh:8x8x8"] {
            assert!(
                matches!(
                    junk.parse::<TopologySpec>(),
                    Err(TopologyError::Unparseable(_))
                ),
                "{junk}"
            );
        }
    }

    #[test]
    fn from_concrete_topologies() {
        assert_eq!(TopologySpec::from(Mesh::new(8, 4)).to_string(), "mesh:8x4");
        assert_eq!(TopologySpec::from(Torus::square(8)).to_string(), "torus:8x8");
        assert_eq!(TopologySpec::from(Ring::new(9)).to_string(), "ring:9");
        let any = TopologySpec::torus(4).validate().unwrap();
        assert_eq!(TopologySpec::from(any), TopologySpec::torus(4));
    }

    #[test]
    fn spec_reports_node_counts() {
        assert_eq!(TopologySpec::mesh(8).nodes(), 64);
        assert_eq!(TopologySpec::ring(16).nodes(), 16);
        assert_eq!(TopologySpec::mesh(8).kind_name(), "mesh");
        assert_eq!(TopologySpec::torus(8).kind_name(), "torus");
    }
}
