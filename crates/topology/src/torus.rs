//! The 2D torus topology: a mesh whose rows and columns wrap around.
//!
//! # Deadlock-free escape on a torus (the dateline argument)
//!
//! Each dimension of a torus is a ring, and a ring's channel-dependence
//! graph is a cycle — dimension-order routing alone is *not* deadlock-free
//! the way it is on a mesh. The classical fix (Dally's dateline) splits
//! every escape channel into two VC classes: a packet travels in class 0
//! until it crosses the wrap edge of the dimension, then switches to
//! class 1 and stays there; packets whose journey never crosses use
//! class 1 throughout.
//!
//! This crate implements the dateline *statelessly*: the class of a hop is
//! a pure function of the hop's downstream coordinate and the packet's
//! destination ([`crate::Topology::escape_class`]), so adaptive algorithms
//! need no per-packet crossing flag. Acyclicity, per dimension and
//! direction of travel:
//!
//! * **Class 0** (`next` still on the far side of the destination in the
//!   travel direction) never contains the wrap channel — eastbound the
//!   wrap channel lands on column 0, and `0 > dst.x` is impossible. A set
//!   of same-direction ring channels minus the wrap edge is a line:
//!   acyclic.
//! * **Class 1** contains the wrap channel, but the only request for the
//!   wrap channel in class 1 comes from a packet *currently in class 0*
//!   (at the node just before the dateline, `next > dst.x` still held one
//!   hop earlier). Within class 1 every dependency steps monotonically
//!   toward the destination without re-crossing, so class 1 is a line
//!   rooted at the wrap channel: acyclic.
//! * Transitions are one-way (0 → 1 exactly at the dateline) and the
//!   escape route is dimension-ordered, adding only X → Y edges.
//!
//! Layering the classes `X₀ < X₁ < Y₀ < Y₁` with only forward edges makes
//! the full escape channel-dependence graph acyclic, which is what
//! [`crate::Topology::escape_vcs`]` == 2` buys. The property tests in the
//! workspace root verify the acyclicity claim by explicit CDG
//! construction.

use crate::traits::{wrap, Topology};
use crate::{binomial, Coord, Direction, Mesh, MinimalDirs, NodeId};
use core::fmt;

/// A `width × height` 2D torus: row-major node numbering like [`Mesh`],
/// plus wraparound channels closing every row and column.
///
/// Both dimensions must be at least 3 so that the wrap channel of a
/// dimension is distinct from the direct channel (a 2-extent "torus" has
/// doubled edges and is better expressed as a mesh; a 1-extent one is a
/// ring).
///
/// ```
/// use footprint_topology::{Direction, NodeId, Topology, Torus};
/// let t = Torus::square(4);
/// // Wraparound: the east neighbor of the last column is column 0.
/// assert_eq!(t.neighbor(NodeId(3), Direction::East), Some(NodeId(0)));
/// // The wrap halves worst-case distance vs. the 4x4 mesh (6 hops).
/// assert_eq!(t.hops(NodeId(0), NodeId(15)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// Minimum extent of each torus dimension.
    pub const MIN_DIM: u16 = 3;

    /// Creates a `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below [`Torus::MIN_DIM`] or the node
    /// count would overflow `u16` ids. Use
    /// [`crate::TopologySpec::validate`] for a non-panicking, typed check.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(
            width >= Self::MIN_DIM && height >= Self::MIN_DIM,
            "torus dimensions must be at least {}",
            Self::MIN_DIM
        );
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32 + 1,
            "torus too large for u16 node ids"
        );
        Torus { width, height }
    }

    /// Creates a square `k × k` torus.
    pub fn square(k: u16) -> Self {
        Torus::new(k, k)
    }

    /// Torus width (number of columns).
    #[inline]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Torus height (number of rows).
    #[inline]
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// `false`: a torus always has at least 9 nodes.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }
}

impl Topology for Torus {
    fn kind_name(&self) -> &'static str {
        "torus"
    }

    fn width(&self) -> u16 {
        self.width
    }

    fn height(&self) -> u16 {
        self.height
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let (w, h) = (self.width, self.height);
        let n = match dir {
            Direction::East => Coord::new((c.x + 1) % w, c.y),
            Direction::West => Coord::new((c.x + w - 1) % w, c.y),
            Direction::North => Coord::new(c.x, (c.y + 1) % h),
            Direction::South => Coord::new(c.x, (c.y + h - 1) % h),
        };
        Some(self.node_at(n))
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        wrap::dist(ca.x, cb.x, self.width) + wrap::dist(ca.y, cb.y, self.height)
    }

    fn minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        let c = self.coord(cur);
        let d = self.coord(dst);
        MinimalDirs {
            x: wrap::minimal_dir(c.x, d.x, self.width, Direction::East, Direction::West),
            y: wrap::minimal_dir(c.y, d.y, self.height, Direction::North, Direction::South),
        }
    }

    fn acyclic_minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        Mesh::new(self.width, self.height).minimal_dirs(cur, dst)
    }

    fn minimal_path_count(&self, a: NodeId, b: NodeId) -> u64 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dx = u64::from(wrap::dist(ca.x, cb.x, self.width));
        let dy = u64::from(wrap::dist(ca.y, cb.y, self.height));
        binomial(dx + dy, dx.min(dy))
    }

    fn wraps(&self) -> bool {
        true
    }

    fn escape_class(&self, cur: NodeId, dst: NodeId, dir: Direction) -> u8 {
        let next = self
            .coord(self.neighbor(cur, dir).expect("torus channels exist in all directions"));
        let d = self.coord(dst);
        match dir {
            Direction::East => wrap::escape_class(next.x, d.x, true),
            Direction::West => wrap::escape_class(next.x, d.x, false),
            Direction::North => wrap::escape_class(next.y, d.y, true),
            Direction::South => wrap::escape_class(next.y, d.y, false),
        }
    }
}

impl fmt::Display for Torus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} torus", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DIRECTIONS;

    #[test]
    fn every_node_has_four_neighbors() {
        let t = Torus::square(4);
        for n in t.nodes() {
            for d in DIRECTIONS {
                assert!(t.neighbor(n, d).is_some(), "{n} {d}");
            }
        }
        assert_eq!(t.channels().count(), 4 * t.len());
    }

    #[test]
    fn wrap_channels_are_exactly_the_dateline_edges() {
        let t = Torus::square(4);
        let mut wraps = 0;
        for n in t.nodes() {
            for d in DIRECTIONS {
                if t.is_wrap_channel(n, d) {
                    wraps += 1;
                    // Every wrap hop must be the one that re-enters at the
                    // opposite edge of its dimension.
                    let next = t.neighbor(n, d).unwrap();
                    assert_eq!(t.hops(n, next), 1);
                }
            }
        }
        // One wrap edge per row (X) and per column (Y), two directed
        // channels each: 2·(4 + 4).
        assert_eq!(wraps, 16);
        assert!(t.is_wrap_channel(NodeId(3), Direction::East));
        assert!(t.is_wrap_channel(NodeId(0), Direction::West));
        assert!(t.is_wrap_channel(NodeId(12), Direction::North));
        assert!(t.is_wrap_channel(NodeId(0), Direction::South));
        assert!(!t.is_wrap_channel(NodeId(0), Direction::East));
    }

    #[test]
    fn wraparound_neighbors() {
        let t = Torus::square(4);
        // Row 0 wraps in X.
        assert_eq!(t.neighbor(NodeId(0), Direction::West), Some(NodeId(3)));
        assert_eq!(t.neighbor(NodeId(3), Direction::East), Some(NodeId(0)));
        // Column 0 wraps in Y.
        assert_eq!(t.neighbor(NodeId(0), Direction::South), Some(NodeId(12)));
        assert_eq!(t.neighbor(NodeId(12), Direction::North), Some(NodeId(0)));
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let t = Torus::new(5, 3);
        for n in t.nodes() {
            for d in DIRECTIONS {
                let m = t.neighbor(n, d).unwrap();
                assert_eq!(t.neighbor(m, d.opposite()), Some(n));
            }
        }
    }

    #[test]
    fn hops_uses_wrap_distance() {
        let t = Torus::square(8);
        // The far corner (7,7) is wrap-adjacent in both dimensions.
        assert_eq!(t.hops(NodeId(0), NodeId(63)), 2);
        // The true antipode (4,4) sits at the half-ring distance 4 + 4.
        assert_eq!(t.hops(NodeId(0), NodeId(36)), 8);
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 1);
        assert_eq!(t.hops(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn minimal_dirs_take_shorter_way() {
        let t = Torus::square(8);
        // (0,0) → (7,0): West through the wrap, not 7 hops East.
        let dirs = t.minimal_dirs(NodeId(0), NodeId(7));
        assert_eq!(dirs.x, Some(Direction::West));
        assert_eq!(dirs.y, None);
        // Half-ring tie (distance 4 both ways): East deterministically.
        let dirs = t.minimal_dirs(NodeId(0), NodeId(4));
        assert_eq!(dirs.x, Some(Direction::East));
    }

    #[test]
    fn acyclic_dirs_ignore_the_wrap() {
        let t = Torus::square(8);
        // The wrap-aware choice is West; the grid subgraph says East.
        assert_eq!(
            t.acyclic_minimal_dirs(NodeId(0), NodeId(7)).x,
            Some(Direction::East)
        );
    }

    #[test]
    fn escape_class_is_zero_before_the_dateline_and_one_after() {
        let t = Torus::square(8);
        // n6 → n2 eastbound (wrap crossing ahead): class 0 at n6, class 1
        // on the wrap channel out of n7 and beyond.
        assert_eq!(t.escape_class(NodeId(6), NodeId(2), Direction::East), 0);
        assert_eq!(t.escape_class(NodeId(7), NodeId(2), Direction::East), 1);
        assert_eq!(t.escape_class(NodeId(0), NodeId(2), Direction::East), 1);
        // A journey that never wraps stays in class 1.
        assert_eq!(t.escape_class(NodeId(0), NodeId(2), Direction::East), 1);
        assert_eq!(t.escape_class(NodeId(1), NodeId(2), Direction::East), 1);
    }

    #[test]
    fn escape_class_never_puts_the_wrap_channel_in_class_zero() {
        let t = Torus::square(5);
        for src in t.nodes() {
            for dst in t.nodes() {
                for d in DIRECTIONS {
                    let next = t.neighbor(src, d).unwrap();
                    let (cs, cn, ds, dn) = (
                        t.coord(src),
                        t.coord(next),
                        t.coord(src),
                        t.coord(next),
                    );
                    let is_wrap = match d {
                        Direction::East => cn.x < cs.x,
                        Direction::West => cn.x > cs.x,
                        Direction::North => dn.y < ds.y,
                        Direction::South => dn.y > ds.y,
                    };
                    if is_wrap {
                        assert_eq!(
                            t.escape_class(src, dst, d),
                            1,
                            "wrap channel {src}->{next} must be class 1"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Torus::square(8).to_string(), "8x8 torus");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_torus_panics() {
        let _ = Torus::new(2, 4);
    }
}
