//! Router ports and mesh directions.

use core::fmt;

/// Number of ports on a mesh router: the four directions plus the local
/// injection/ejection port.
pub const PORT_COUNT: usize = 5;

/// The four mesh directions. `East` is `+x`, `North` is `+y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// `+x`
    East,
    /// `-x`
    West,
    /// `+y`
    North,
    /// `-y`
    South,
}

/// All four directions, in a fixed order convenient for iteration.
pub const DIRECTIONS: [Direction; 4] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
];

impl Direction {
    /// The opposite direction — the input port on the downstream router that
    /// a flit sent out of this direction's output port arrives on.
    ///
    /// ```
    /// use footprint_topology::Direction;
    /// assert_eq!(Direction::East.opposite(), Direction::West);
    /// assert_eq!(Direction::North.opposite(), Direction::South);
    /// ```
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }

    /// The coordinate delta `(dx, dy)` of a single hop in this direction.
    #[inline]
    pub fn delta(self) -> (i32, i32) {
        match self {
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
            Direction::North => (0, 1),
            Direction::South => (0, -1),
        }
    }

    /// `true` if this direction moves along the X dimension.
    #[inline]
    pub fn is_x(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::West => "W",
            Direction::North => "N",
            Direction::South => "S",
        };
        f.write_str(s)
    }
}

/// A router port: either the local injection/ejection port or one of the four
/// direction ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Port {
    /// The injection/ejection port that connects the router to its endpoint.
    Local,
    /// A port facing one of the four mesh directions.
    Dir(Direction),
}

/// All five ports, `Local` first, in index order.
pub const PORTS: [Port; PORT_COUNT] = [
    Port::Local,
    Port::Dir(Direction::East),
    Port::Dir(Direction::West),
    Port::Dir(Direction::North),
    Port::Dir(Direction::South),
];

impl Port {
    /// A dense index in `0..PORT_COUNT` for table lookups.
    ///
    /// ```
    /// use footprint_topology::{Port, PORTS};
    /// for (i, p) in PORTS.iter().enumerate() {
    ///     assert_eq!(p.index(), i);
    ///     assert_eq!(Port::from_index(i), *p);
    /// }
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::Dir(Direction::East) => 1,
            Port::Dir(Direction::West) => 2,
            Port::Dir(Direction::North) => 3,
            Port::Dir(Direction::South) => 4,
        }
    }

    /// Inverse of [`Port::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= PORT_COUNT`.
    #[inline]
    pub fn from_index(i: usize) -> Port {
        PORTS[i]
    }

    /// The direction of this port, or `None` for the local port.
    #[inline]
    pub fn direction(self) -> Option<Direction> {
        match self {
            Port::Local => None,
            Port::Dir(d) => Some(d),
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Local => f.write_str("L"),
            Port::Dir(d) => write!(f, "{d}"),
        }
    }
}

impl From<Direction> for Port {
    fn from(d: Direction) -> Self {
        Port::Dir(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in DIRECTIONS {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn delta_and_opposite_cancel() {
        for d in DIRECTIONS {
            let (dx, dy) = d.delta();
            let (ox, oy) = d.opposite().delta();
            assert_eq!(dx + ox, 0);
            assert_eq!(dy + oy, 0);
        }
    }

    #[test]
    fn port_index_roundtrip() {
        for i in 0..PORT_COUNT {
            assert_eq!(Port::from_index(i).index(), i);
        }
    }

    #[test]
    fn local_port_has_no_direction() {
        assert_eq!(Port::Local.direction(), None);
        assert_eq!(
            Port::Dir(Direction::East).direction(),
            Some(Direction::East)
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Port::Local.to_string(), "L");
        assert_eq!(Port::Dir(Direction::South).to_string(), "S");
    }

    #[test]
    fn is_x_partitions_directions() {
        assert!(Direction::East.is_x());
        assert!(Direction::West.is_x());
        assert!(!Direction::North.is_x());
        assert!(!Direction::South.is_x());
    }
}
