//! [`AnyTopology`]: the closed dispatch enum the hot paths run on.
//!
//! The [`Topology`] trait is the open, implementable contract; this enum is
//! its runtime form — a two-word `Copy` value the simulator and the routing
//! algorithms pass by value exactly like the old `Mesh`, with every
//! geometry call a branch-predicted `match` instead of a virtual call.
//! All trait methods are mirrored as inherent methods so call sites need
//! no trait import.

use crate::traits::{ChannelIter, NodeIter, Topology};
use crate::{Circulant, Coord, Direction, Mesh, MinimalDirs, NodeId, Ring, Torus};
use core::fmt;

/// One of the supported fabric shapes, as a value.
///
/// Obtained from [`crate::TopologySpec::validate`] or via `From` on a
/// concrete topology:
///
/// ```
/// use footprint_topology::{AnyTopology, Direction, Mesh, NodeId, Torus};
/// let m: AnyTopology = Mesh::square(4).into();
/// let t: AnyTopology = Torus::square(4).into();
/// assert_eq!(m.neighbor(NodeId(3), Direction::East), None);
/// assert_eq!(t.neighbor(NodeId(3), Direction::East), Some(NodeId(0)));
/// assert_eq!(m.escape_vcs(), 1);
/// assert_eq!(t.escape_vcs(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnyTopology {
    /// A 2D mesh.
    Mesh(Mesh),
    /// A 2D torus.
    Torus(Torus),
    /// A bidirectional ring.
    Ring(Ring),
    /// A ring-circulant C(n; 1, s) — geometry only, simulation-gated.
    Circulant(Circulant),
}

macro_rules! dispatch {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            AnyTopology::Mesh($t) => $body,
            AnyTopology::Torus($t) => $body,
            AnyTopology::Ring($t) => $body,
            AnyTopology::Circulant($t) => $body,
        }
    };
}

impl AnyTopology {
    /// Short identifier ("mesh", "torus", "ring", "circulant").
    #[inline]
    pub fn kind_name(self) -> &'static str {
        dispatch!(self, t => Topology::kind_name(&t))
    }

    /// Extent in X (number of columns).
    #[inline]
    pub fn width(self) -> u16 {
        dispatch!(self, t => Topology::width(&t))
    }

    /// Extent in Y (1 for one-dimensional topologies).
    #[inline]
    pub fn height(self) -> u16 {
        dispatch!(self, t => Topology::height(&t))
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(self) -> usize {
        dispatch!(self, t => Topology::len(&t))
    }

    /// `true` only for degenerate single-node fabrics (not constructible
    /// through validated specs).
    #[inline]
    pub fn is_empty(self) -> bool {
        dispatch!(self, t => Topology::is_empty(&t))
    }

    /// Iterates over all node ids in index order.
    #[inline]
    pub fn nodes(self) -> NodeIter {
        dispatch!(self, t => Topology::nodes(&t))
    }

    /// The coordinate of `node`.
    #[inline]
    pub fn coord(self, node: NodeId) -> Coord {
        dispatch!(self, t => Topology::coord(&t, node))
    }

    /// The node at coordinate `c`.
    #[inline]
    pub fn node_at(self, c: Coord) -> NodeId {
        dispatch!(self, t => Topology::node_at(&t, c))
    }

    /// `true` if `c` lies inside the coordinate grid.
    #[inline]
    pub fn contains(self, c: Coord) -> bool {
        dispatch!(self, t => Topology::contains(&t, c))
    }

    /// The neighbor of `node` in `dir`, or `None` where no channel exists.
    #[inline]
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        dispatch!(self, t => Topology::neighbor(&t, node, dir))
    }

    /// Minimal hop count under this topology's metric.
    #[inline]
    pub fn hops(self, a: NodeId, b: NodeId) -> u32 {
        dispatch!(self, t => Topology::hops(&t, a, b))
    }

    /// The productive directions from `cur` toward `dst` (wrap-aware).
    #[inline]
    pub fn minimal_dirs(self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        dispatch!(self, t => Topology::minimal_dirs(&t, cur, dst))
    }

    /// The productive directions on the acyclic (non-wraparound) subgraph.
    #[inline]
    pub fn acyclic_minimal_dirs(self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        dispatch!(self, t => Topology::acyclic_minimal_dirs(&t, cur, dst))
    }

    /// Number of minimal paths between `a` and `b`.
    #[inline]
    pub fn minimal_path_count(self, a: NodeId, b: NodeId) -> u64 {
        dispatch!(self, t => Topology::minimal_path_count(&t, a, b))
    }

    /// Iterates over every directed inter-router channel.
    #[inline]
    pub fn channels(self) -> ChannelIter<AnyTopology> {
        Topology::channels(&self)
    }

    /// `true` if any dimension wraps around.
    #[inline]
    pub fn wraps(self) -> bool {
        dispatch!(self, t => Topology::wraps(&t))
    }

    /// Escape VCs the Duato escape layer reserves on this topology
    /// (1 acyclic, 2 wrapping).
    #[inline]
    pub fn escape_vcs(self) -> usize {
        dispatch!(self, t => Topology::escape_vcs(&t))
    }

    /// The dateline escape-VC class for the hop `cur → dir` of a packet to
    /// `dst` (always 0 on meshes).
    #[inline]
    pub fn escape_class(self, cur: NodeId, dst: NodeId, dir: Direction) -> u8 {
        dispatch!(self, t => Topology::escape_class(&t, cur, dst, dir))
    }

    /// `true` if the channel `node → dir` is a wraparound (dateline)
    /// channel. Always `false` on meshes.
    #[inline]
    pub fn is_wrap_channel(self, node: NodeId, dir: Direction) -> bool {
        dispatch!(self, t => Topology::is_wrap_channel(&t, node, dir))
    }

    /// The underlying mesh, if this is one — for mesh-only overlays
    /// (XORDET's coordinate parity classes and similar).
    #[inline]
    pub fn as_mesh(self) -> Option<Mesh> {
        match self {
            AnyTopology::Mesh(m) => Some(m),
            _ => None,
        }
    }
}

impl Topology for AnyTopology {
    fn kind_name(&self) -> &'static str {
        AnyTopology::kind_name(*self)
    }

    fn width(&self) -> u16 {
        AnyTopology::width(*self)
    }

    fn height(&self) -> u16 {
        AnyTopology::height(*self)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        AnyTopology::neighbor(*self, node, dir)
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        AnyTopology::hops(*self, a, b)
    }

    fn minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        AnyTopology::minimal_dirs(*self, cur, dst)
    }

    fn acyclic_minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        AnyTopology::acyclic_minimal_dirs(*self, cur, dst)
    }

    fn minimal_path_count(&self, a: NodeId, b: NodeId) -> u64 {
        AnyTopology::minimal_path_count(*self, a, b)
    }

    fn wraps(&self) -> bool {
        AnyTopology::wraps(*self)
    }

    fn escape_vcs(&self) -> usize {
        AnyTopology::escape_vcs(*self)
    }

    fn escape_class(&self, cur: NodeId, dst: NodeId, dir: Direction) -> u8 {
        AnyTopology::escape_class(*self, cur, dst, dir)
    }

    fn is_wrap_channel(&self, node: NodeId, dir: Direction) -> bool {
        AnyTopology::is_wrap_channel(*self, node, dir)
    }
}

impl fmt::Display for AnyTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        dispatch!(*self, t => t.fmt(f))
    }
}

impl From<Mesh> for AnyTopology {
    fn from(m: Mesh) -> Self {
        AnyTopology::Mesh(m)
    }
}

impl From<Torus> for AnyTopology {
    fn from(t: Torus) -> Self {
        AnyTopology::Torus(t)
    }
}

impl From<Ring> for AnyTopology {
    fn from(r: Ring) -> Self {
        AnyTopology::Ring(r)
    }
}

impl From<Circulant> for AnyTopology {
    fn from(c: Circulant) -> Self {
        AnyTopology::Circulant(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_concrete_impls() {
        let mesh = Mesh::square(4);
        let any: AnyTopology = mesh.into();
        for n in mesh.nodes() {
            assert_eq!(any.coord(n), mesh.coord(n));
            for d in crate::DIRECTIONS {
                assert_eq!(any.neighbor(n, d), mesh.neighbor(n, d));
            }
        }
        assert_eq!(any.channels().count(), mesh.channels().count());
        assert_eq!(any.to_string(), "4x4 mesh");
        assert_eq!(any.kind_name(), "mesh");
        assert!(!any.wraps());
        assert_eq!(any.escape_vcs(), 1);
        assert_eq!(
            any.escape_class(NodeId(0), NodeId(5), Direction::East),
            0,
            "mesh escape is single-class"
        );
    }

    #[test]
    fn mesh_minimal_dirs_are_wrap_free_under_dispatch() {
        let any: AnyTopology = Mesh::square(4).into();
        assert_eq!(
            any.minimal_dirs(NodeId(0), NodeId(3)).x,
            Some(Direction::East)
        );
        assert_eq!(any.minimal_dirs(NodeId(0), NodeId(3)), any.acyclic_minimal_dirs(NodeId(0), NodeId(3)));
    }

    #[test]
    fn as_mesh_only_for_meshes() {
        assert!(AnyTopology::from(Mesh::square(4)).as_mesh().is_some());
        assert!(AnyTopology::from(Torus::square(4)).as_mesh().is_none());
        assert!(AnyTopology::from(Ring::new(8)).as_mesh().is_none());
    }
}
