//! Ring-circulant topology — geometry stub behind the [`Topology`] trait.
//!
//! A circulant graph C(n; 1, s) connects node `i` to `i ± 1` and
//! `i ± s (mod n)`. Romanov (Heliyon 2019) shows these beat meshes on
//! diameter at equal degree, which makes them the natural next step after
//! torus/ring — and they still fit the four-direction port alphabet:
//! East/West carry the `±1` ring, North/South carry the `±s` skip links.
//!
//! **Status: geometry only.** Neighbor map, coordinates, channel
//! enumeration and the hop metric work (and are property-tested), so the
//! fault subsystem and the metrics can already reason about circulants.
//! What is *not* done is a proven deadlock-free escape function: the `±s`
//! skip links decompose into `gcd(n, s)` cycles, so the torus dateline
//! argument does not transfer as-is — each cycle needs its own dateline
//! and the cross-dimension layering needs a fresh proof. Until that lands,
//! [`crate::TopologySpec::validate`] rejects circulant simulation configs
//! with a typed error instead of risking a wedged network;
//! [`Topology::escape_class`] here returns the `±1`-ring dateline class as
//! a placeholder.

use crate::traits::{wrap, Topology};
use crate::{Direction, MinimalDirs, NodeId};
use core::fmt;

/// The circulant graph C(n; 1, s): geometry-complete, simulation-gated
/// (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Circulant {
    nodes: u16,
    skip: u16,
}

impl Circulant {
    /// Creates C(n; 1, skip).
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 5` and `2 <= skip <= n/2` (skip 1 duplicates
    /// the ring links; skips above `n/2` alias their complement).
    pub fn new(nodes: u16, skip: u16) -> Self {
        assert!(nodes >= 5, "circulant needs at least 5 nodes");
        assert!(
            skip >= 2 && skip <= nodes / 2,
            "circulant skip must be in 2..=n/2"
        );
        Circulant { nodes, skip }
    }

    /// The skip distance `s` of C(n; 1, s).
    #[inline]
    pub fn skip(self) -> u16 {
        self.skip
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(self) -> usize {
        self.nodes as usize
    }

    /// `false`: a circulant always has at least 5 nodes.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }
}

impl Topology for Circulant {
    fn kind_name(&self) -> &'static str {
        "circulant"
    }

    fn width(&self) -> u16 {
        self.nodes
    }

    fn height(&self) -> u16 {
        1
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let k = self.nodes;
        let step = match dir {
            Direction::East => 1,
            Direction::West => k - 1,
            Direction::North => self.skip,
            Direction::South => k - self.skip,
        };
        Some(NodeId((node.0 + step) % k))
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        // Exact small-graph metric: minimize |r| + |q| over r + q*s ≡ d
        // (mod n), scanning the skip count q (|q| ≤ n/(2s) + 1 suffices but
        // the full range keeps this obviously correct; circulants are
        // u16-sized).
        let n = i64::from(self.nodes);
        let s = i64::from(self.skip);
        let d = (i64::from(b.0) - i64::from(a.0)).rem_euclid(n);
        let mut best = u32::MAX;
        let qmax = n / s + 1;
        for q in -qmax..=qmax {
            let rem = (d - q * s).rem_euclid(n);
            let r = rem.min(n - rem);
            let cost = (q.unsigned_abs() + r.unsigned_abs()) as u32;
            best = best.min(cost);
        }
        best
    }

    fn minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        // Greedy: any direction whose hop strictly reduces the metric.
        // Reported as (x = ring step, y = skip step) to fit MinimalDirs.
        if cur == dst {
            return MinimalDirs::default();
        }
        let here = self.hops(cur, dst);
        let better = |d: Direction| {
            let n = self.neighbor(cur, d).expect("circulant is 4-regular");
            self.hops(n, dst) < here
        };
        let x = [Direction::East, Direction::West].into_iter().find(|&d| better(d));
        let y = [Direction::North, Direction::South].into_iter().find(|&d| better(d));
        MinimalDirs { x, y }
    }

    fn acyclic_minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        // The non-wrapping subgraph of the ±1 ring: plain linear order.
        use core::cmp::Ordering;
        let x = match dst.0.cmp(&cur.0) {
            Ordering::Greater => Some(Direction::East),
            Ordering::Less => Some(Direction::West),
            Ordering::Equal => None,
        };
        MinimalDirs { x, y: None }
    }

    fn minimal_path_count(&self, a: NodeId, b: NodeId) -> u64 {
        if a == b {
            1
        } else {
            u64::from(self.minimal_dirs(a, b).count() as u32).max(1)
        }
    }

    fn wraps(&self) -> bool {
        true
    }

    fn escape_class(&self, cur: NodeId, dst: NodeId, dir: Direction) -> u8 {
        // Placeholder: the ±1-ring dateline. NOT a proven escape function
        // for the skip dimension — which is why TopologySpec::validate
        // refuses to build a simulation on a circulant yet.
        let next = self.neighbor(cur, dir).expect("circulant is 4-regular");
        match dir {
            Direction::East | Direction::North => wrap::escape_class(next.0, dst.0, true),
            Direction::West | Direction::South => wrap::escape_class(next.0, dst.0, false),
        }
    }
}

impl fmt::Display for Circulant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C({}; 1, {}) circulant", self.nodes, self.skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DIRECTIONS;

    #[test]
    fn four_regular_and_symmetric() {
        let c = Circulant::new(13, 4);
        for n in c.nodes() {
            for d in DIRECTIONS {
                let m = c.neighbor(n, d).unwrap();
                assert_eq!(c.neighbor(m, d.opposite()), Some(n));
            }
        }
        assert_eq!(c.channels().count(), 4 * 13);
    }

    #[test]
    fn skip_links_shorten_distance() {
        let c = Circulant::new(16, 4);
        // Ring alone: 8 hops to the antipode; one skip chain: 2 skips.
        assert_eq!(c.hops(NodeId(0), NodeId(8)), 2);
        assert_eq!(c.hops(NodeId(0), NodeId(5)), 2); // skip + 1
        assert_eq!(c.hops(NodeId(0), NodeId(0)), 0);
    }

    #[test]
    fn minimal_dirs_reduce_distance() {
        let c = Circulant::new(16, 4);
        for dst in c.nodes() {
            let cur = NodeId(3);
            if cur == dst {
                continue;
            }
            let dirs = c.minimal_dirs(cur, dst);
            assert!(dirs.count() > 0, "some productive direction exists");
            for d in dirs.iter() {
                let n = c.neighbor(cur, d).unwrap();
                assert!(c.hops(n, dst) < c.hops(cur, dst));
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Circulant::new(16, 5).to_string(), "C(16; 1, 5) circulant");
    }
}
