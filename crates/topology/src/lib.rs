//! Topology substrate for the Footprint NoC reproduction.
//!
//! The paper ("Footprint: Regulating Routing Adaptiveness in
//! Networks-on-Chip", ISCA 2017) evaluates exclusively on 2D meshes; this
//! crate grew from that mesh model into a first-class topology API so the
//! same regulated-adaptiveness machinery can run on other fabrics:
//!
//! * [`Topology`] — the trait every fabric shape implements: node/channel
//!   enumeration, neighbor map, coordinate and hop metric, and the
//!   canonical deadlock-free escape routing (escape-VC count and dateline
//!   classes).
//! * [`Mesh`] — the paper's `width × height` 2D mesh (one escape VC).
//! * [`Torus`] — the mesh with wraparound rows and columns (two dateline
//!   escape-VC classes; see the torus module docs for the acyclicity
//!   argument).
//! * [`Ring`] — the 1D torus: the cheap-router cost point.
//! * [`Circulant`] — ring-circulant C(n; 1, s) geometry, simulation-gated
//!   until a deadlock-free escape function is proven for it.
//! * [`AnyTopology`] — the `Copy` dispatch enum the simulator's hot paths
//!   carry by value.
//! * [`TopologySpec`] — the validated, canonically-printable configuration
//!   form ([`TopologySpec::validate`] returns typed [`TopologyError`]s).
//!
//! Supporting types: [`NodeId`] (dense row-major index), [`Coord`],
//! [`Direction`]/[`Port`] (the four-direction port alphabet plus the local
//! port), [`Channel`], [`MinimalDirs`], and the deterministic fault-plan
//! model ([`FaultPlan`]).
//!
//! # Example
//!
//! ```
//! use footprint_topology::{Direction, NodeId, Topology, TopologySpec};
//!
//! let torus = TopologySpec::torus(8).validate().unwrap();
//! // Wraparound makes the far corner adjacent in both dimensions.
//! assert_eq!(torus.hops(NodeId(0), NodeId(63)), 2);
//! // Wrapping fabrics reserve two dateline escape-VC classes.
//! assert_eq!(torus.escape_vcs(), 2);
//! assert_eq!("torus:8x8".parse::<TopologySpec>().unwrap().validate().unwrap(), torus);
//! ```

#![warn(missing_docs)]

mod any;
mod circulant;
mod coord;
mod fault;
mod mesh;
mod port;
mod ring;
mod spec;
mod torus;
mod traits;

pub use any::AnyTopology;
pub use circulant::Circulant;
pub use coord::{Coord, NodeId};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanError, FaultTarget};
pub use mesh::{Channel, Mesh, MinimalDirs};
pub use port::{Direction, Port, DIRECTIONS, PORTS, PORT_COUNT};
pub use ring::Ring;
pub use spec::{TopologyError, TopologySpec};
pub use torus::Torus;
pub use traits::{ChannelIter, NodeIter, Topology};

pub(crate) use mesh::binomial;
