//! 2D mesh topology substrate for the Footprint NoC reproduction.
//!
//! The paper ("Footprint: Regulating Routing Adaptiveness in Networks-on-Chip",
//! ISCA 2017) evaluates exclusively on 2D meshes (4×4, 8×8 and 16×16), so this
//! crate provides a small, allocation-free model of a `width × height` mesh:
//!
//! * [`NodeId`] — a dense node index in row-major order (`id = y * width + x`),
//!   matching the node numbering used throughout the paper (e.g. the hotspot
//!   flows of Table 3 on the 8×8 mesh).
//! * [`Coord`] — an `(x, y)` coordinate pair.
//! * [`Direction`] — one of the four mesh directions.
//! * [`Port`] — a router port: the four directions plus the local
//!   injection/ejection port.
//! * [`Mesh`] — the topology itself, with neighbor lookup, minimal-direction
//!   computation and channel enumeration.
//!
//! # Example
//!
//! ```
//! use footprint_topology::{Mesh, NodeId, Direction};
//!
//! let mesh = Mesh::square(8);
//! let n = NodeId(13); // (5, 1) on an 8-wide mesh
//! assert_eq!(mesh.coord(n).x, 5);
//! assert_eq!(mesh.coord(n).y, 1);
//! assert_eq!(mesh.neighbor(n, Direction::East), Some(NodeId(14)));
//! assert_eq!(mesh.hops(NodeId(0), NodeId(63)), 14);
//! ```

#![warn(missing_docs)]

mod coord;
mod fault;
mod mesh;
mod port;

pub use coord::{Coord, NodeId};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanError, FaultTarget};
pub use mesh::{Channel, Mesh, MinimalDirs};
pub use port::{Direction, Port, DIRECTIONS, PORTS, PORT_COUNT};
