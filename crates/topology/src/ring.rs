//! The bidirectional ring topology.
//!
//! A ring is the 1-dimensional torus: `n` routers on coordinates
//! `(0..n, 0)`, East/West channels wrapping around, no Y dimension at all
//! (North/South neighbors are `None`, exactly like a 1-row mesh). The
//! cheap-router appeal — two network ports instead of four — is why ring
//! fabrics keep showing up as NoC cost points; the escape-VC story is the
//! same dateline argument as the torus, confined to the X dimension (see
//! the torus module docs).

use crate::traits::{wrap, Topology};
use crate::{Direction, MinimalDirs, NodeId};
use core::fmt;

/// An `n`-node bidirectional ring (`n >= 3`), numbered consecutively
/// around the cycle.
///
/// ```
/// use footprint_topology::{Direction, NodeId, Ring, Topology};
/// let r = Ring::new(8);
/// assert_eq!(r.neighbor(NodeId(7), Direction::East), Some(NodeId(0)));
/// assert_eq!(r.neighbor(NodeId(0), Direction::North), None);
/// assert_eq!(r.hops(NodeId(1), NodeId(7)), 2); // the short way around
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ring {
    nodes: u16,
}

impl Ring {
    /// Minimum ring size.
    pub const MIN_NODES: u16 = 3;

    /// Creates an `n`-node ring.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (a 2-ring has doubled edges; use
    /// [`crate::TopologySpec::validate`] for a typed check).
    pub fn new(nodes: u16) -> Self {
        assert!(nodes >= Self::MIN_NODES, "ring needs at least 3 nodes");
        Ring { nodes }
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(self) -> usize {
        self.nodes as usize
    }

    /// `false`: a ring always has at least 3 nodes.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }
}

impl Topology for Ring {
    fn kind_name(&self) -> &'static str {
        "ring"
    }

    fn width(&self) -> u16 {
        self.nodes
    }

    fn height(&self) -> u16 {
        1
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let k = self.nodes;
        match dir {
            Direction::East => Some(NodeId((node.0 + 1) % k)),
            Direction::West => Some(NodeId((node.0 + k - 1) % k)),
            Direction::North | Direction::South => None,
        }
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        wrap::dist(a.0, b.0, self.nodes)
    }

    fn minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        MinimalDirs {
            x: wrap::minimal_dir(cur.0, dst.0, self.nodes, Direction::East, Direction::West),
            y: None,
        }
    }

    fn acyclic_minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        use core::cmp::Ordering;
        let x = match dst.0.cmp(&cur.0) {
            Ordering::Greater => Some(Direction::East),
            Ordering::Less => Some(Direction::West),
            Ordering::Equal => None,
        };
        MinimalDirs { x, y: None }
    }

    fn minimal_path_count(&self, a: NodeId, b: NodeId) -> u64 {
        let _ = (a, b);
        1
    }

    fn wraps(&self) -> bool {
        true
    }

    fn escape_class(&self, cur: NodeId, dst: NodeId, dir: Direction) -> u8 {
        let next = self
            .neighbor(cur, dir)
            .expect("ring escape hops travel East or West");
        match dir {
            Direction::East => wrap::escape_class(next.0, dst.0, true),
            Direction::West => wrap::escape_class(next.0, dst.0, false),
            Direction::North | Direction::South => 0,
        }
    }
}

impl fmt::Display for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-node ring", self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DIRECTIONS;

    #[test]
    fn ring_geometry() {
        let r = Ring::new(6);
        assert_eq!(r.len(), 6);
        assert_eq!(r.width(), 6);
        assert_eq!(r.height(), 1);
        assert_eq!(r.channels().count(), 12); // 2 directed channels per node
        assert_eq!(r.neighbor(NodeId(5), Direction::East), Some(NodeId(0)));
        assert_eq!(r.neighbor(NodeId(0), Direction::West), Some(NodeId(5)));
        assert_eq!(r.neighbor(NodeId(2), Direction::North), None);
        assert_eq!(r.neighbor(NodeId(2), Direction::South), None);
    }

    #[test]
    fn ring_has_one_wrap_edge() {
        let r = Ring::new(6);
        assert!(r.is_wrap_channel(NodeId(5), Direction::East));
        assert!(r.is_wrap_channel(NodeId(0), Direction::West));
        assert!(!r.is_wrap_channel(NodeId(2), Direction::East));
        assert!(!r.is_wrap_channel(NodeId(0), Direction::North));
        let wraps: usize = r
            .nodes()
            .map(|n| DIRECTIONS.iter().filter(|&&d| r.is_wrap_channel(n, d)).count())
            .sum();
        assert_eq!(wraps, 2, "one physical wrap edge, two directed channels");
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let r = Ring::new(7);
        for n in r.nodes() {
            for d in DIRECTIONS {
                if let Some(m) = r.neighbor(n, d) {
                    assert_eq!(r.neighbor(m, d.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn hops_and_dirs_take_the_short_way() {
        let r = Ring::new(8);
        assert_eq!(r.hops(NodeId(0), NodeId(7)), 1);
        assert_eq!(r.minimal_dirs(NodeId(0), NodeId(7)).x, Some(Direction::West));
        assert_eq!(r.minimal_dirs(NodeId(0), NodeId(3)).x, Some(Direction::East));
        // Antipodal tie: East.
        assert_eq!(r.minimal_dirs(NodeId(0), NodeId(4)).x, Some(Direction::East));
        assert_eq!(r.minimal_dirs(NodeId(3), NodeId(3)).count(), 0);
    }

    #[test]
    fn escape_class_matches_dateline() {
        let r = Ring::new(8);
        // 6 → 2 eastbound: class 0 until the wrap, then class 1.
        assert_eq!(r.escape_class(NodeId(6), NodeId(2), Direction::East), 0);
        assert_eq!(r.escape_class(NodeId(7), NodeId(2), Direction::East), 1);
        assert_eq!(r.escape_class(NodeId(0), NodeId(2), Direction::East), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ring::new(16).to_string(), "16-node ring");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        let _ = Ring::new(2);
    }
}
