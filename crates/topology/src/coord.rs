//! Node identifiers and coordinates.

use core::fmt;

/// A dense node index in row-major order: `id = y * width + x`.
///
/// This matches the numbering the paper uses in its examples and in the
/// Table 3 hotspot flow definitions (e.g. on the 8×8 mesh, node 63 is the
/// top-right corner `(7, 7)`).
///
/// ```
/// use footprint_topology::{Mesh, NodeId};
/// let mesh = Mesh::square(4);
/// assert_eq!(mesh.node_at(mesh.coord(NodeId(13))), NodeId(13));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node index as a `usize`, for indexing dense per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u16 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// An `(x, y)` mesh coordinate. `x` grows East, `y` grows North.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Column (0 = west edge).
    pub x: u16,
    /// Row (0 = south edge).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    ///
    /// ```
    /// use footprint_topology::Coord;
    /// let c = Coord::new(3, 5);
    /// assert_eq!((c.x, c.y), (3, 5));
    /// ```
    #[inline]
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to `other`, which is also the minimal hop count
    /// between the corresponding routers in a mesh.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((x, y): (u16, u16)) -> Self {
        Coord { x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_u16() {
        let n = NodeId::from(42u16);
        assert_eq!(u16::from(n), 42);
        assert_eq!(n.index(), 42);
    }

    #[test]
    fn node_id_display_matches_paper_notation() {
        assert_eq!(NodeId(13).to_string(), "n13");
    }

    #[test]
    fn coord_display_is_tuple_like() {
        assert_eq!(Coord::new(1, 2).to_string(), "(1,2)");
    }

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Coord::new(1, 7);
        let b = Coord::new(4, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 3 + 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn coord_from_tuple() {
        assert_eq!(Coord::from((3, 4)), Coord::new(3, 4));
    }
}
