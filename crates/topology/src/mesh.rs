//! The 2D mesh topology.

use crate::traits::Topology;
use crate::{Coord, Direction, NodeId, DIRECTIONS};
use core::fmt;

/// A `width × height` 2D mesh of routers, each attached to one endpoint.
///
/// Nodes are numbered in row-major order (`id = y * width + x`). The paper's
/// baseline is an 8×8 mesh; 4×4 and 16×16 are used for the scalability study
/// (Figure 8).
///
/// ```
/// use footprint_topology::{Mesh, NodeId, Direction};
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.len(), 16);
/// // n13 = (1, 3): the endpoint oversubscribed in the paper's Figure 2.
/// assert_eq!(mesh.coord(NodeId(13)).x, 1);
/// assert_eq!(mesh.neighbor(NodeId(13), Direction::North), None); // top edge
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh {
    width: u16,
    height: u16,
}

/// The minimal (productive) directions from a node toward a destination:
/// at most one X direction and one Y direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinimalDirs {
    /// The productive X direction, if the destination is in a different column.
    pub x: Option<Direction>,
    /// The productive Y direction, if the destination is in a different row.
    pub y: Option<Direction>,
}

impl MinimalDirs {
    /// Number of productive directions (0, 1 or 2). Zero means the packet has
    /// arrived at its destination router.
    #[inline]
    pub fn count(self) -> usize {
        self.x.is_some() as usize + self.y.is_some() as usize
    }

    /// Iterates over the productive directions, X first.
    pub fn iter(self) -> impl Iterator<Item = Direction> {
        self.x.into_iter().chain(self.y)
    }

    /// `true` if `dir` is one of the productive directions.
    #[inline]
    pub fn contains(self, dir: Direction) -> bool {
        self.x == Some(dir) || self.y == Some(dir)
    }
}

/// A directed inter-router channel `src → dst`, identified by its source
/// router and output direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Upstream router.
    pub src: NodeId,
    /// Direction of travel (output port of `src`).
    pub dir: Direction,
    /// Downstream router.
    pub dst: NodeId,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.src, self.dst)
    }
}

impl Mesh {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count would overflow
    /// `u16`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32 + 1,
            "mesh too large for u16 node ids"
        );
        Mesh { width, height }
    }

    /// Creates a square `k × k` mesh (the shape used in all of the paper's
    /// experiments).
    pub fn square(k: u16) -> Self {
        Mesh::new(k, k)
    }

    /// Mesh width (number of columns).
    #[inline]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (number of rows).
    #[inline]
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// `true` only for the degenerate 1×1 mesh — kept for `len` symmetry.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId)
    }

    /// The coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range (debug builds).
    #[inline]
    pub fn coord(self, node: NodeId) -> Coord {
        debug_assert!(node.index() < self.len(), "node out of range");
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// The node at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh (debug builds).
    #[inline]
    pub fn node_at(self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.width && c.y < self.height, "coord out of range");
        NodeId(c.y * self.width + c.x)
    }

    /// `true` if `c` lies inside the mesh.
    #[inline]
    pub fn contains(self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// The neighbor of `node` in direction `dir`, or `None` at a mesh edge.
    #[inline]
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let (dx, dy) = dir.delta();
        let nx = c.x as i32 + dx;
        let ny = c.y as i32 + dy;
        if nx < 0 || ny < 0 || nx >= self.width as i32 || ny >= self.height as i32 {
            None
        } else {
            Some(self.node_at(Coord::new(nx as u16, ny as u16)))
        }
    }

    /// Minimal hop count between two routers (Manhattan distance).
    #[inline]
    pub fn hops(self, a: NodeId, b: NodeId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }

    /// The productive directions from `cur` toward `dst`.
    ///
    /// ```
    /// use footprint_topology::{Mesh, NodeId, Direction};
    /// let mesh = Mesh::square(4);
    /// let dirs = mesh.minimal_dirs(NodeId(0), NodeId(10)); // (0,0) → (2,2)
    /// assert_eq!(dirs.x, Some(Direction::East));
    /// assert_eq!(dirs.y, Some(Direction::North));
    /// assert_eq!(dirs.count(), 2);
    /// ```
    pub fn minimal_dirs(self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        let c = self.coord(cur);
        let d = self.coord(dst);
        let x = match d.x.cmp(&c.x) {
            core::cmp::Ordering::Greater => Some(Direction::East),
            core::cmp::Ordering::Less => Some(Direction::West),
            core::cmp::Ordering::Equal => None,
        };
        let y = match d.y.cmp(&c.y) {
            core::cmp::Ordering::Greater => Some(Direction::North),
            core::cmp::Ordering::Less => Some(Direction::South),
            core::cmp::Ordering::Equal => None,
        };
        MinimalDirs { x, y }
    }

    /// Iterates over every directed inter-router channel in the mesh.
    ///
    /// An 8×8 mesh has `2 * (2 * 7 * 8) = 224` directed channels.
    pub fn channels(self) -> impl Iterator<Item = Channel> {
        self.nodes().flat_map(move |src| {
            DIRECTIONS.into_iter().filter_map(move |dir| {
                self.neighbor(src, dir).map(|dst| Channel { src, dir, dst })
            })
        })
    }

    /// Number of minimal paths between `a` and `b`: `C(dx + dy, dx)`.
    ///
    /// Used by the adaptiveness metrics of the routing crate. Saturates at
    /// `u64::MAX` for pathological distances (cannot occur on meshes that fit
    /// in `u16` ids).
    pub fn minimal_path_count(self, a: NodeId, b: NodeId) -> u64 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dx = (ca.x as i64 - cb.x as i64).unsigned_abs();
        let dy = (ca.y as i64 - cb.y as i64).unsigned_abs();
        binomial(dx + dy, dx.min(dy))
    }
}

impl Topology for Mesh {
    fn kind_name(&self) -> &'static str {
        "mesh"
    }

    fn width(&self) -> u16 {
        self.width
    }

    fn height(&self) -> u16 {
        self.height
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        Mesh::neighbor(*self, node, dir)
    }

    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        Mesh::hops(*self, a, b)
    }

    fn minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        Mesh::minimal_dirs(*self, cur, dst)
    }

    /// A mesh is its own acyclic subgraph.
    fn acyclic_minimal_dirs(&self, cur: NodeId, dst: NodeId) -> MinimalDirs {
        Mesh::minimal_dirs(*self, cur, dst)
    }

    fn minimal_path_count(&self, a: NodeId, b: NodeId) -> u64 {
        Mesh::minimal_path_count(*self, a, b)
    }

    fn wraps(&self) -> bool {
        false
    }

    /// Dimension-order escape on a mesh needs a single class.
    fn escape_class(&self, _cur: NodeId, _dst: NodeId, _dir: Direction) -> u8 {
        0
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.width, self.height)
    }
}

/// `C(n, k)` with saturation.
pub(crate) fn binomial(n: u64, k: u64) -> u64 {
    let k = k.min(n - k.min(n));
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Port;

    #[test]
    fn row_major_numbering() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(mesh.coord(NodeId(0)), Coord::new(0, 0));
        assert_eq!(mesh.coord(NodeId(5)), Coord::new(1, 1));
        assert_eq!(mesh.coord(NodeId(15)), Coord::new(3, 3));
        assert_eq!(mesh.node_at(Coord::new(2, 3)), NodeId(14));
    }

    #[test]
    fn neighbors_at_edges_are_none() {
        let mesh = Mesh::square(4);
        assert_eq!(mesh.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(mesh.neighbor(NodeId(0), Direction::South), None);
        assert_eq!(mesh.neighbor(NodeId(0), Direction::East), Some(NodeId(1)));
        assert_eq!(mesh.neighbor(NodeId(0), Direction::North), Some(NodeId(4)));
        assert_eq!(mesh.neighbor(NodeId(15), Direction::East), None);
        assert_eq!(mesh.neighbor(NodeId(15), Direction::North), None);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let mesh = Mesh::new(5, 3);
        for n in mesh.nodes() {
            for d in DIRECTIONS {
                if let Some(m) = mesh.neighbor(n, d) {
                    assert_eq!(mesh.neighbor(m, d.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn minimal_dirs_zero_at_destination() {
        let mesh = Mesh::square(8);
        let dirs = mesh.minimal_dirs(NodeId(20), NodeId(20));
        assert_eq!(dirs.count(), 0);
        assert_eq!(dirs.iter().count(), 0);
    }

    #[test]
    fn minimal_dirs_point_toward_destination() {
        let mesh = Mesh::square(8);
        // n63 = (7,7) from n0 = (0,0): East + North.
        let dirs = mesh.minimal_dirs(NodeId(0), NodeId(63));
        assert!(dirs.contains(Direction::East));
        assert!(dirs.contains(Direction::North));
        // n0 from n63: West + South.
        let dirs = mesh.minimal_dirs(NodeId(63), NodeId(0));
        assert!(dirs.contains(Direction::West));
        assert!(dirs.contains(Direction::South));
    }

    #[test]
    fn channel_count_matches_formula() {
        let mesh = Mesh::square(8);
        // 2 directed channels per mesh edge; edges = 2 * k * (k-1).
        assert_eq!(mesh.channels().count(), 2 * 2 * 8 * 7);
        let mesh = Mesh::new(4, 2);
        assert_eq!(mesh.channels().count(), 2 * (3 * 2 + 4));
    }

    #[test]
    fn hops_is_manhattan() {
        let mesh = Mesh::square(8);
        assert_eq!(mesh.hops(NodeId(0), NodeId(63)), 14);
        assert_eq!(mesh.hops(NodeId(7), NodeId(56)), 14);
        assert_eq!(mesh.hops(NodeId(12), NodeId(13)), 1);
    }

    #[test]
    fn minimal_path_count_small_cases() {
        let mesh = Mesh::square(8);
        // Same row: exactly one minimal path.
        assert_eq!(mesh.minimal_path_count(NodeId(0), NodeId(3)), 1);
        // 1×1 offset: two minimal paths.
        assert_eq!(mesh.minimal_path_count(NodeId(0), NodeId(9)), 2);
        // (0,0)→(2,2): C(4,2) = 6.
        assert_eq!(mesh.minimal_path_count(NodeId(0), NodeId(18)), 6);
        // Self: one (empty) path.
        assert_eq!(mesh.minimal_path_count(NodeId(5), NodeId(5)), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Mesh::square(8).to_string(), "8x8 mesh");
        let ch = Channel {
            src: NodeId(1),
            dir: Direction::East,
            dst: NodeId(2),
        };
        assert_eq!(ch.to_string(), "n1→n2");
        let _ = Port::Local; // silence unused import in some cfgs
    }
}
