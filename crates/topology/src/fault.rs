//! Deterministic fault schedules for resilience experiments.
//!
//! A [`FaultPlan`] is a topology-level description of *what breaks and
//! when*: a list of [`FaultEvent`]s, each taking a link (directed or
//! duplex) or a whole router down — or degrading a link's bandwidth — at a
//! given cycle, with an optional repair time. The plan is pure data: the
//! simulator owns the dynamic fault state derived from it, and the routing
//! crate only ever sees the resulting channel mask through its view traits.
//!
//! Plans are deterministic by construction. [`FaultPlan::random_link_faults`]
//! derives its link choices from a caller-provided seed through a splitmix64
//! stream, so the same `(mesh, count, seed)` triple always yields the same
//! plan — a requirement for the bit-identical-across-threads guarantee of
//! the experiment engine.

use crate::{AnyTopology, Direction, NodeId, DIRECTIONS};
use core::fmt;

/// What happens to the faulted component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The component stops carrying new traffic entirely.
    Down,
    /// The link's bandwidth drops to one flit every `period` cycles
    /// (`period ≥ 2`; a healthy link launches one flit per cycle).
    Degraded {
        /// Cycles between permitted flit launches.
        period: u64,
    },
}

/// The component a fault event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// One directed inter-router channel: the output of `node` toward `dir`.
    Link {
        /// Upstream router of the channel.
        node: NodeId,
        /// Direction of travel.
        dir: Direction,
    },
    /// Both directed channels of a mesh edge (the physical-cut model used
    /// by the fault-sweep experiments).
    DuplexLink {
        /// One endpoint of the edge.
        node: NodeId,
        /// Direction from `node` to the other endpoint.
        dir: Direction,
    },
    /// A whole router: every inter-router channel into or out of it goes
    /// down, isolating the attached endpoint. The local injection/ejection
    /// port itself is never modeled as faulty.
    Router(NodeId),
}

/// One scheduled fault: a target, a kind, an onset cycle and an optional
/// repair cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// Cycle the fault takes effect (applied before that cycle executes).
    pub at: u64,
    /// Cycle the fault is repaired, or `None` for a permanent fault.
    /// Must be strictly greater than `at`.
    pub until: Option<u64>,
    /// The faulted component.
    pub target: FaultTarget,
    /// Failure mode.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A permanent duplex link cut starting at cycle `at`.
    pub fn link_down(node: NodeId, dir: Direction, at: u64) -> Self {
        FaultEvent {
            at,
            until: None,
            target: FaultTarget::DuplexLink { node, dir },
            kind: FaultKind::Down,
        }
    }

    /// A permanent degradation of the duplex link to one flit every
    /// `period` cycles, starting at cycle `at`.
    pub fn link_degraded(node: NodeId, dir: Direction, at: u64, period: u64) -> Self {
        FaultEvent {
            at,
            until: None,
            target: FaultTarget::DuplexLink { node, dir },
            kind: FaultKind::Degraded { period },
        }
    }

    /// A permanent router failure starting at cycle `at`.
    pub fn router_down(node: NodeId, at: u64) -> Self {
        FaultEvent {
            at,
            until: None,
            target: FaultTarget::Router(node),
            kind: FaultKind::Down,
        }
    }

    /// Adds a repair time: the fault heals at the start of cycle `until`.
    pub fn repaired_at(mut self, until: u64) -> Self {
        self.until = Some(until);
        self
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.target {
            FaultTarget::Link { node, dir } => write!(f, "link {node}→{dir}")?,
            FaultTarget::DuplexLink { node, dir } => write!(f, "duplex link {node}↔{dir}")?,
            FaultTarget::Router(node) => write!(f, "router {node}")?,
        }
        match self.kind {
            FaultKind::Down => write!(f, " down")?,
            FaultKind::Degraded { period } => write!(f, " degraded (1 flit / {period} cycles)")?,
        }
        write!(f, " @ cycle {}", self.at)?;
        if let Some(u) = self.until {
            write!(f, ", repaired @ {u}")?;
        }
        Ok(())
    }
}

/// A malformed fault plan, detected by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A link target points off the edge of the mesh.
    LinkOffMesh {
        /// Upstream router of the offending target.
        node: NodeId,
        /// Direction with no neighbor.
        dir: Direction,
    },
    /// A router target does not exist on the mesh.
    RouterOffMesh {
        /// The out-of-range node id.
        node: NodeId,
    },
    /// A repair time at or before the onset cycle.
    RepairBeforeOnset {
        /// Onset cycle.
        at: u64,
        /// Offending repair cycle.
        until: u64,
    },
    /// A degraded link with `period < 2` (period 1 is a healthy link;
    /// period 0 is meaningless).
    DegradePeriodTooShort {
        /// The offending period.
        period: u64,
    },
    /// A wrap-targeted fault plan was requested on a fabric with no
    /// wraparound channels (a mesh): there is no dateline to bias toward.
    NoWrapChannels {
        /// The fabric kind ("mesh").
        kind: &'static str,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::LinkOffMesh { node, dir } => {
                write!(f, "fault plan targets a link {node}→{dir} that leaves the mesh")
            }
            FaultPlanError::RouterOffMesh { node } => {
                write!(f, "fault plan targets router {node}, which is not on the mesh")
            }
            FaultPlanError::RepairBeforeOnset { at, until } => write!(
                f,
                "fault repair cycle {until} is not after its onset cycle {at}"
            ),
            FaultPlanError::DegradePeriodTooShort { period } => write!(
                f,
                "degraded-link period {period} is too short (must be ≥ 2 cycles per flit)"
            ),
            FaultPlanError::NoWrapChannels { kind } => write!(
                f,
                "wrap-biased fault plan requested on a {kind}, which has no wraparound channels"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic schedule of fault events.
///
/// The empty plan (the [`Default`]) injects no faults and is guaranteed to
/// leave simulation behaviour bit-identical to a run with no fault
/// subsystem at all.
///
/// ```
/// use footprint_topology::{Direction, FaultEvent, FaultPlan, Mesh, NodeId};
///
/// let plan = FaultPlan::new()
///     .with(FaultEvent::link_down(NodeId(27), Direction::East, 0))
///     .with(FaultEvent::router_down(NodeId(9), 500).repaired_at(1500));
/// assert_eq!(plan.len(), 2);
/// plan.validate(Mesh::square(8)).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Appends an event, builder-style.
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Appends an event in place.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every directed channel some event of this plan takes fully down
    /// ([`FaultKind::Down`]; degraded links still carry traffic), over the
    /// plan's whole lifetime regardless of onset and repair times — the
    /// channel mask escape-safety checks run against. Sorted and
    /// deduplicated.
    pub fn down_channels(&self, topo: impl Into<AnyTopology>) -> Vec<(NodeId, Direction)> {
        let topo = topo.into();
        let mut out: Vec<(NodeId, Direction)> = Vec::new();
        for e in &self.events {
            if e.kind != FaultKind::Down {
                continue;
            }
            match e.target {
                FaultTarget::Link { node, dir } => out.push((node, dir)),
                FaultTarget::DuplexLink { node, dir } => {
                    out.push((node, dir));
                    if let Some(nb) = topo.neighbor(node, dir) {
                        out.push((nb, dir.opposite()));
                    }
                }
                FaultTarget::Router(n) => {
                    for d in DIRECTIONS {
                        if let Some(nb) = topo.neighbor(n, d) {
                            out.push((n, d));
                            out.push((nb, d.opposite()));
                        }
                    }
                }
            }
        }
        out.sort_unstable_by_key(|&(n, d)| (n.0, crate::Port::Dir(d).index()));
        out.dedup();
        out
    }

    /// How many of this plan's [down channels](Self::down_channels) are
    /// wraparound (dateline) channels of `topo`. Always 0 on a mesh.
    pub fn masked_wrap_channels(&self, topo: impl Into<AnyTopology>) -> usize {
        let topo = topo.into();
        self.down_channels(topo)
            .into_iter()
            .filter(|&(n, d)| topo.is_wrap_channel(n, d))
            .count()
    }

    /// `count` distinct permanent duplex-link cuts at cycle 0, chosen
    /// uniformly from the topology's edges by a splitmix64 stream over
    /// `seed`. Deterministic: the same `(topology, count, seed)` always
    /// yields the same plan. `count` is clamped to the number of edges.
    pub fn random_link_faults(topo: impl Into<AnyTopology>, count: usize, seed: u64) -> Self {
        let topo = topo.into();
        // Canonical (undirected) edges: East/North channels only. On
        // wrapping topologies this still covers every physical edge
        // exactly once — the West/South channels are the same edges seen
        // from the other endpoint.
        let mut edges: Vec<(NodeId, Direction)> = Vec::new();
        for node in topo.nodes() {
            for dir in [Direction::East, Direction::North] {
                if topo.neighbor(node, dir).is_some() {
                    edges.push((node, dir));
                }
            }
        }
        let mut rng = Splitmix64(seed);
        let count = count.min(edges.len());
        let mut events = Vec::with_capacity(count);
        // Partial Fisher-Yates: the first `count` slots end up a uniform
        // sample without replacement.
        for i in 0..count {
            let j = i + (rng.next() % (edges.len() - i) as u64) as usize;
            edges.swap(i, j);
            let (node, dir) = edges[i];
            events.push(FaultEvent::link_down(node, dir, 0));
        }
        FaultPlan { events }
    }

    /// The dateline-aware variant of [`FaultPlan::random_link_faults`]:
    /// `wrap_cuts` permanent duplex cuts chosen uniformly from the
    /// topology's *wraparound* edges plus `other_cuts` from the remaining
    /// (grid) edges, all at cycle 0. Deterministic in
    /// `(topology, wrap_cuts, other_cuts, seed)`; counts are clamped to
    /// their pool sizes.
    ///
    /// Cutting wrap edges specifically is what stresses the dateline
    /// escape argument — a random uniform cut on an 8×8 torus only hits a
    /// wrap edge 1 time in 8.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::NoWrapChannels`] when `wrap_cuts > 0` on
    /// a fabric without wraparound edges (a mesh): the bias target does
    /// not exist, and silently returning grid cuts would misreport what
    /// the experiment exercised.
    pub fn random_link_faults_biased(
        topo: impl Into<AnyTopology>,
        wrap_cuts: usize,
        other_cuts: usize,
        seed: u64,
    ) -> Result<Self, FaultPlanError> {
        let topo = topo.into();
        let mut wrap_edges: Vec<(NodeId, Direction)> = Vec::new();
        let mut grid_edges: Vec<(NodeId, Direction)> = Vec::new();
        for node in topo.nodes() {
            for dir in [Direction::East, Direction::North] {
                if topo.neighbor(node, dir).is_some() {
                    if topo.is_wrap_channel(node, dir) {
                        wrap_edges.push((node, dir));
                    } else {
                        grid_edges.push((node, dir));
                    }
                }
            }
        }
        if wrap_cuts > 0 && wrap_edges.is_empty() {
            return Err(FaultPlanError::NoWrapChannels {
                kind: topo.kind_name(),
            });
        }
        let mut rng = Splitmix64(seed);
        let mut events = Vec::new();
        let mut sample = |edges: &mut Vec<(NodeId, Direction)>, count: usize| {
            let count = count.min(edges.len());
            for i in 0..count {
                let j = i + (rng.next() % (edges.len() - i) as u64) as usize;
                edges.swap(i, j);
                let (node, dir) = edges[i];
                events.push(FaultEvent::link_down(node, dir, 0));
            }
        };
        sample(&mut wrap_edges, wrap_cuts);
        sample(&mut grid_edges, other_cuts);
        Ok(FaultPlan { events })
    }

    /// Checks every event against the topology's channel set: a link
    /// target is valid exactly when the topology has that directed
    /// channel, so wrap links on a torus are faultable and the missing Y
    /// dimension of a ring is not.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found: a target off the
    /// topology, a repair at or before its onset, or a degenerate degrade
    /// period.
    pub fn validate(&self, topo: impl Into<AnyTopology>) -> Result<(), FaultPlanError> {
        let topo = topo.into();
        for e in &self.events {
            match e.target {
                FaultTarget::Link { node, dir } | FaultTarget::DuplexLink { node, dir } => {
                    if node.index() >= topo.len() || topo.neighbor(node, dir).is_none() {
                        return Err(FaultPlanError::LinkOffMesh { node, dir });
                    }
                }
                FaultTarget::Router(node) => {
                    if node.index() >= topo.len() {
                        return Err(FaultPlanError::RouterOffMesh { node });
                    }
                }
            }
            if let Some(until) = e.until {
                if until <= e.at {
                    return Err(FaultPlanError::RepairBeforeOnset { at: e.at, until });
                }
            }
            if let FaultKind::Degraded { period } = e.kind {
                if period < 2 {
                    return Err(FaultPlanError::DegradePeriodTooShort { period });
                }
            }
        }
        Ok(())
    }

    /// The directed channels taken down or degraded by `event`, as
    /// `(upstream, dir)` pairs pushed into `out`. Router faults expand to
    /// every attached channel in both directions, whatever the topology's
    /// degree at that node.
    pub fn directed_channels(
        topo: impl Into<AnyTopology>,
        event: &FaultEvent,
        out: &mut Vec<(NodeId, Direction)>,
    ) {
        let topo = topo.into();
        match event.target {
            FaultTarget::Link { node, dir } => out.push((node, dir)),
            FaultTarget::DuplexLink { node, dir } => {
                out.push((node, dir));
                if let Some(nb) = topo.neighbor(node, dir) {
                    out.push((nb, dir.opposite()));
                }
            }
            FaultTarget::Router(node) => {
                for dir in DIRECTIONS {
                    if let Some(nb) = topo.neighbor(node, dir) {
                        out.push((node, dir));
                        out.push((nb, dir.opposite()));
                    }
                }
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no faults");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Minimal splitmix64 stream — the topology crate carries no RNG
/// dependency, and fault placement only needs a small, well-mixed,
/// deterministic sequence.
struct Splitmix64(u64);

impl Splitmix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mesh;

    #[test]
    fn empty_plan_is_default_and_validates() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
        plan.validate(Mesh::square(4)).unwrap();
        assert_eq!(plan.to_string(), "no faults");
    }

    #[test]
    fn builder_collects_events_in_order() {
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(0), Direction::East, 10))
            .with(FaultEvent::router_down(NodeId(5), 20));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at, 10);
        assert_eq!(plan.events()[1].target, FaultTarget::Router(NodeId(5)));
    }

    #[test]
    fn validate_rejects_edge_links() {
        let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(0), Direction::West, 0));
        assert_eq!(
            plan.validate(Mesh::square(4)),
            Err(FaultPlanError::LinkOffMesh {
                node: NodeId(0),
                dir: Direction::West
            })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_router() {
        let plan = FaultPlan::new().with(FaultEvent::router_down(NodeId(99), 0));
        assert_eq!(
            plan.validate(Mesh::square(4)),
            Err(FaultPlanError::RouterOffMesh { node: NodeId(99) })
        );
    }

    #[test]
    fn validate_rejects_repair_before_onset() {
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(0), Direction::East, 100).repaired_at(100));
        assert_eq!(
            plan.validate(Mesh::square(4)),
            Err(FaultPlanError::RepairBeforeOnset { at: 100, until: 100 })
        );
    }

    #[test]
    fn validate_rejects_degenerate_degrade_period() {
        let plan =
            FaultPlan::new().with(FaultEvent::link_degraded(NodeId(0), Direction::East, 0, 1));
        assert_eq!(
            plan.validate(Mesh::square(4)),
            Err(FaultPlanError::DegradePeriodTooShort { period: 1 })
        );
    }

    #[test]
    fn random_link_faults_are_deterministic_and_distinct() {
        let mesh = Mesh::square(8);
        let a = FaultPlan::random_link_faults(mesh, 3, 42);
        let b = FaultPlan::random_link_faults(mesh, 3, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        a.validate(mesh).unwrap();
        let targets: std::collections::HashSet<_> =
            a.events().iter().map(|e| e.target).collect();
        assert_eq!(targets.len(), 3, "faults must hit distinct links");
        // A different seed reshuffles.
        let c = FaultPlan::random_link_faults(mesh, 3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn biased_faults_target_wrap_edges_on_torus() {
        use crate::{Ring, Topology, Torus};
        let torus = Torus::square(8);
        let plan = FaultPlan::random_link_faults_biased(torus, 3, 2, 7).unwrap();
        assert_eq!(plan.len(), 5);
        plan.validate(torus).unwrap();
        let wraps = plan
            .events()
            .iter()
            .filter(|e| match e.target {
                FaultTarget::DuplexLink { node, dir } => torus.is_wrap_channel(node, dir),
                _ => false,
            })
            .count();
        assert_eq!(wraps, 3, "exactly the requested wrap cuts");
        // Deterministic in the full tuple.
        assert_eq!(
            plan,
            FaultPlan::random_link_faults_biased(torus, 3, 2, 7).unwrap()
        );
        assert_ne!(
            plan,
            FaultPlan::random_link_faults_biased(torus, 3, 2, 8).unwrap()
        );
        // A ring has exactly one wrap edge; the count clamps to it.
        let ring = Ring::new(8);
        let p = FaultPlan::random_link_faults_biased(ring, 4, 0, 1).unwrap();
        assert_eq!(p.len(), 1);
        p.validate(ring).unwrap();
    }

    #[test]
    fn biased_faults_reject_mesh_wrap_requests() {
        let mesh = Mesh::square(4);
        assert_eq!(
            FaultPlan::random_link_faults_biased(mesh, 1, 0, 0),
            Err(FaultPlanError::NoWrapChannels { kind: "mesh" })
        );
        // Zero wrap cuts is fine on a mesh — it degrades to a grid sample.
        let p = FaultPlan::random_link_faults_biased(mesh, 0, 2, 0).unwrap();
        assert_eq!(p.len(), 2);
        p.validate(mesh).unwrap();
    }

    #[test]
    fn random_link_faults_clamp_to_edge_count() {
        let mesh = Mesh::new(2, 2); // 4 edges
        let plan = FaultPlan::random_link_faults(mesh, 100, 1);
        assert_eq!(plan.len(), 4);
        plan.validate(mesh).unwrap();
    }

    #[test]
    fn duplex_link_expands_to_both_directions() {
        let mesh = Mesh::square(4);
        let e = FaultEvent::link_down(NodeId(0), Direction::East, 0);
        let mut out = Vec::new();
        FaultPlan::directed_channels(mesh, &e, &mut out);
        assert_eq!(
            out,
            vec![(NodeId(0), Direction::East), (NodeId(1), Direction::West)]
        );
    }

    #[test]
    fn router_fault_expands_to_all_incident_channels() {
        let mesh = Mesh::square(4);
        let e = FaultEvent::router_down(NodeId(5), 0); // interior node: 4 neighbors
        let mut out = Vec::new();
        FaultPlan::directed_channels(mesh, &e, &mut out);
        assert_eq!(out.len(), 8);
        // Corner node: 2 neighbors → 4 directed channels.
        let e = FaultEvent::router_down(NodeId(0), 0);
        out.clear();
        FaultPlan::directed_channels(mesh, &e, &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn display_renders_schedule() {
        let e = FaultEvent::link_down(NodeId(3), Direction::North, 100).repaired_at(400);
        let s = e.to_string();
        assert!(s.contains("n3"), "{s}");
        assert!(s.contains("100"), "{s}");
        assert!(s.contains("400"), "{s}");
        let d = FaultEvent::link_degraded(NodeId(1), Direction::East, 0, 4).to_string();
        assert!(d.contains("degraded"), "{d}");
    }
}
