//! The simulation builder: one fluent entry point for every experiment.

use core::fmt;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::exec::JobOutcome;
use crate::journal::SweepJournal;
use crate::snapcache;
use crate::{RunReport, TenantSpec, TrafficSpec};
use footprint_routing::RoutingSpec;
use footprint_sim::observe::ProbePair;
use footprint_sim::{
    ConfigError, Network, NoTraffic, NullProbe, Probe, Scheduler, Sentinel, SentinelReport,
    SimConfig, StallDiagnostic, StallWatchdog, UnreachablePolicy, Workload,
};
use footprint_stats::{Curve, FaultStats, PartitionReport, RecoveryStats, SweepPoint, TenantProbe};
use footprint_topology::{FaultPlan, NodeId, TopologySpec};
use footprint_traffic::{ModulationSpec, Modulator, PacketSize, Tenant, TenantWorkload};

/// Why a run ([`SimulationBuilder::run_with`] or any of its shims) failed.
#[derive(Debug)]
pub enum RunError {
    /// The configuration was rejected before the network was built.
    Config(ConfigError),
    /// The stall watchdog tripped: no flit moved for the configured
    /// number of cycles while packets were in flight. The boxed
    /// diagnostic bundle describes the frozen network.
    Stalled(Box<StallDiagnostic>),
    /// The run was configured with [`UnreachablePolicy::Error`] and the
    /// fault plan made at least one generated packet's destination
    /// unreachable. The boxed [`FaultStats`] carries the offending
    /// source→destination pairs and the full disposition accounting.
    Unreachable(Box<FaultStats>),
    /// The runtime invariant sentinel detected a conservation, VC-state
    /// or deadlock violation. The boxed report names the first-failure
    /// cycle, the violated invariant and a state excerpt — the typed
    /// alternative to a panic deep in the cycle loop or, worse, silently
    /// wrong numbers.
    InvariantViolated(Box<SentinelReport>),
    /// The run exceeded its wall-clock deadline
    /// ([`RunOptions::deadline`] / [`SweepOptions::deadline`]) — the
    /// bound a sweep point must finish within so one degenerate
    /// configuration cannot hold an entire campaign hostage.
    DeadlineExceeded {
        /// The configured wall-clock limit.
        limit: Duration,
        /// Simulated cycle reached when the deadline fired.
        cycle: u64,
    },
    /// A sweep job panicked. The panic was quarantined to its own result
    /// slot ([`crate::exec::JobSet::run_quarantined_on`]) so sibling
    /// points completed (and were journaled) normally; the string carries
    /// the offending point and the captured panic payload.
    JobPanicked(String),
    /// The sweep checkpoint journal could not be opened, validated or
    /// appended ([`SweepOptions::checkpoint`]).
    Checkpoint(String),
    /// The fault plan masks wraparound (dateline) channels on a wrapping
    /// fabric and severs deterministic escape routes, so the routing
    /// algorithm's Duato/dateline deadlock-freedom argument no longer
    /// covers every pair. Checked up front
    /// ([`footprint_routing::cdg::check_escape_under_mask`]) — the run is
    /// refused before it can livelock. Opt into the degraded fallback with
    /// [`RunOptions::degraded_escape`] to run anyway under watchdog or
    /// sentinel cover.
    EscapeCompromised {
        /// Source→destination pairs whose deterministic escape route the
        /// mask severs (sorted).
        severed: Vec<(NodeId, NodeId)>,
        /// How many masked directed channels are wraparound channels.
        masked_wrap_channels: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Stalled(d) => d.fmt(f),
            RunError::Unreachable(s) => write!(
                f,
                "{} source→destination pair(s) unreachable under the fault plan \
                 ({} packet(s) dropped)",
                s.unreachable_pairs.len(),
                s.dropped()
            ),
            RunError::InvariantViolated(r) => r.fmt(f),
            RunError::DeadlineExceeded { limit, cycle } => write!(
                f,
                "run exceeded its {limit:?} wall-clock deadline at simulated cycle {cycle}"
            ),
            RunError::JobPanicked(msg) => write!(f, "sweep job panicked: {msg}"),
            RunError::Checkpoint(msg) => write!(f, "sweep checkpoint error: {msg}"),
            RunError::EscapeCompromised {
                severed,
                masked_wrap_channels,
            } => write!(
                f,
                "fault plan compromises the escape network on a wrapping \
                 fabric: {} deterministic escape route(s) severed, {} \
                 wraparound channel(s) masked (run with degraded_escape to \
                 proceed under watchdog/sentinel cover)",
                severed.len(),
                masked_wrap_channels
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            RunError::Stalled(d) => Some(d.as_ref()),
            RunError::InvariantViolated(r) => Some(r.as_ref()),
            RunError::Unreachable(_)
            | RunError::DeadlineExceeded { .. }
            | RunError::JobPanicked(_)
            | RunError::Checkpoint(_)
            | RunError::EscapeCompromised { .. } => None,
        }
    }
}

impl From<Box<SentinelReport>> for RunError {
    fn from(r: Box<SentinelReport>) -> Self {
        RunError::InvariantViolated(r)
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

impl From<Box<StallDiagnostic>> for RunError {
    fn from(d: Box<StallDiagnostic>) -> Self {
        RunError::Stalled(d)
    }
}

/// Options for one execution of a [`SimulationBuilder`]: which observers
/// to attach and which fault schedule to run under.
///
/// The canonical entry point [`SimulationBuilder::run_with`] consumes this;
/// every legacy entry point (`run`, `run_probed`, `run_watched`) is a shim
/// over it. `RunOptions::default()` reproduces the plain `run()` behaviour
/// bit for bit: no probe, no watchdog, no faults.
///
/// ```
/// use footprint_core::{RunOptions, SimulationBuilder};
///
/// let report = SimulationBuilder::mesh(4)
///     .vcs(4)
///     .warmup(100)
///     .measurement(200)
///     .run_with(RunOptions::new().watchdog(10_000))?;
/// assert!(report.latency.ejected_packets > 0);
/// # Ok::<(), footprint_core::RunError>(())
/// ```
#[derive(Default)]
pub struct RunOptions<'a> {
    probe: Option<&'a mut dyn Probe>,
    stall_threshold: Option<u64>,
    faults: FaultPlan,
    on_unreachable: UnreachablePolicy,
    sentinel: Option<bool>,
    deadline: Option<Duration>,
    scheduler: Scheduler,
    degraded_escape: bool,
    snapshot_dir: Option<PathBuf>,
}

impl<'a> RunOptions<'a> {
    /// No probe, no watchdog, no faults — the plain-`run()` configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a probe from the warmup boundary onward (measurement and
    /// drain phases).
    #[must_use]
    pub fn probe(mut self, probe: &'a mut dyn Probe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Guards the whole run (warmup included) with a stall watchdog: if no
    /// flit moves for `stall_threshold` consecutive cycles while packets
    /// are in flight, the run aborts with [`RunError::Stalled`] instead of
    /// spinning to the cycle limit. The threshold must be nonzero.
    #[must_use]
    pub fn watchdog(mut self, stall_threshold: u64) -> Self {
        self.stall_threshold = Some(stall_threshold);
        self
    }

    /// Runs under a fault schedule. The plan is validated against the
    /// topology when the network is built.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Disposition of packets whose destination the fault state makes
    /// unreachable (default: drop with accounting). With
    /// [`UnreachablePolicy::Error`], a run that observes any unreachable
    /// generation fails with [`RunError::Unreachable`] after completing.
    #[must_use]
    pub fn on_unreachable(mut self, policy: UnreachablePolicy) -> Self {
        self.on_unreachable = policy;
        self
    }

    /// Explicitly enables (or disables) the runtime invariant sentinel
    /// for the whole run — warmup, measurement and drain. When never
    /// called, the `FOOTPRINT_SENTINEL` environment variable decides
    /// ([`Sentinel::env_enabled`]).
    ///
    /// The sentinel only observes, so an untripped sentinel-on run
    /// reports bit-identically to a sentinel-off run; a violation aborts
    /// with [`RunError::InvariantViolated`].
    #[must_use]
    pub fn sentinel(mut self, enabled: bool) -> Self {
        self.sentinel = Some(enabled);
        self
    }

    /// Bounds the run to `limit` of wall-clock time, checked at coarse
    /// cycle-chunk boundaries (~1024 cycles). Exceeding it aborts with
    /// [`RunError::DeadlineExceeded`].
    #[must_use]
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Which cycle loop the network runs ([`Scheduler::Active`] by
    /// default). The active-set scheduler is bit-identical to the dense
    /// reference loop; select [`Scheduler::Dense`] to cross-check it or to
    /// measure its speedup.
    #[must_use]
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Opts into the degraded-escape fallback: a fault plan that masks
    /// wraparound channels and severs deterministic escape routes
    /// normally refuses to run ([`RunError::EscapeCompromised`]) because
    /// the algorithm's wrapping deadlock-freedom argument no longer
    /// covers every pair. With this flag the run proceeds anyway — the
    /// severed pairs are quarantined by the per-packet deliverability
    /// check, and a watchdog or sentinel should cover the in-flight
    /// worst case (a wedged wormhole across the mask) since the escape
    /// network is no longer a complete fallback.
    #[must_use]
    pub fn degraded_escape(mut self, allow: bool) -> Self {
        self.degraded_escape = allow;
        self
    }

    /// Enables the warm-start snapshot cache rooted at `dir`: the first
    /// eligible run of a configuration serializes its post-warmup network
    /// state there, and later runs of the *same* configuration restore it
    /// and skip straight to measurement. The cache key covers everything
    /// that shapes the warmed state — topology, router geometry, routing,
    /// traffic, packet mix, injection rate, seed, warmup length and
    /// scheduler — so a hit reports **bit-identically** to a cold run.
    ///
    /// Ineligible runs (fault plans, sentinel on, tenants, modulation,
    /// stateful workloads, zero warmup) silently take the cold path; a
    /// missing, corrupt or stale cache file likewise degrades to a plain
    /// warmup. The cache never changes results, only how fast they arrive.
    #[must_use]
    pub fn snapshot_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }
}

/// Options for a latency-throughput sweep ([`SimulationBuilder::sweep_with`]):
/// the per-point [`RunOptions`] equivalent plus sweep-level knobs.
///
/// `SweepOptions::default()` reproduces the plain `sweep()` behaviour: total
/// latency over all classes, default worker pool, no faults.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    latency_class: Option<u8>,
    threads: Option<usize>,
    stall_threshold: Option<u64>,
    faults: FaultPlan,
    on_unreachable: UnreachablePolicy,
    sentinel: Option<bool>,
    deadline: Option<Duration>,
    checkpoint: Option<PathBuf>,
    scheduler: Scheduler,
    degraded_escape: bool,
    ensemble: usize,
    snapshot_dir: Option<PathBuf>,
}

impl SweepOptions {
    /// Total-latency curve on the default worker pool, no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Summarizes class `class` instead of the total over all classes.
    #[must_use]
    pub fn latency_class(mut self, class: Option<u8>) -> Self {
        self.latency_class = class;
        self
    }

    /// Explicit worker count (`<= 1` runs sequentially on the calling
    /// thread). Defaults to [`crate::exec::num_threads`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Guards every sweep point with a stall watchdog (see
    /// [`RunOptions::watchdog`]).
    #[must_use]
    pub fn watchdog(mut self, stall_threshold: u64) -> Self {
        self.stall_threshold = Some(stall_threshold);
        self
    }

    /// Runs every sweep point under the same fault schedule.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Per-point unreachable-destination policy (see
    /// [`RunOptions::on_unreachable`]).
    #[must_use]
    pub fn on_unreachable(mut self, policy: UnreachablePolicy) -> Self {
        self.on_unreachable = policy;
        self
    }

    /// Runs every point under the runtime invariant sentinel (see
    /// [`RunOptions::sentinel`]). Defaults to the `FOOTPRINT_SENTINEL`
    /// environment variable.
    #[must_use]
    pub fn sentinel(mut self, enabled: bool) -> Self {
        self.sentinel = Some(enabled);
        self
    }

    /// Wall-clock deadline for every individual sweep point (see
    /// [`RunOptions::deadline`]): one degenerate point fails with
    /// [`RunError::DeadlineExceeded`] instead of stalling the campaign.
    #[must_use]
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Journals completed sweep points to `path`
    /// ([`crate::journal::SweepJournal`]) so a crashed or killed campaign
    /// resumes where it left off: re-running the same sweep with the same
    /// journal skips the recorded points and produces a curve
    /// bit-identical to an uninterrupted run, at any thread count.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Cycle loop for every sweep point (see [`RunOptions::scheduler`];
    /// [`Scheduler::Active`] by default, bit-identical either way).
    #[must_use]
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Opts every sweep point into the degraded-escape fallback (see
    /// [`RunOptions::degraded_escape`]).
    #[must_use]
    pub fn degraded_escape(mut self, allow: bool) -> Self {
        self.degraded_escape = allow;
        self
    }

    /// Runs the sweep as lane-parallel ensembles of width `n`: up to `n`
    /// sweep points (same topology and geometry, different rates and
    /// derived seeds) are built as independent lanes and stepped in
    /// lockstep, one cycle per lane per round, inside a single worker job.
    /// Each lane is a complete private network, so its [`SweepPoint`] is
    /// **bit-identical** to the one a standalone
    /// [`SimulationBuilder::run_with`] of that point would produce — the
    /// ensemble only changes the execution schedule, never the numbers.
    ///
    /// Groups that cannot run in lockstep (a single leftover point, a
    /// per-point deadline, sentinel on, tenant workloads) transparently
    /// fall back to the sequential per-point path. `n <= 1` (the default)
    /// disables grouping entirely.
    #[must_use]
    pub fn ensemble(mut self, n: usize) -> Self {
        self.ensemble = n;
        self
    }

    /// Enables the warm-start snapshot cache for every sweep point (see
    /// [`RunOptions::snapshot_cache`]); ensemble lanes consult the same
    /// cache.
    #[must_use]
    pub fn snapshot_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// The per-point [`RunOptions`] this sweep configuration induces.
    fn run_options(&self) -> RunOptions<'static> {
        let mut o = RunOptions::new()
            .faults(self.faults.clone())
            .on_unreachable(self.on_unreachable)
            .scheduler(self.scheduler)
            .degraded_escape(self.degraded_escape);
        if let Some(d) = &self.snapshot_dir {
            o = o.snapshot_cache(d.clone());
        }
        if let Some(t) = self.stall_threshold {
            o = o.watchdog(t);
        }
        if let Some(s) = self.sentinel {
            o = o.sentinel(s);
        }
        if let Some(d) = self.deadline {
            o = o.deadline(d);
        }
        o
    }
}

/// Fluent configuration of one simulation run.
///
/// Defaults follow the paper's Table 2: 8×8 mesh, 10 VCs, 4-flit buffers,
/// speedup 2, single-flit packets, Footprint routing, uniform random
/// traffic, 10k warmup + 10k measurement cycles.
///
/// ```
/// use footprint_core::{SimulationBuilder, RoutingSpec, TrafficSpec};
///
/// let report = SimulationBuilder::mesh(4)
///     .vcs(4)
///     .routing(RoutingSpec::Dor)
///     .traffic(TrafficSpec::UniformRandom)
///     .injection_rate(0.1)
///     .warmup(300)
///     .measurement(500)
///     .seed(1)
///     .run()?;
/// assert!(report.latency.ejected_packets > 0);
/// # Ok::<(), footprint_core::RunError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    topology: TopologySpec,
    num_vcs: usize,
    vc_buffer_depth: usize,
    speedup: usize,
    routing: RoutingSpec,
    traffic: TrafficSpec,
    packet_size: PacketSize,
    rate: f64,
    link_latency: usize,
    warmup: u64,
    measurement: u64,
    drain: u64,
    seed: u64,
    modulation: ModulationSpec,
    tenants: Vec<TenantSpec>,
}

/// Seed salt for the single-workload modulator, far outside the sweep
/// index range so modulation RNGs never collide with point seeds.
const MODULATION_SALT: u64 = 0x4D4F_4475_4C41_7465; // "MODuLAte"
/// Base seed salt for per-tenant modulators (tenant `i` uses `SALT + i`).
const TENANT_SALT: u64 = 0x7465_4E61_4E74_0000; // "teNaNt"
/// Accounting-window length for per-tenant offered/delivered timelines.
const TENANT_WINDOW: u64 = 256;

impl SimulationBuilder {
    /// Starts from the paper's default configuration (8×8 mesh).
    pub fn paper_default() -> Self {
        let cfg = SimConfig::paper_default();
        SimulationBuilder {
            topology: cfg.topology,
            num_vcs: cfg.num_vcs,
            vc_buffer_depth: cfg.vc_buffer_depth,
            speedup: cfg.speedup,
            routing: RoutingSpec::Footprint,
            traffic: TrafficSpec::UniformRandom,
            packet_size: PacketSize::SINGLE,
            rate: 0.1,
            link_latency: cfg.link_latency,
            warmup: 10_000,
            measurement: 10_000,
            drain: 0,
            seed: 0xF007,
            modulation: ModulationSpec::Steady,
            tenants: Vec::new(),
        }
    }

    /// Starts from a `k × k` mesh with otherwise default parameters.
    pub fn mesh(k: u16) -> Self {
        Self::paper_default().topology(TopologySpec::mesh(k))
    }

    /// Starts from a `k × k` torus with otherwise default parameters.
    pub fn torus(k: u16) -> Self {
        Self::paper_default().topology(TopologySpec::torus(k))
    }

    /// Starts from an `n`-node ring with otherwise default parameters.
    pub fn ring(nodes: u16) -> Self {
        Self::paper_default().topology(TopologySpec::ring(nodes))
    }

    /// Sets the topology explicitly — a [`TopologySpec`] or any concrete
    /// topology value (`Mesh`, `Torus`, `Ring`).
    pub fn topology(mut self, topo: impl Into<TopologySpec>) -> Self {
        self.topology = topo.into();
        self
    }

    /// The topology currently configured.
    pub fn topology_spec(&self) -> TopologySpec {
        self.topology
    }

    /// VCs per physical channel.
    pub fn vcs(mut self, n: usize) -> Self {
        self.num_vcs = n;
        self
    }

    /// VC buffer depth in flits.
    pub fn buffer_depth(mut self, n: usize) -> Self {
        self.vc_buffer_depth = n;
        self
    }

    /// Internal speedup.
    pub fn speedup(mut self, n: usize) -> Self {
        self.speedup = n;
        self
    }

    /// Routing algorithm.
    pub fn routing(mut self, spec: RoutingSpec) -> Self {
        self.routing = spec;
        self
    }

    /// Workload.
    pub fn traffic(mut self, spec: TrafficSpec) -> Self {
        self.traffic = spec;
        self
    }

    /// Packet-size mix.
    pub fn packet_size(mut self, size: PacketSize) -> Self {
        self.packet_size = size;
        self
    }

    /// Offered load, flits/node/cycle (for hotspot traffic: the hotspot
    /// flow rate).
    pub fn injection_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// One-way link latency in cycles (default 1).
    pub fn link_latency(mut self, cycles: usize) -> Self {
        self.link_latency = cycles;
        self
    }

    /// Warmup cycles (excluded from measurement).
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.warmup = cycles;
        self
    }

    /// Measurement cycles.
    pub fn measurement(mut self, cycles: u64) -> Self {
        self.measurement = cycles;
        self
    }

    /// Drain cycles after measurement (no injection; lets in-flight packets
    /// finish — useful for delivery checks).
    pub fn drain(mut self, cycles: u64) -> Self {
        self.drain = cycles;
        self
    }

    /// RNG seed (runs are deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Applies a time-varying injection schedule
    /// ([`footprint_traffic::Modulator`]) over the configured traffic:
    /// on/off bursts, rate ramps or piecewise steps. Ignored for
    /// multi-tenant runs (each [`TenantSpec`] carries its own schedule).
    /// The modulator's RNG seed derives from the builder seed, so sweeps
    /// stay bit-identical at any thread count. An invalid schedule fails
    /// the run with [`ConfigError::Workload`].
    pub fn modulation(mut self, spec: ModulationSpec) -> Self {
        self.modulation = spec;
        self
    }

    /// Replaces the single-workload configuration with explicit tenants
    /// sharing the mesh. Tenant `i` gets traffic class `i` (its key in
    /// [`RunReport::tenants`]) and runs at its own rate under its own
    /// modulation schedule; the builder-level [`Self::injection_rate`] and
    /// [`Self::modulation`] are ignored. Per-tenant SLO summaries appear
    /// in [`RunReport::tenants`]. Tenant rates must sum to at most 1.0
    /// flit/node/cycle (the per-node injection budget), or the run fails
    /// with [`ConfigError::Workload`]. An empty vector restores the
    /// single-workload behaviour.
    pub fn tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.tenants = tenants;
        self
    }

    /// The routing spec currently configured.
    pub fn routing_spec(&self) -> RoutingSpec {
        self.routing
    }

    /// The offered load currently configured.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig {
            topology: self.topology,
            num_vcs: self.num_vcs,
            vc_buffer_depth: self.vc_buffer_depth,
            speedup: self.speedup,
            link_latency: self.link_latency,
        }
    }

    /// Builds the network and workload without running (for custom drive
    /// loops). No fault plan is attached; use
    /// [`SimulationBuilder::build_with`] for that.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (bad VC count, etc.).
    pub fn build(&self) -> Result<(Network, Box<dyn Workload>), ConfigError> {
        let net = Network::new(self.sim_config(), self.routing.build(), self.seed)?;
        let wl = self.build_workload()?;
        Ok((net, wl))
    }

    /// Builds the configured workload — single traffic spec, modulated
    /// spec, or multi-tenant composite — lowering traffic-layer errors
    /// into the simulator's [`ConfigError`] vocabulary (the traffic crate
    /// sits above `footprint-sim`, so the errors travel as plain data).
    fn build_workload(&self) -> Result<Box<dyn Workload>, ConfigError> {
        let lower = |e: footprint_traffic::PatternError| ConfigError::PatternMesh {
            pattern: e.pattern,
            nodes: e.nodes,
        };
        let topo = self.topology.validate()?;
        if self.tenants.is_empty() {
            let base = self
                .traffic
                .build(topo, self.packet_size, self.rate)
                .map_err(lower)?;
            if self.modulation == ModulationSpec::Steady {
                return Ok(base);
            }
            let seed = crate::exec::derive_seed(self.seed, MODULATION_SALT);
            let modulated = Modulator::new(base, self.modulation.clone(), seed)
                .map_err(|e| ConfigError::Workload(e.to_string()))?;
            return Ok(Box::new(modulated));
        }
        if self.tenants.len() > usize::from(u8::MAX) + 1 {
            return Err(ConfigError::Workload(format!(
                "{} tenants exceed the 256 traffic classes",
                self.tenants.len()
            )));
        }
        let total: f64 = self.tenants.iter().map(|t| t.rate).sum();
        if total > 1.0 + 1e-9 {
            return Err(ConfigError::Workload(format!(
                "tenant rates sum to {total} flits/node/cycle (budget 1.0)"
            )));
        }
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (i, t) in self.tenants.iter().enumerate() {
            if !(0.0..=1.0).contains(&t.rate) {
                return Err(ConfigError::Workload(format!(
                    "tenant `{}` rate {} out of [0, 1]",
                    t.name, t.rate
                )));
            }
            let wl = t
                .traffic
                .build(topo, self.packet_size, t.rate)
                .map_err(lower)?;
            let wl: Box<dyn Workload> = if t.modulation == ModulationSpec::Steady {
                wl
            } else {
                let seed = crate::exec::derive_seed(self.seed, TENANT_SALT + i as u64);
                Box::new(
                    Modulator::new(wl, t.modulation.clone(), seed).map_err(|e| {
                        ConfigError::Workload(format!("tenant `{}`: {e}", t.name))
                    })?,
                )
            };
            tenants.push(Tenant::new(t.name.clone(), i as u8, wl));
        }
        Ok(Box::new(TenantWorkload::new(tenants)))
    }

    /// Builds the network under a fault schedule and unreachable policy,
    /// plus the workload, without running.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors, including a fault plan that does
    /// not fit the topology ([`ConfigError::Fault`]).
    pub fn build_with(
        &self,
        faults: FaultPlan,
        on_unreachable: UnreachablePolicy,
    ) -> Result<(Network, Box<dyn Workload>), ConfigError> {
        let net = Network::with_faults(
            self.sim_config(),
            self.routing.build(),
            self.seed,
            faults,
            on_unreachable,
        )?;
        let wl = self.build_workload()?;
        Ok((net, wl))
    }

    /// Runs one phase, watched when a watchdog is present, audited when a
    /// sentinel is attached, bounded when a deadline is set.
    ///
    /// With a sentinel or deadline the phase runs in coarse cycle chunks
    /// so trip/timeout checks need no per-cycle hook; chunking is
    /// invisible to the simulation (the run loops are stateless between
    /// calls), so any completing combination stays bit-identical to the
    /// single-call fast path.
    fn phase(
        net: &mut Network,
        wl: &mut dyn Workload,
        cycles: u64,
        probe: &mut dyn Probe,
        mut watchdog: Option<&mut StallWatchdog>,
        mut sentinel: Option<&mut Sentinel>,
        deadline: Option<(Instant, Duration)>,
    ) -> Result<(), RunError> {
        const CHUNK: u64 = 1024;
        let chunked = sentinel.is_some() || deadline.is_some();
        let mut remaining = cycles;
        while remaining > 0 {
            // Checked before each chunk, so an already-expired deadline
            // stops the run without simulating another chunk first.
            if let Some((start, limit)) = deadline {
                if start.elapsed() >= limit {
                    return Err(RunError::DeadlineExceeded {
                        limit,
                        cycle: net.cycle(),
                    });
                }
            }
            let step = if chunked { remaining.min(CHUNK) } else { remaining };
            let result = {
                let mut pair;
                let p: &mut dyn Probe = match sentinel.as_mut() {
                    Some(s) => {
                        pair = ProbePair::new(&mut **s, &mut *probe);
                        &mut pair
                    }
                    None => &mut *probe,
                };
                match watchdog.as_mut() {
                    Some(w) => net.run_watched(wl, step, p, w).map_err(RunError::from),
                    None => {
                        net.run_probed(wl, step, p);
                        Ok(())
                    }
                }
            };
            // A sentinel violation outranks the stall it may have caused:
            // the report names the origin of the corruption, the stall is
            // only its symptom.
            if let Some(s) = sentinel.as_mut() {
                if s.tripped() {
                    let report = s.take_report().expect("tripped sentinel holds a report");
                    return Err(RunError::InvariantViolated(report));
                }
            }
            result?;
            remaining -= step;
        }
        Ok(())
    }

    /// Wrap safety: on a wrapping fabric whose deadlock-freedom argument
    /// rests on deterministic escape or dateline routes
    /// ([`WrapStrategy::EscapeVcs`](footprint_routing::WrapStrategy) /
    /// `DatelineVcClasses`), a fault plan that masks any wraparound
    /// channel may sever escape routes without creating a CDG cycle — a
    /// masked acyclic graph stays acyclic, but a pair with no surviving
    /// escape path has no deadlock-free fallback, which is a livelock
    /// hazard, not a loss the per-packet drop accounting can absorb.
    /// Rebuilds the escape CDG under the plan's full channel mask and
    /// refuses the run with [`RunError::EscapeCompromised`] unless the
    /// caller opted into the degraded fallback. Plans that leave every
    /// wraparound channel alive (and every mesh plan) skip the check:
    /// grid-only cuts are covered by the existing per-packet
    /// deliverability quarantine.
    fn check_wrap_safety(&self, faults: &FaultPlan, degraded_escape: bool) -> Result<(), RunError> {
        use footprint_routing::cdg::{check_escape_under_mask, EscapeMaskVerdict};
        use footprint_routing::WrapStrategy;
        if faults.is_empty() {
            return Ok(());
        }
        let topo = self.topology.validate().map_err(ConfigError::from)?;
        if !topo.wraps() {
            return Ok(());
        }
        let strategy = self.routing.build().wrap_strategy();
        if !matches!(
            strategy,
            WrapStrategy::EscapeVcs | WrapStrategy::DatelineVcClasses
        ) {
            return Ok(());
        }
        let dead = faults.down_channels(topo);
        if !dead.iter().any(|&(n, d)| topo.is_wrap_channel(n, d)) {
            return Ok(());
        }
        match check_escape_under_mask(topo, &dead) {
            EscapeMaskVerdict::StillAcyclic => Ok(()),
            EscapeMaskVerdict::EscapeCompromised {
                severed,
                masked_wrap_channels,
            } => {
                if degraded_escape {
                    return Ok(());
                }
                Err(RunError::EscapeCompromised {
                    severed,
                    masked_wrap_channels,
                })
            }
        }
    }

    /// The canonical execution entry point: runs warmup + measurement
    /// (+ optional drain) under `opts` and reports the measurement window.
    ///
    /// Every other run flavour is a shim over this method:
    ///
    /// * [`run`](Self::run) = `run_with(RunOptions::new())`
    /// * [`run_probed`](Self::run_probed) = `run_with(... .probe(p))`
    /// * [`run_watched`](Self::run_watched) = `run_with(... .probe(p).watchdog(t))`
    ///
    /// The probe attaches at the warmup boundary (measurement + drain);
    /// the watchdog, when configured, guards the whole run including
    /// warmup. Probes and the watchdog only observe, so any completing
    /// combination reports bit-identically to the plain run. A fault plan
    /// reshapes the simulated network itself, so its effects *are* part of
    /// the report ([`RunReport::faults`]) — but an empty plan is
    /// bit-identical to no fault subsystem at all.
    ///
    /// # Errors
    ///
    /// [`RunError::Config`] for configuration errors (including a fault
    /// plan that does not fit the topology), [`RunError::Stalled`] when a
    /// configured watchdog trips, [`RunError::Unreachable`] when
    /// [`UnreachablePolicy::Error`] is set and the fault state made any
    /// generated packet undeliverable.
    ///
    /// # Panics
    ///
    /// Panics if a configured watchdog threshold is zero.
    pub fn run_with(&self, opts: RunOptions<'_>) -> Result<RunReport, RunError> {
        let RunOptions {
            probe,
            stall_threshold,
            faults,
            on_unreachable,
            sentinel,
            deadline,
            scheduler,
            degraded_escape,
            snapshot_dir,
        } = opts;
        self.check_wrap_safety(&faults, degraded_escape)?;
        let started = Instant::now();
        let faults_empty = faults.is_empty();
        let (mut net, mut wl) = self.build_with(faults, on_unreachable)?;
        net.set_scheduler(scheduler);
        let mut null = NullProbe;
        let probe = probe.unwrap_or(&mut null);
        let mut watchdog = stall_threshold.map(StallWatchdog::new);
        // The sentinel attaches from cycle 0: its flit census must see
        // every injection, so it spans warmup, measurement and drain.
        let mut sentinel = sentinel
            .unwrap_or_else(Sentinel::env_enabled)
            .then(Sentinel::new);
        let deadline = deadline.map(|limit| (started, limit));
        // Warm start: an eligible configuration with a cached post-warmup
        // snapshot restores it and skips the warmup phase outright; a miss
        // remembers the key so this run's warmed state fills the cache.
        let mut warm = false;
        let mut store_key: Option<(PathBuf, String)> = None;
        if let Some(dir) = &snapshot_dir {
            if self.snapshot_eligible(faults_empty, sentinel.is_some()) {
                let key = self.snapshot_key(scheduler);
                match snapcache::load(dir, &key) {
                    Some(bytes) => match net.restore(&bytes) {
                        Ok(()) if net.cycle() == self.warmup => warm = true,
                        // A failed restore may have partially overwritten
                        // the network: rebuild and warm up from scratch
                        // (and overwrite the bad cache entry).
                        _ => {
                            let (n, w) = self.build_with(FaultPlan::new(), on_unreachable)?;
                            net = n;
                            wl = w;
                            net.set_scheduler(scheduler);
                            store_key = Some((dir.clone(), key));
                        }
                    },
                    None => store_key = Some((dir.clone(), key)),
                }
            }
        }
        if !warm {
            let mut warmup_probe = NullProbe;
            Self::phase(
                &mut net,
                &mut *wl,
                self.warmup,
                &mut warmup_probe,
                watchdog.as_mut(),
                sentinel.as_mut(),
                deadline,
            )?;
            if let Some((dir, key)) = store_key {
                if let Ok(blob) = net.snapshot() {
                    snapcache::store(&dir, &key, &blob);
                }
            }
        }
        let boundary = net.cycle();
        net.metrics_mut().reset_window_at(boundary);
        // Multi-tenant runs carry their own accounting probe from the
        // measurement boundary: offered counts then equal the metrics
        // window's generated counts exactly. It composes with any
        // user-supplied probe through a ProbePair (and, inside `phase`,
        // with the sentinel through a second pair — pairs nest).
        let mut tenant_probe =
            (!self.tenants.is_empty()).then(|| TenantProbe::new(boundary, TENANT_WINDOW));
        {
            let mut pair;
            let phase_probe: &mut dyn Probe = match tenant_probe.as_mut() {
                Some(tp) => {
                    pair = ProbePair::new(tp, probe);
                    &mut pair
                }
                None => probe,
            };
            Self::phase(
                &mut net,
                &mut *wl,
                self.measurement,
                &mut *phase_probe,
                watchdog.as_mut(),
                sentinel.as_mut(),
                deadline,
            )?;
            if self.drain > 0 {
                let mut none = NoTraffic;
                Self::phase(
                    &mut net,
                    &mut none,
                    self.drain,
                    &mut *phase_probe,
                    watchdog.as_mut(),
                    sentinel.as_mut(),
                    deadline,
                )?;
            }
        }
        self.assemble_report(&net, on_unreachable, tenant_probe)
    }

    /// Distills a finished network into the [`RunReport`] `run_with`
    /// returns. Shared by the single-run path and the ensemble lanes, so
    /// a lane's report is assembled by exactly the code a standalone run
    /// would use.
    fn assemble_report(
        &self,
        net: &Network,
        on_unreachable: UnreachablePolicy,
        tenant_probe: Option<TenantProbe>,
    ) -> Result<RunReport, RunError> {
        let mut report = RunReport::from_metrics(net.metrics(), self.topology.nodes(), self.rate);
        report.topology = self.topology.to_string();
        report.faults = FaultStats::collect(net);
        report.partitions = PartitionReport::collect(net);
        report.recovery = RecoveryStats::collect(net);
        if let Some(tp) = tenant_probe {
            report.tenants = self
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let class = i as u8;
                    let dropped = report
                        .faults
                        .classes
                        .iter()
                        .find(|c| c.class == class)
                        .map_or(0, |c| c.dropped);
                    tp.summary(class, &t.name, dropped, report.cycles, self.topology.nodes())
                })
                .collect();
        }
        if on_unreachable == UnreachablePolicy::Error
            && !report.faults.unreachable_pairs.is_empty()
        {
            return Err(RunError::Unreachable(Box::new(report.faults)));
        }
        Ok(report)
    }

    /// `true` when this configuration's post-warmup state is exactly
    /// reproducible from a snapshot: no fault plan (fault bookkeeping is
    /// not serialized), sentinel off (its cycle-0 flit census cannot skip
    /// warmup), a nonzero warmup to actually skip, steady modulation and
    /// no tenants (their schedules live outside the network), and a
    /// workload that keeps no state of its own.
    fn snapshot_eligible(&self, faults_empty: bool, sentinel_on: bool) -> bool {
        faults_empty
            && !sentinel_on
            && self.warmup > 0
            && self.modulation == ModulationSpec::Steady
            && self.tenants.is_empty()
            && self.traffic.stateless_workload()
    }

    /// The canonical warm-start cache key: every knob that shapes the
    /// post-warmup network state, spelled out. The injection **rate** and
    /// **seed** are deliberately included — warmup is rate-coupled (the
    /// congestion pattern at the boundary depends on the offered load) and
    /// the RNG stream is seed-coupled, so omitting either would trade the
    /// bit-identity guarantee for hit rate. The rate is keyed by its exact
    /// bit pattern, not a decimal rendering.
    fn snapshot_key(&self, scheduler: Scheduler) -> String {
        format!(
            "footprint-snap-v1 topo={} vcs={} depth={} speedup={} link={} routing={} \
             traffic={:?} packet={:?} rate={:016x} seed={:016x} warmup={} sched={:?}",
            self.topology,
            self.num_vcs,
            self.vc_buffer_depth,
            self.speedup,
            self.link_latency,
            self.routing.name(),
            self.traffic,
            self.packet_size,
            self.rate.to_bits(),
            self.seed,
            self.warmup,
            scheduler,
        )
    }

    /// Runs warmup + measurement (+ optional drain) and reports the
    /// measurement window. Shim for
    /// [`run_with(RunOptions::new())`](Self::run_with).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors as [`RunError::Config`].
    #[deprecated(since = "0.8.0", note = "use `run_with(RunOptions::new())`")]
    pub fn run(&self) -> Result<RunReport, RunError> {
        self.run_with(RunOptions::new())
    }

    /// Like [`SimulationBuilder::run`], with a probe attached for the
    /// measurement window (purity tracking, custom instrumentation).
    /// Shim for [`run_with(RunOptions::new().probe(probe))`](Self::run_with).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors as [`RunError::Config`].
    #[deprecated(since = "0.8.0", note = "use `run_with(RunOptions::new().probe(probe))`")]
    pub fn run_probed(&self, probe: &mut dyn Probe) -> Result<RunReport, RunError> {
        self.run_with(RunOptions::new().probe(probe))
    }

    /// Like [`SimulationBuilder::run_probed`], with a stall watchdog
    /// guarding the whole run. Shim for
    /// [`run_with(RunOptions::new().probe(probe).watchdog(stall_threshold))`](Self::run_with).
    ///
    /// # Errors
    ///
    /// [`RunError::Config`] for configuration errors,
    /// [`RunError::Stalled`] when the watchdog trips.
    ///
    /// # Panics
    ///
    /// Panics if `stall_threshold` is zero.
    #[deprecated(
        since = "0.8.0",
        note = "use `run_with(RunOptions::new().probe(probe).watchdog(threshold))`"
    )]
    pub fn run_watched(
        &self,
        probe: &mut dyn Probe,
        stall_threshold: u64,
    ) -> Result<RunReport, RunError> {
        self.run_with(RunOptions::new().probe(probe).watchdog(stall_threshold))
    }

    /// The canonical sweep entry point: sweeps offered load over `rates`
    /// in parallel under `opts`, producing a latency-throughput curve.
    ///
    /// The rate points run concurrently on the worker pool
    /// ([`SweepOptions::threads`], defaulting to
    /// [`crate::exec::num_threads`], overridable with
    /// `FOOTPRINT_THREADS`). Each point gets its own seed, derived
    /// deterministically from this builder's seed and the rate's index
    /// ([`crate::exec::derive_seed`]), so the curve is bit-identical
    /// whatever the thread count or completion order — with or without a
    /// fault plan, since the fault state is itself a pure function of the
    /// plan and the cycle.
    ///
    /// [`sweep`](Self::sweep) and [`sweep_on`](Self::sweep_on) are shims
    /// over this method.
    ///
    /// # Errors
    ///
    /// Any [`RunError`] from the individual points.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not strictly increasing (curve invariant).
    pub fn sweep_with(&self, rates: &[f64], opts: SweepOptions) -> Result<Curve, RunError> {
        let threads = opts.threads.unwrap_or_else(crate::exec::num_threads);
        // With a checkpoint journal, restore the completed points and
        // submit only the missing ones; each finishing job appends its
        // record (fsync'd) before reporting success, so a kill at any
        // instant loses at most the points still in flight.
        let journal: Option<Mutex<SweepJournal>> = match &opts.checkpoint {
            Some(path) => Some(Mutex::new(
                SweepJournal::open(path, self.seed, rates).map_err(RunError::Checkpoint)?,
            )),
            None => None,
        };
        let mut done: std::collections::BTreeMap<usize, SweepPoint> = journal
            .as_ref()
            .map(|j| j.lock().expect("journal lock").completed().clone())
            .unwrap_or_default();
        // Missing points are grouped into ensembles of up to
        // `opts.ensemble` lanes; each group is one worker job. The default
        // width of 1 reproduces the historical one-job-per-point schedule.
        let missing: Vec<(usize, f64)> = rates
            .iter()
            .enumerate()
            .filter(|(index, _)| !done.contains_key(index))
            .map(|(index, &rate)| (index, rate))
            .collect();
        let width = opts.ensemble.max(1);
        let mut jobs = crate::exec::JobSet::new();
        let mut submitted: Vec<Vec<usize>> = Vec::new();
        for group in missing.chunks(width) {
            submitted.push(group.iter().map(|&(index, _)| index).collect());
            let points: Vec<(usize, SimulationBuilder)> = group
                .iter()
                .map(|&(index, rate)| (index, self.sweep_point(index, rate)))
                .collect();
            let o = opts.clone();
            let journal = &journal;
            jobs.push(move || {
                let sps = Self::run_sweep_group(points, &o)?;
                if let Some(j) = journal {
                    let mut j = j.lock().expect("journal lock");
                    for (index, sp) in &sps {
                        j.record(*index, sp).map_err(RunError::Checkpoint)?;
                    }
                }
                Ok::<Vec<(usize, SweepPoint)>, RunError>(sps)
            });
        }
        // Quarantined execution: a panicking or failing point cannot tear
        // down the pool, so every other point still completes — and, with
        // a journal, is durably recorded for the next resume.
        let outcomes = jobs.run_quarantined_on(threads);
        let mut first_error: Option<RunError> = None;
        for (group, outcome) in submitted.iter().zip(outcomes) {
            match outcome {
                JobOutcome::Completed(Ok(sps)) => {
                    for (index, sp) in sps {
                        done.insert(index, sp);
                    }
                }
                JobOutcome::Completed(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                JobOutcome::Panicked(msg) => {
                    let loads: Vec<f64> = group.iter().map(|&i| rates[i]).collect();
                    first_error.get_or_insert(RunError::JobPanicked(format!(
                        "sweep points {group:?} (offered loads {loads:?}): {msg}"
                    )));
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let mut curve = Curve::new(self.routing.name());
        for (_, point) in done {
            curve.push(point);
        }
        Ok(curve)
    }

    /// Sweeps offered load over `rates` in parallel, producing a
    /// latency-throughput curve (class `latency_class`, or the total
    /// when `None`). Shim for
    /// [`sweep_with`](Self::sweep_with) with default options.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors as [`RunError::Config`].
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not strictly increasing (curve invariant).
    #[deprecated(
        since = "0.8.0",
        note = "use `sweep_with(rates, SweepOptions::new().latency_class(class))`"
    )]
    pub fn sweep(&self, rates: &[f64], latency_class: Option<u8>) -> Result<Curve, RunError> {
        self.sweep_with(rates, SweepOptions::new().latency_class(latency_class))
    }

    /// [`SimulationBuilder::sweep`] with an explicit worker count
    /// (`threads <= 1` runs sequentially on the calling thread). Shim for
    /// [`sweep_with`](Self::sweep_with).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors as [`RunError::Config`].
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not strictly increasing (curve invariant).
    #[deprecated(
        since = "0.8.0",
        note = "use `sweep_with(rates, SweepOptions::new().latency_class(class).threads(n))`"
    )]
    pub fn sweep_on(
        &self,
        rates: &[f64],
        latency_class: Option<u8>,
        threads: usize,
    ) -> Result<Curve, RunError> {
        self.sweep_with(
            rates,
            SweepOptions::new().latency_class(latency_class).threads(threads),
        )
    }

    /// [`SimulationBuilder::sweep`] with a probe attached to every
    /// point: `make_probe(index, rate)` builds the point's subscriber
    /// (timelines, event traces, purity tracking) before the job is
    /// submitted, and the probes come back alongside the curve, in rate
    /// order.
    ///
    /// Points still run concurrently on the default worker pool with
    /// per-point derived seeds; since probes only observe, the curve is
    /// bit-identical to [`SimulationBuilder::sweep`] over the same
    /// rates, whatever the thread count.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors as [`RunError::Config`].
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not strictly increasing (curve invariant).
    #[deprecated(
        since = "0.8.0",
        note = "use `sweep_with` and attach probes per point via `sweep_point` + `run_with`"
    )]
    pub fn sweep_observed<P, F>(
        &self,
        rates: &[f64],
        latency_class: Option<u8>,
        make_probe: F,
    ) -> Result<(Curve, Vec<P>), RunError>
    where
        P: Probe + Send,
        F: Fn(usize, f64) -> P + Sync,
    {
        let mut jobs = crate::exec::JobSet::new();
        for (index, &rate) in rates.iter().enumerate() {
            let point = self.sweep_point(index, rate);
            let make = &make_probe;
            jobs.push(move || {
                let mut probe = make(index, rate);
                let report = point.run_with(RunOptions::new().probe(&mut probe))?;
                let s = match latency_class {
                    Some(c) => report.class(c),
                    None => report.latency,
                };
                Ok::<_, RunError>((
                    SweepPoint {
                        offered: rate,
                        accepted: s.throughput,
                        latency: s.mean_latency,
                    },
                    probe,
                ))
            });
        }
        let mut curve = Curve::new(self.routing.name());
        let mut probes = Vec::with_capacity(rates.len());
        for result in jobs.run() {
            let (point, probe) = result?;
            curve.push(point);
            probes.push(probe);
        }
        Ok((curve, probes))
    }

    /// The builder for sweep point `index` at offered load `rate`: the
    /// same configuration with the point's derived seed. Exposed so
    /// batch runners (the bench harness) can flatten many curves into
    /// one job set while reproducing exactly what [`Self::sweep`]
    /// would compute per curve.
    #[must_use]
    pub fn sweep_point(&self, index: usize, rate: f64) -> Self {
        self.clone()
            .injection_rate(rate)
            .seed(crate::exec::derive_seed(self.seed, index as u64))
    }

    /// Runs this builder as one point of a sweep under `opts` (probe-less
    /// per-point [`RunOptions`], class selection). Combined with
    /// [`Self::sweep_point`], this is the unit of work batch runners
    /// submit to a [`crate::exec::JobSet`].
    ///
    /// # Errors
    ///
    /// Any [`RunError`] from the underlying run.
    pub fn run_sweep_point_with(&self, opts: &SweepOptions) -> Result<SweepPoint, RunError> {
        let report = self.run_with(opts.run_options())?;
        let s = match opts.latency_class {
            Some(c) => report.class(c),
            None => report.latency,
        };
        Ok(SweepPoint {
            offered: self.rate,
            accepted: s.throughput,
            latency: s.mean_latency,
        })
    }

    /// Runs one sweep group: lane-parallel lockstep when the group is
    /// eligible, the sequential per-point path otherwise. Either way each
    /// point's result is bit-identical to a standalone
    /// [`run_sweep_point_with`](Self::run_sweep_point_with).
    ///
    /// Lockstep needs at least two lanes to pay for itself and excludes
    /// configurations whose run loop is not a pure per-cycle step:
    /// per-point wall-clock deadlines (the lanes share a clock), the
    /// sentinel (its probe hooks into the bulk phase loop) and tenant
    /// workloads (their accounting probe likewise).
    fn run_sweep_group(
        points: Vec<(usize, SimulationBuilder)>,
        opts: &SweepOptions,
    ) -> Result<Vec<(usize, SweepPoint)>, RunError> {
        let lockstep = points.len() >= 2
            && opts.deadline.is_none()
            && !opts.sentinel.unwrap_or_else(Sentinel::env_enabled)
            && points.iter().all(|(_, b)| b.tenants.is_empty());
        if lockstep {
            return Self::run_ensemble_group(points, opts);
        }
        points
            .into_iter()
            .map(|(index, b)| b.run_sweep_point_with(opts).map(|sp| (index, sp)))
            .collect()
    }

    /// Steps a group of independent lanes in lockstep — one cycle per
    /// lane per round, in lane order — until every lane has finished its
    /// warmup/measurement/drain schedule, then assembles each lane's
    /// report with the standard single-run path.
    fn run_ensemble_group(
        points: Vec<(usize, SimulationBuilder)>,
        opts: &SweepOptions,
    ) -> Result<Vec<(usize, SweepPoint)>, RunError> {
        let mut lanes = points
            .into_iter()
            .map(|(index, b)| Lane::new(index, b, opts))
            .collect::<Result<Vec<Lane>, RunError>>()?;
        loop {
            let mut live = false;
            for lane in &mut lanes {
                live |= lane.advance_one()?;
            }
            if !live {
                break;
            }
        }
        lanes
            .into_iter()
            .map(|lane| {
                let report = lane
                    .builder
                    .assemble_report(&lane.net, opts.on_unreachable, None)?;
                let s = match opts.latency_class {
                    Some(c) => report.class(c),
                    None => report.latency,
                };
                Ok((
                    lane.index,
                    SweepPoint {
                        offered: lane.builder.rate,
                        accepted: s.throughput,
                        latency: s.mean_latency,
                    },
                ))
            })
            .collect()
    }

    /// Runs this builder as one point of a sweep, summarizing class
    /// `latency_class` (or the total when `None`). Shim for
    /// [`run_sweep_point_with`](Self::run_sweep_point_with).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors as [`RunError::Config`].
    pub fn run_sweep_point(&self, latency_class: Option<u8>) -> Result<SweepPoint, RunError> {
        self.run_sweep_point_with(&SweepOptions::new().latency_class(latency_class))
    }

    /// Finds the saturation throughput by sweeping `rates` (in
    /// parallel) and applying the 3×-zero-load-latency criterion.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors as [`RunError::Config`].
    pub fn saturation(&self, rates: &[f64]) -> Result<Option<f64>, RunError> {
        Ok(self
            .sweep_with(rates, SweepOptions::new())?
            .saturation_throughput(3.0))
    }
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Where one ensemble lane is in its run schedule; the counter is the
/// number of cycles left in the phase.
enum LanePhase {
    Warmup(u64),
    Measure(u64),
    Drain(u64),
    Done,
}

/// One lane of a lockstep ensemble: a complete private simulation (network,
/// workload, optional watchdog) plus its position in the
/// warmup→measurement→drain schedule. Stepping a lane one cycle at a time
/// is bit-identical to the bulk phases of `run_with` — the run loops are
/// stateless between calls — so the final report matches a standalone run
/// exactly.
struct Lane {
    index: usize,
    builder: SimulationBuilder,
    net: Network,
    wl: Box<dyn Workload>,
    watchdog: Option<StallWatchdog>,
    phase: LanePhase,
    /// Cache slot to fill with this lane's post-warmup snapshot (set on a
    /// cache miss of an eligible configuration).
    store_key: Option<(PathBuf, String)>,
}

impl Lane {
    /// Builds the lane, consulting the warm-start cache exactly as
    /// `run_with` would: a hit restores the post-warmup state and the lane
    /// starts at the measurement boundary; a miss on an eligible
    /// configuration remembers the key for storing after warmup.
    fn new(index: usize, builder: SimulationBuilder, opts: &SweepOptions) -> Result<Self, RunError> {
        builder.check_wrap_safety(&opts.faults, opts.degraded_escape)?;
        let (mut net, mut wl) = builder.build_with(opts.faults.clone(), opts.on_unreachable)?;
        net.set_scheduler(opts.scheduler);
        let mut phase = LanePhase::Warmup(builder.warmup);
        let mut store_key = None;
        if let Some(dir) = &opts.snapshot_dir {
            // The lockstep path only runs with the sentinel off.
            if builder.snapshot_eligible(opts.faults.is_empty(), false) {
                let key = builder.snapshot_key(opts.scheduler);
                match snapcache::load(dir, &key) {
                    Some(bytes) => match net.restore(&bytes) {
                        Ok(()) if net.cycle() == builder.warmup => {
                            phase = LanePhase::Warmup(0);
                        }
                        _ => {
                            let (n, w) =
                                builder.build_with(FaultPlan::new(), opts.on_unreachable)?;
                            net = n;
                            wl = w;
                            net.set_scheduler(opts.scheduler);
                            store_key = Some((dir.clone(), key));
                        }
                    },
                    None => store_key = Some((dir.clone(), key)),
                }
            }
        }
        Ok(Lane {
            index,
            builder,
            net,
            wl,
            watchdog: opts.stall_threshold.map(StallWatchdog::new),
            phase,
            store_key,
        })
    }

    /// Advances the lane one simulated cycle, applying any phase
    /// transition first (warmup boundary: metrics window reset + snapshot
    /// store, exactly where `run_with` does both). Returns `Ok(false)`
    /// once the lane has finished every phase.
    fn advance_one(&mut self) -> Result<bool, RunError> {
        loop {
            match self.phase {
                LanePhase::Warmup(0) => {
                    let boundary = self.net.cycle();
                    self.net.metrics_mut().reset_window_at(boundary);
                    if let Some((dir, key)) = self.store_key.take() {
                        if let Ok(blob) = self.net.snapshot() {
                            snapcache::store(&dir, &key, &blob);
                        }
                    }
                    self.phase = LanePhase::Measure(self.builder.measurement);
                }
                LanePhase::Measure(0) => {
                    self.phase = if self.builder.drain > 0 {
                        LanePhase::Drain(self.builder.drain)
                    } else {
                        LanePhase::Done
                    };
                }
                LanePhase::Drain(0) => self.phase = LanePhase::Done,
                LanePhase::Done => return Ok(false),
                LanePhase::Warmup(n) => {
                    self.step(false)?;
                    self.phase = LanePhase::Warmup(n - 1);
                    return Ok(true);
                }
                LanePhase::Measure(n) => {
                    self.step(false)?;
                    self.phase = LanePhase::Measure(n - 1);
                    return Ok(true);
                }
                LanePhase::Drain(n) => {
                    self.step(true)?;
                    self.phase = LanePhase::Drain(n - 1);
                    return Ok(true);
                }
            }
        }
    }

    /// One cycle of this lane's network (drain phases inject nothing).
    fn step(&mut self, drain: bool) -> Result<(), RunError> {
        let mut null = NullProbe;
        let mut none = NoTraffic;
        let wl: &mut dyn Workload = if drain { &mut none } else { &mut *self.wl };
        match self.watchdog.as_mut() {
            Some(w) => self
                .net
                .run_watched(wl, 1, &mut null, w)
                .map_err(RunError::from),
            None => {
                self.net.run_probed(wl, 1, &mut null);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::Mesh;

    fn quick() -> SimulationBuilder {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .warmup(200)
            .measurement(400)
            .seed(3)
    }

    #[test]
    fn run_produces_traffic_and_latency() {
        let r = quick()
            .routing(RoutingSpec::Footprint)
            .injection_rate(0.2)
            .run_with(RunOptions::new())
            .unwrap();
        assert!(r.latency.ejected_packets > 50);
        assert!(r.latency.mean_latency > 4.0, "{}", r.latency.mean_latency);
        assert!(r.latency.throughput > 0.1);
        assert_eq!(r.nodes, 16);
        assert_eq!(r.cycles, 400);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick().injection_rate(0.3).run_with(RunOptions::new()).unwrap();
        let b = quick().injection_rate(0.3).run_with(RunOptions::new()).unwrap();
        assert_eq!(a, b);
        let c = quick().injection_rate(0.3).seed(4).run_with(RunOptions::new()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sweep_identical_across_thread_counts() {
        // The engine guarantee: `FOOTPRINT_THREADS=1` (sequential,
        // `sweep_on(.., 1)`) and any wider pool — including the default
        // `sweep()` pool — produce bit-identical curves.
        let rates = [0.05, 0.15, 0.25];
        let sequential = quick().sweep_with(&rates, SweepOptions::new().threads(1)).unwrap();
        let pooled = quick().sweep_with(&rates, SweepOptions::new().threads(4)).unwrap();
        let default_pool = quick().sweep_with(&rates, SweepOptions::new()).unwrap();
        assert_eq!(sequential, pooled);
        assert_eq!(sequential, default_pool);
    }

    #[test]
    fn sweep_points_use_distinct_derived_seeds() {
        // No accidental seed reuse across the jobs of one sweep: every
        // rate index maps to its own seed, none of which is the base.
        let base = quick();
        let seeds: Vec<u64> = (0..8)
            .map(|i| crate::exec::derive_seed(3, i as u64))
            .collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert!(seeds.iter().all(|&s| s != 3));
        // And sweep_point() is the exact builder sweep() runs for a
        // given index: same config, derived seed, requested rate.
        let p = base.sweep_point(2, 0.25);
        assert_eq!(p.rate(), 0.25);
        assert_eq!(p.seed, crate::exec::derive_seed(3, 2));
    }

    #[test]
    fn sweep_builds_monotonic_curve() {
        let curve = quick()
            .routing(RoutingSpec::Dor)
            .sweep_with(&[0.05, 0.2], SweepOptions::new())
            .unwrap();
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points[0].latency <= curve.points[1].latency * 1.5);
        assert!(curve.points[1].accepted > curve.points[0].accepted);
    }

    #[test]
    fn watched_run_matches_plain_run() {
        // The watchdog and probe only observe: a watched run that never
        // trips reports bit-identically to the plain run.
        let plain = quick().injection_rate(0.2).run_with(RunOptions::new()).unwrap();
        let watched = quick()
            .injection_rate(0.2)
            .run_with(RunOptions::new().probe(&mut footprint_sim::NullProbe).watchdog(10_000))
            .unwrap();
        assert_eq!(plain, watched);
    }

    #[test]
    fn watched_run_propagates_config_errors() {
        let err = quick()
            .vcs(0)
            .run_with(RunOptions::new().probe(&mut footprint_sim::NullProbe).watchdog(100))
            .unwrap_err();
        assert!(matches!(err, RunError::Config(ConfigError::NumVcs(0))));
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    #[allow(deprecated)]
    fn sweep_observed_matches_sweep_and_returns_probes() {
        let rates = [0.05, 0.15, 0.25];
        let plain = quick().sweep_with(&rates, SweepOptions::new()).unwrap();
        let (curve, probes) = quick()
            .sweep_observed(&rates, None, |_, _| {
                footprint_stats::TimelineProbe::new(50)
            })
            .unwrap();
        assert_eq!(plain, curve);
        assert_eq!(probes.len(), rates.len());
        // Every point's probe saw its measurement window (400 cycles at
        // stride 50, sampled from the warmup boundary onward).
        assert!(probes.iter().all(|p| !p.mesh_samples().is_empty()));
    }

    #[test]
    fn latency_population_excludes_warmup_born_packets() {
        let r = quick().injection_rate(0.2).run_with(RunOptions::new()).unwrap();
        assert!(r.latency.measured_packets > 0);
        // Warmup-born packets drain into the window: they are counted as
        // ejections (throughput) but not in the latency population.
        assert!(r.latency.measured_packets <= r.latency.ejected_packets);
    }

    #[test]
    fn invalid_config_is_reported() {
        let err = quick().vcs(0).run_with(RunOptions::new()).unwrap_err();
        assert!(matches!(err, RunError::Config(ConfigError::NumVcs(0))));
        let err = quick().vcs(1).routing(RoutingSpec::Dbar).run_with(RunOptions::new()).unwrap_err();
        assert!(matches!(
            err,
            RunError::Config(ConfigError::TooFewVcsForRouting { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_canonical_entry_points() {
        // The 0.8.0-deprecated shims stay bit-identical to the canonical
        // `run_with` / `sweep_with` they forward to.
        let canonical = quick()
            .injection_rate(0.2)
            .run_with(RunOptions::default())
            .unwrap();
        assert_eq!(canonical, quick().injection_rate(0.2).run().unwrap());
        assert_eq!(
            canonical,
            quick()
                .injection_rate(0.2)
                .run_probed(&mut footprint_sim::NullProbe)
                .unwrap()
        );
        assert_eq!(
            canonical,
            quick()
                .injection_rate(0.2)
                .run_watched(&mut footprint_sim::NullProbe, 10_000)
                .unwrap()
        );
        assert!(canonical.faults.is_clean(), "no plan, no fault effects");
        let rates = [0.05, 0.15];
        let curve = quick().sweep_with(&rates, SweepOptions::new()).unwrap();
        assert_eq!(curve, quick().sweep(&rates, None).unwrap());
        assert_eq!(curve, quick().sweep_on(&rates, None, 2).unwrap());
    }

    #[test]
    fn faulted_run_accounts_for_every_packet() {
        use footprint_topology::{Direction, FaultEvent, NodeId};
        // Cut a bottom-row link: same-row pairs across it become
        // unreachable, everything else routes around; a drained run must
        // account for every generated packet as delivered or dropped.
        let plan =
            FaultPlan::new().with(FaultEvent::link_down(NodeId(1), Direction::East, 0));
        // warmup(0): accounting is over the measurement window, so the
        // window must cover every packet for generated = delivered + dropped
        // to hold after the drain.
        let report = quick()
            .warmup(0)
            .injection_rate(0.15)
            .drain(2_000)
            .run_with(RunOptions::new().faults(plan).watchdog(10_000))
            .unwrap();
        assert!(!report.faults.is_clean());
        assert!(report.faults.fully_accounted());
        assert!(report.faults.dropped() > 0);
        assert!(report.latency.ejected_packets > 0);
        assert!(!report.faults.unreachable_pairs.is_empty());
    }

    #[test]
    fn error_policy_turns_unreachable_pairs_into_a_typed_failure() {
        use footprint_topology::{Direction, FaultEvent, NodeId};
        let plan =
            FaultPlan::new().with(FaultEvent::link_down(NodeId(1), Direction::East, 0));
        let err = quick()
            .injection_rate(0.15)
            .run_with(
                RunOptions::new()
                    .faults(plan)
                    .on_unreachable(UnreachablePolicy::Error),
            )
            .unwrap_err();
        assert!(err.to_string().contains("unreachable under the fault plan"));
        match err {
            RunError::Unreachable(stats) => {
                assert!(!stats.unreachable_pairs.is_empty());
                assert!(stats.dropped() > 0);
            }
            other => panic!("expected Unreachable, got {other}"),
        }
    }

    #[test]
    fn sweep_with_faults_is_identical_across_thread_counts() {
        use footprint_topology::{Direction, FaultEvent, NodeId};
        let plan =
            FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::North, 0));
        let rates = [0.05, 0.15];
        let opts = |threads| {
            SweepOptions::new()
                .faults(plan.clone())
                .threads(threads)
                .watchdog(20_000)
        };
        let sequential = quick().sweep_with(&rates, opts(1)).unwrap();
        let pooled = quick().sweep_with(&rates, opts(4)).unwrap();
        assert_eq!(sequential, pooled);
    }

    #[test]
    fn longer_links_increase_latency() {
        let short = quick().injection_rate(0.1).run_with(RunOptions::new()).unwrap();
        let long = quick().injection_rate(0.1).link_latency(4).run_with(RunOptions::new()).unwrap();
        assert!(
            long.latency.mean_latency > short.latency.mean_latency + 3.0,
            "short {} vs long {}",
            short.latency.mean_latency,
            long.latency.mean_latency
        );
    }

    #[test]
    fn drain_improves_delivery_ratio() {
        let no_drain = quick().injection_rate(0.2).run_with(RunOptions::new()).unwrap();
        let with_drain = quick().injection_rate(0.2).drain(300).run_with(RunOptions::new()).unwrap();
        assert!(with_drain.delivery_ratio() >= no_drain.delivery_ratio());
        assert!(with_drain.delivery_ratio() > 0.97);
    }

    #[test]
    fn sentinel_stays_quiet_across_algorithms() {
        // Every algorithm of the comparison set, with and without XORDET,
        // passes a fully audited run: zero invariant violations.
        for spec in [
            RoutingSpec::Footprint,
            RoutingSpec::Dbar,
            RoutingSpec::OddEven,
            RoutingSpec::Dor,
            RoutingSpec::DbarXordet,
            RoutingSpec::OddEvenXordet,
            RoutingSpec::DorXordet,
        ] {
            let result = quick()
                .routing(spec)
                .injection_rate(0.2)
                .run_with(RunOptions::new().sentinel(true));
            assert!(
                result.is_ok(),
                "{}: {}",
                spec.name(),
                result.unwrap_err()
            );
        }
    }

    #[test]
    fn sentinel_on_reports_bit_identically() {
        // The sentinel only observes: an audited run that never trips
        // reports exactly what the plain run reports.
        let plain = quick().injection_rate(0.2).run_with(RunOptions::new()).unwrap();
        let audited = quick()
            .injection_rate(0.2)
            .run_with(RunOptions::new().sentinel(true))
            .unwrap();
        assert_eq!(plain, audited);
    }

    #[test]
    fn sentinel_stays_quiet_under_a_fault_plan() {
        use footprint_topology::{Direction, FaultEvent, NodeId};
        let plan =
            FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 0));
        let report = quick()
            .injection_rate(0.15)
            .drain(1_000)
            .run_with(RunOptions::new().faults(plan).sentinel(true).watchdog(10_000))
            .unwrap();
        assert!(!report.faults.is_clean());
        assert!(report.latency.ejected_packets > 0);
    }

    #[test]
    fn expired_deadline_is_a_typed_error() {
        let err = quick()
            .injection_rate(0.2)
            .run_with(RunOptions::new().deadline(Duration::ZERO))
            .unwrap_err();
        match err {
            RunError::DeadlineExceeded { limit, cycle } => {
                assert_eq!(limit, Duration::ZERO);
                assert_eq!(cycle, 0, "an expired deadline stops before simulating");
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn generous_deadline_does_not_perturb_the_run() {
        let plain = quick().injection_rate(0.2).run_with(RunOptions::new()).unwrap();
        let bounded = quick()
            .injection_rate(0.2)
            .run_with(RunOptions::new().deadline(Duration::from_secs(3600)))
            .unwrap();
        assert_eq!(plain, bounded);
    }

    #[test]
    fn sweep_config_error_survives_quarantine() {
        // Quarantined execution still surfaces per-point errors.
        let err = quick()
            .vcs(0)
            .sweep_with(&[0.05, 0.15], SweepOptions::new().threads(2))
            .unwrap_err();
        assert!(matches!(err, RunError::Config(ConfigError::NumVcs(0))));
    }

    fn tmp_journal(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "footprint-builder-test-{}-{name}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn checkpointed_sweep_matches_plain_sweep() {
        let rates = [0.05, 0.15, 0.25];
        let plain = quick().sweep_with(&rates, SweepOptions::new().threads(1)).unwrap();
        let path = tmp_journal("match");
        let journaled = quick()
            .sweep_with(&rates, SweepOptions::new().threads(2).checkpoint(&path))
            .unwrap();
        assert_eq!(plain, journaled);
        // A second invocation over a complete journal reruns nothing and
        // restores the identical curve.
        let restored = quick()
            .sweep_with(&rates, SweepOptions::new().threads(2).checkpoint(&path))
            .unwrap();
        assert_eq!(plain, restored);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_sweep_resumes_bit_identically() {
        // Simulate a `kill -9` after two points: truncate the journal to
        // header + 2 records plus a torn half-written line, then resume at
        // both thread counts. The resumed curve must be bit-identical to an
        // uninterrupted sequential sweep — including its rendered output.
        let rates = [0.05, 0.15, 0.25, 0.35];
        let baseline = quick().sweep_with(&rates, SweepOptions::new().threads(1)).unwrap();
        for threads in [1usize, 4] {
            let path = tmp_journal(&format!("resume-{threads}"));
            let full = quick()
                .sweep_with(
                    &rates,
                    SweepOptions::new().threads(threads).checkpoint(&path),
                )
                .unwrap();
            assert_eq!(full, baseline);
            let contents = std::fs::read_to_string(&path).unwrap();
            let keep: Vec<&str> = contents.lines().take(3).collect();
            std::fs::write(&path, format!("{}\npoint 3 3fd3", keep.join("\n"))).unwrap();
            let resumed = quick()
                .sweep_with(
                    &rates,
                    SweepOptions::new().threads(threads).checkpoint(&path),
                )
                .unwrap();
            assert_eq!(resumed, baseline);
            assert_eq!(format!("{resumed}"), format!("{baseline}"));
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn active_scheduler_matches_dense_across_algorithms_and_faults() {
        use footprint_topology::{Direction, FaultEvent, NodeId};
        // The tentpole guarantee: the active-set scheduler reports
        // bit-identically to the dense reference loop — same latency,
        // throughput, purity and fault accounting — for every routing
        // algorithm, with and without a fault plan in play.
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(5), Direction::East, 100).repaired_at(250));
        for spec in [
            RoutingSpec::Footprint,
            RoutingSpec::Dbar,
            RoutingSpec::OddEven,
            RoutingSpec::Dor,
        ] {
            for faults in [None, Some(plan.clone())] {
                let run = |scheduler: Scheduler| {
                    let mut o = RunOptions::new().scheduler(scheduler).watchdog(10_000);
                    if let Some(p) = faults.clone() {
                        o = o.faults(p);
                    }
                    quick()
                        .routing(spec)
                        .injection_rate(0.15)
                        .drain(500)
                        .run_with(o)
                        .unwrap()
                };
                let dense = run(Scheduler::Dense);
                let active = run(Scheduler::Active);
                assert_eq!(
                    dense,
                    active,
                    "{} (faults: {}) diverged between schedulers",
                    spec.name(),
                    faults.is_some(),
                );
                assert_eq!(dense.faults, active.faults);
                assert!(dense.latency.ejected_packets > 0, "{}", spec.name());
            }
        }
    }

    #[test]
    fn scheduler_choice_is_bit_identical_across_sweep_threads() {
        // Dense sequential is the reference; the active scheduler on a
        // wide pool must reproduce it bit for bit.
        let rates = [0.05, 0.15];
        let sweep = |scheduler, threads| {
            quick()
                .sweep_with(
                    &rates,
                    SweepOptions::new().scheduler(scheduler).threads(threads),
                )
                .unwrap()
        };
        let reference = sweep(Scheduler::Dense, 1);
        assert_eq!(reference, sweep(Scheduler::Active, 1));
        assert_eq!(reference, sweep(Scheduler::Active, 4));
        assert_eq!(reference, sweep(Scheduler::Dense, 4));
    }

    #[test]
    fn active_scheduler_matches_dense_under_sentinel_audit() {
        // Sentinel-armed runs force full ticks on the audit stride; the
        // interleaving of skipped and full ticks must not perturb results.
        let run = |scheduler| {
            quick()
                .injection_rate(0.2)
                .run_with(RunOptions::new().scheduler(scheduler).sentinel(true))
                .unwrap()
        };
        assert_eq!(run(Scheduler::Dense), run(Scheduler::Active));
    }

    #[test]
    fn scheduler_matrix_is_bit_identical_under_faults_and_audit() {
        use footprint_topology::{Direction, FaultEvent, NodeId};
        // The combined equivalence matrix over the SoA datapath: for every
        // comparison algorithm, a sentinel-audited sweep with a mid-run
        // fault-and-repair plan must produce one curve — whichever
        // scheduler runs the cycles and however many workers run the
        // points. Dense sequential is the reference; every other cell of
        // {dense, active} × {1, 4 threads} must match it bit for bit.
        let plan = FaultPlan::new()
            .with(FaultEvent::link_down(NodeId(5), Direction::East, 100).repaired_at(250));
        let rates = [0.05, 0.15];
        for spec in [
            RoutingSpec::Footprint,
            RoutingSpec::Dbar,
            RoutingSpec::OddEven,
            RoutingSpec::Dor,
        ] {
            for faults in [None, Some(plan.clone())] {
                let sweep = |scheduler, threads| {
                    let mut o = SweepOptions::new()
                        .scheduler(scheduler)
                        .threads(threads)
                        .sentinel(true)
                        .watchdog(10_000);
                    if let Some(p) = faults.clone() {
                        o = o.faults(p);
                    }
                    quick()
                        .routing(spec)
                        .drain(500)
                        .sweep_with(&rates, o)
                        .unwrap()
                };
                let reference = sweep(Scheduler::Dense, 1);
                for (scheduler, threads) in [
                    (Scheduler::Active, 1),
                    (Scheduler::Dense, 4),
                    (Scheduler::Active, 4),
                ] {
                    assert_eq!(
                        reference,
                        sweep(scheduler, threads),
                        "{} (faults: {}) diverged under {scheduler:?} × {threads} workers",
                        spec.name(),
                        faults.is_some(),
                    );
                }
            }
        }
    }

    #[test]
    fn pattern_mesh_mismatch_is_a_config_error() {
        // 6×6 mesh with a power-of-two-only pattern: rejected up front
        // with a typed error instead of a mid-simulation panic.
        let err = quick().topology(Mesh::square(6)).traffic(TrafficSpec::Shuffle).run_with(RunOptions::new()).unwrap_err();
        match err {
            RunError::Config(ConfigError::PatternMesh { pattern, nodes }) => {
                assert_eq!(pattern, "shuffle");
                assert_eq!(nodes, 36);
            }
            other => panic!("expected PatternMesh, got {other}"),
        }
        assert!(err.to_string().contains("power-of-two"));
    }

    #[test]
    fn modulated_run_reports_reduced_load() {
        use footprint_traffic::DurationDist;
        // A 50%-duty on/off gate at rate r must accept ≈ r/2 — the
        // end-to-end version of the workload-layer thinning test.
        let steady = quick()
            .injection_rate(0.2)
            .measurement(4_000)
            .run_with(RunOptions::new())
            .unwrap();
        let bursty = quick()
            .injection_rate(0.2)
            .measurement(4_000)
            .modulation(ModulationSpec::OnOff {
                on: DurationDist::Fixed(100),
                off: DurationDist::Fixed(100),
            })
            .run_with(RunOptions::new())
            .unwrap();
        let ratio = bursty.latency.throughput / steady.latency.throughput;
        assert!((ratio - 0.5).abs() < 0.08, "throughput ratio {ratio}");
    }

    #[test]
    fn modulated_runs_are_scheduler_and_thread_invariant() {
        use footprint_traffic::DurationDist;
        let b = quick().injection_rate(0.2).modulation(ModulationSpec::OnOff {
            on: DurationDist::Geometric { mean: 60.0 },
            off: DurationDist::Geometric { mean: 120.0 },
        });
        let dense = b.run_with(RunOptions::new().scheduler(Scheduler::Dense)).unwrap();
        let active = b.run_with(RunOptions::new().scheduler(Scheduler::Active)).unwrap();
        assert_eq!(dense, active);
        let rates = [0.1, 0.2];
        let seq = b.sweep_with(&rates, SweepOptions::new().threads(1)).unwrap();
        let pooled = b.sweep_with(&rates, SweepOptions::new().threads(4)).unwrap();
        assert_eq!(seq, pooled);
    }

    #[test]
    fn tenant_run_reports_per_tenant_summaries() {
        // warmup(0) + drain: the window covers every packet, so the
        // per-tenant accounting invariant closes exactly.
        let report = quick()
            .warmup(0)
            .tenants(vec![
                TenantSpec::new("web", TrafficSpec::UniformRandom, 0.1),
                TenantSpec::new("batch", TrafficSpec::Transpose, 0.1),
            ])
            .drain(500)
            .run_with(RunOptions::new())
            .unwrap();
        assert_eq!(report.tenants.len(), 2);
        let web = report.tenant("web").unwrap();
        let batch = report.tenant("batch").unwrap();
        assert_eq!((web.class, batch.class), (0, 1));
        // Tenant accounting must agree exactly with the per-class window
        // counters the simulator keeps independently.
        for t in &report.tenants {
            let c = report.class(t.class);
            assert_eq!(t.offered_packets, c.generated_packets, "{}", t.name);
            assert_eq!(t.delivered_packets, c.ejected_packets, "{}", t.name);
            assert_eq!(t.measured_packets, c.measured_packets, "{}", t.name);
            assert!(t.delivered_packets > 0, "{}", t.name);
            assert!(t.fully_accounted(), "{}", t.name);
            assert!(t.windows.iter().map(|w| w.offered).sum::<u64>() == t.offered_packets);
            assert_eq!(t.window_cycles, TENANT_WINDOW);
        }
        assert!(report.tenant("nope").is_none());
    }

    #[test]
    fn tenant_misconfigurations_are_typed_errors() {
        use footprint_traffic::DurationDist;
        // Over-budget aggregate rate.
        let err = quick()
            .tenants(vec![
                TenantSpec::new("a", TrafficSpec::UniformRandom, 0.7),
                TenantSpec::new("b", TrafficSpec::Transpose, 0.6),
            ])
            .run_with(RunOptions::new())
            .unwrap_err();
        match &err {
            RunError::Config(ConfigError::Workload(msg)) => {
                assert!(msg.contains("budget"), "{msg}");
            }
            other => panic!("expected Workload config error, got {other}"),
        }
        // Negative per-tenant rate.
        let err = quick()
            .tenants(vec![TenantSpec::new("a", TrafficSpec::UniformRandom, -0.1)])
            .run_with(RunOptions::new())
            .unwrap_err();
        assert!(matches!(err, RunError::Config(ConfigError::Workload(_))));
        // Invalid modulation schedule (zero-length on-phase).
        let err = quick()
            .modulation(ModulationSpec::OnOff {
                on: DurationDist::Fixed(0),
                off: DurationDist::Fixed(10),
            })
            .run_with(RunOptions::new())
            .unwrap_err();
        assert!(matches!(err, RunError::Config(ConfigError::Workload(_))));
        assert!(err.to_string().contains("invalid workload"));
    }

    #[test]
    fn foreign_journal_is_refused() {
        let rates = [0.05, 0.15];
        let path = tmp_journal("foreign");
        quick()
            .sweep_with(&rates, SweepOptions::new().threads(1).checkpoint(&path))
            .unwrap();
        // Same path, different seed: a different campaign.
        let err = quick()
            .seed(99)
            .sweep_with(&rates, SweepOptions::new().threads(1).checkpoint(&path))
            .unwrap_err();
        match err {
            RunError::Checkpoint(msg) => assert!(msg.contains("different sweep"), "{msg}"),
            other => panic!("expected Checkpoint, got {other}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}

