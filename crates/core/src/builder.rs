//! The simulation builder: one fluent entry point for every experiment.

use core::fmt;

use crate::{RunReport, TrafficSpec};
use footprint_routing::RoutingSpec;
use footprint_sim::{
    ConfigError, Network, NoTraffic, Probe, SimConfig, StallDiagnostic, StallWatchdog, Workload,
};
use footprint_stats::{Curve, SweepPoint};
use footprint_topology::Mesh;
use footprint_traffic::PacketSize;

/// Why a watched run ([`SimulationBuilder::run_watched`]) failed.
#[derive(Debug)]
pub enum RunError {
    /// The configuration was rejected before the network was built.
    Config(ConfigError),
    /// The stall watchdog tripped: no flit moved for the configured
    /// number of cycles while packets were in flight. The boxed
    /// diagnostic bundle describes the frozen network.
    Stalled(Box<StallDiagnostic>),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Stalled(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            RunError::Stalled(d) => Some(d.as_ref()),
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

impl From<Box<StallDiagnostic>> for RunError {
    fn from(d: Box<StallDiagnostic>) -> Self {
        RunError::Stalled(d)
    }
}

/// Fluent configuration of one simulation run.
///
/// Defaults follow the paper's Table 2: 8×8 mesh, 10 VCs, 4-flit buffers,
/// speedup 2, single-flit packets, Footprint routing, uniform random
/// traffic, 10k warmup + 10k measurement cycles.
///
/// ```
/// use footprint_core::{SimulationBuilder, RoutingSpec, TrafficSpec};
///
/// let report = SimulationBuilder::mesh(4)
///     .vcs(4)
///     .routing(RoutingSpec::Dor)
///     .traffic(TrafficSpec::UniformRandom)
///     .injection_rate(0.1)
///     .warmup(300)
///     .measurement(500)
///     .seed(1)
///     .run()?;
/// assert!(report.latency.ejected_packets > 0);
/// # Ok::<(), footprint_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    mesh: Mesh,
    num_vcs: usize,
    vc_buffer_depth: usize,
    speedup: usize,
    routing: RoutingSpec,
    traffic: TrafficSpec,
    packet_size: PacketSize,
    rate: f64,
    link_latency: usize,
    warmup: u64,
    measurement: u64,
    drain: u64,
    seed: u64,
}

impl SimulationBuilder {
    /// Starts from the paper's default configuration (8×8 mesh).
    pub fn paper_default() -> Self {
        let cfg = SimConfig::paper_default();
        SimulationBuilder {
            mesh: cfg.mesh,
            num_vcs: cfg.num_vcs,
            vc_buffer_depth: cfg.vc_buffer_depth,
            speedup: cfg.speedup,
            routing: RoutingSpec::Footprint,
            traffic: TrafficSpec::UniformRandom,
            packet_size: PacketSize::SINGLE,
            rate: 0.1,
            link_latency: cfg.link_latency,
            warmup: 10_000,
            measurement: 10_000,
            drain: 0,
            seed: 0xF007,
        }
    }

    /// Starts from a `k × k` mesh with otherwise default parameters.
    pub fn mesh(k: u16) -> Self {
        let mut b = Self::paper_default();
        b.mesh = Mesh::square(k);
        b
    }

    /// Sets the mesh explicitly.
    pub fn topology(mut self, mesh: Mesh) -> Self {
        self.mesh = mesh;
        self
    }

    /// VCs per physical channel.
    pub fn vcs(mut self, n: usize) -> Self {
        self.num_vcs = n;
        self
    }

    /// VC buffer depth in flits.
    pub fn buffer_depth(mut self, n: usize) -> Self {
        self.vc_buffer_depth = n;
        self
    }

    /// Internal speedup.
    pub fn speedup(mut self, n: usize) -> Self {
        self.speedup = n;
        self
    }

    /// Routing algorithm.
    pub fn routing(mut self, spec: RoutingSpec) -> Self {
        self.routing = spec;
        self
    }

    /// Workload.
    pub fn traffic(mut self, spec: TrafficSpec) -> Self {
        self.traffic = spec;
        self
    }

    /// Packet-size mix.
    pub fn packet_size(mut self, size: PacketSize) -> Self {
        self.packet_size = size;
        self
    }

    /// Offered load, flits/node/cycle (for hotspot traffic: the hotspot
    /// flow rate).
    pub fn injection_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// One-way link latency in cycles (default 1).
    pub fn link_latency(mut self, cycles: usize) -> Self {
        self.link_latency = cycles;
        self
    }

    /// Warmup cycles (excluded from measurement).
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.warmup = cycles;
        self
    }

    /// Measurement cycles.
    pub fn measurement(mut self, cycles: u64) -> Self {
        self.measurement = cycles;
        self
    }

    /// Drain cycles after measurement (no injection; lets in-flight packets
    /// finish — useful for delivery checks).
    pub fn drain(mut self, cycles: u64) -> Self {
        self.drain = cycles;
        self
    }

    /// RNG seed (runs are deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The routing spec currently configured.
    pub fn routing_spec(&self) -> RoutingSpec {
        self.routing
    }

    /// The offered load currently configured.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig {
            mesh: self.mesh,
            num_vcs: self.num_vcs,
            vc_buffer_depth: self.vc_buffer_depth,
            speedup: self.speedup,
            link_latency: self.link_latency,
        }
    }

    /// Builds the network and workload without running (for custom drive
    /// loops).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (bad VC count, etc.).
    pub fn build(&self) -> Result<(Network, Box<dyn Workload>), ConfigError> {
        let net = Network::new(self.sim_config(), self.routing.build(), self.seed)?;
        let wl = self.traffic.build(self.mesh, self.packet_size, self.rate);
        Ok((net, wl))
    }

    /// Runs warmup + measurement (+ optional drain) and reports the
    /// measurement window.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn run(&self) -> Result<RunReport, ConfigError> {
        self.run_probed(&mut footprint_sim::NullProbe)
    }

    /// Like [`SimulationBuilder::run`], with a probe attached for the
    /// measurement window (purity tracking, custom instrumentation).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn run_probed(&self, probe: &mut dyn Probe) -> Result<RunReport, ConfigError> {
        let (mut net, mut wl) = self.build()?;
        net.run(&mut *wl, self.warmup);
        let boundary = net.cycle();
        net.metrics_mut().reset_window_at(boundary);
        net.run_probed(&mut *wl, self.measurement, probe);
        if self.drain > 0 {
            let mut none = NoTraffic;
            net.run_probed(&mut none, self.drain, probe);
        }
        Ok(RunReport::from_metrics(
            net.metrics(),
            self.mesh.len(),
            self.rate,
        ))
    }

    /// Like [`SimulationBuilder::run_probed`], with a stall watchdog
    /// attached for the whole run (warmup included): if no flit moves
    /// for `stall_threshold` consecutive cycles while packets are in
    /// flight, the run aborts with [`RunError::Stalled`] carrying a full
    /// diagnostic bundle (occupancy map, per-router VC states, oldest
    /// in-flight packets) instead of spinning to the cycle limit.
    ///
    /// The watchdog and `probe` only observe, so a watched run that
    /// completes reports bit-identically to [`SimulationBuilder::run`].
    ///
    /// # Errors
    ///
    /// [`RunError::Config`] for configuration errors,
    /// [`RunError::Stalled`] when the watchdog trips.
    ///
    /// # Panics
    ///
    /// Panics if `stall_threshold` is zero.
    pub fn run_watched(
        &self,
        probe: &mut dyn Probe,
        stall_threshold: u64,
    ) -> Result<RunReport, RunError> {
        let (mut net, mut wl) = self.build()?;
        let mut watchdog = StallWatchdog::new(stall_threshold);
        net.run_watched(&mut *wl, self.warmup, probe, &mut watchdog)?;
        let boundary = net.cycle();
        net.metrics_mut().reset_window_at(boundary);
        net.run_watched(&mut *wl, self.measurement, probe, &mut watchdog)?;
        if self.drain > 0 {
            let mut none = NoTraffic;
            net.run_watched(&mut none, self.drain, probe, &mut watchdog)?;
        }
        Ok(RunReport::from_metrics(
            net.metrics(),
            self.mesh.len(),
            self.rate,
        ))
    }

    /// Sweeps offered load over `rates` in parallel, producing a
    /// latency-throughput curve (class `latency_class`, or the total
    /// when `None`).
    ///
    /// The rate points run concurrently on the default worker pool
    /// ([`crate::exec::num_threads`], overridable with
    /// `FOOTPRINT_THREADS`). Each point gets its own seed, derived
    /// deterministically from this builder's seed and the rate's index
    /// ([`crate::exec::derive_seed`]), so the curve is bit-identical
    /// whatever the thread count or completion order.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not strictly increasing (curve invariant).
    pub fn sweep(
        &self,
        rates: &[f64],
        latency_class: Option<u8>,
    ) -> Result<Curve, ConfigError> {
        self.sweep_on(rates, latency_class, crate::exec::num_threads())
    }

    /// [`SimulationBuilder::sweep`] with an explicit worker count
    /// (`threads <= 1` runs sequentially on the calling thread).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not strictly increasing (curve invariant).
    pub fn sweep_on(
        &self,
        rates: &[f64],
        latency_class: Option<u8>,
        threads: usize,
    ) -> Result<Curve, ConfigError> {
        let mut jobs = crate::exec::JobSet::new();
        for (index, &rate) in rates.iter().enumerate() {
            let point = self.sweep_point(index, rate);
            jobs.push(move || point.run_sweep_point(latency_class));
        }
        let mut curve = Curve::new(self.routing.name());
        for point in jobs.run_on(threads) {
            curve.push(point?);
        }
        Ok(curve)
    }

    /// [`SimulationBuilder::sweep`] with a probe attached to every
    /// point: `make_probe(index, rate)` builds the point's subscriber
    /// (timelines, event traces, purity tracking) before the job is
    /// submitted, and the probes come back alongside the curve, in rate
    /// order.
    ///
    /// Points still run concurrently on the default worker pool with
    /// per-point derived seeds; since probes only observe, the curve is
    /// bit-identical to [`SimulationBuilder::sweep`] over the same
    /// rates, whatever the thread count.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not strictly increasing (curve invariant).
    pub fn sweep_observed<P, F>(
        &self,
        rates: &[f64],
        latency_class: Option<u8>,
        make_probe: F,
    ) -> Result<(Curve, Vec<P>), ConfigError>
    where
        P: Probe + Send,
        F: Fn(usize, f64) -> P + Sync,
    {
        let mut jobs = crate::exec::JobSet::new();
        for (index, &rate) in rates.iter().enumerate() {
            let point = self.sweep_point(index, rate);
            let make = &make_probe;
            jobs.push(move || {
                let mut probe = make(index, rate);
                let report = point.run_probed(&mut probe)?;
                let s = match latency_class {
                    Some(c) => report.class(c),
                    None => report.latency,
                };
                Ok::<_, ConfigError>((
                    SweepPoint {
                        offered: rate,
                        accepted: s.throughput,
                        latency: s.mean_latency,
                    },
                    probe,
                ))
            });
        }
        let mut curve = Curve::new(self.routing.name());
        let mut probes = Vec::with_capacity(rates.len());
        for result in jobs.run() {
            let (point, probe) = result?;
            curve.push(point);
            probes.push(probe);
        }
        Ok((curve, probes))
    }

    /// The builder for sweep point `index` at offered load `rate`: the
    /// same configuration with the point's derived seed. Exposed so
    /// batch runners (the bench harness) can flatten many curves into
    /// one job set while reproducing exactly what [`Self::sweep`]
    /// would compute per curve.
    #[must_use]
    pub fn sweep_point(&self, index: usize, rate: f64) -> Self {
        self.clone()
            .injection_rate(rate)
            .seed(crate::exec::derive_seed(self.seed, index as u64))
    }

    /// Runs this builder as one point of a sweep, summarizing class
    /// `latency_class` (or the total when `None`). Combined with
    /// [`Self::sweep_point`], this is the unit of work batch runners
    /// submit to a [`crate::exec::JobSet`].
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn run_sweep_point(&self, latency_class: Option<u8>) -> Result<SweepPoint, ConfigError> {
        let report = self.run()?;
        let s = match latency_class {
            Some(c) => report.class(c),
            None => report.latency,
        };
        Ok(SweepPoint {
            offered: self.rate,
            accepted: s.throughput,
            latency: s.mean_latency,
        })
    }

    /// Finds the saturation throughput by sweeping `rates` (in
    /// parallel) and applying the 3×-zero-load-latency criterion.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn saturation(&self, rates: &[f64]) -> Result<Option<f64>, ConfigError> {
        Ok(self.sweep(rates, None)?.saturation_throughput(3.0))
    }
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SimulationBuilder {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .warmup(200)
            .measurement(400)
            .seed(3)
    }

    #[test]
    fn run_produces_traffic_and_latency() {
        let r = quick()
            .routing(RoutingSpec::Footprint)
            .injection_rate(0.2)
            .run()
            .unwrap();
        assert!(r.latency.ejected_packets > 50);
        assert!(r.latency.mean_latency > 4.0, "{}", r.latency.mean_latency);
        assert!(r.latency.throughput > 0.1);
        assert_eq!(r.nodes, 16);
        assert_eq!(r.cycles, 400);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick().injection_rate(0.3).run().unwrap();
        let b = quick().injection_rate(0.3).run().unwrap();
        assert_eq!(a, b);
        let c = quick().injection_rate(0.3).seed(4).run().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sweep_identical_across_thread_counts() {
        // The engine guarantee: `FOOTPRINT_THREADS=1` (sequential,
        // `sweep_on(.., 1)`) and any wider pool — including the default
        // `sweep()` pool — produce bit-identical curves.
        let rates = [0.05, 0.15, 0.25];
        let sequential = quick().sweep_on(&rates, None, 1).unwrap();
        let pooled = quick().sweep_on(&rates, None, 4).unwrap();
        let default_pool = quick().sweep(&rates, None).unwrap();
        assert_eq!(sequential, pooled);
        assert_eq!(sequential, default_pool);
    }

    #[test]
    fn sweep_points_use_distinct_derived_seeds() {
        // No accidental seed reuse across the jobs of one sweep: every
        // rate index maps to its own seed, none of which is the base.
        let base = quick();
        let seeds: Vec<u64> = (0..8)
            .map(|i| crate::exec::derive_seed(3, i as u64))
            .collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert!(seeds.iter().all(|&s| s != 3));
        // And sweep_point() is the exact builder sweep() runs for a
        // given index: same config, derived seed, requested rate.
        let p = base.sweep_point(2, 0.25);
        assert_eq!(p.rate(), 0.25);
        assert_eq!(p.seed, crate::exec::derive_seed(3, 2));
    }

    #[test]
    fn sweep_builds_monotonic_curve() {
        let curve = quick()
            .routing(RoutingSpec::Dor)
            .sweep(&[0.05, 0.2], None)
            .unwrap();
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points[0].latency <= curve.points[1].latency * 1.5);
        assert!(curve.points[1].accepted > curve.points[0].accepted);
    }

    #[test]
    fn watched_run_matches_plain_run() {
        // The watchdog and probe only observe: a watched run that never
        // trips reports bit-identically to the plain run.
        let plain = quick().injection_rate(0.2).run().unwrap();
        let watched = quick()
            .injection_rate(0.2)
            .run_watched(&mut footprint_sim::NullProbe, 10_000)
            .unwrap();
        assert_eq!(plain, watched);
    }

    #[test]
    fn watched_run_propagates_config_errors() {
        let err = quick()
            .vcs(0)
            .run_watched(&mut footprint_sim::NullProbe, 100)
            .unwrap_err();
        assert!(matches!(err, RunError::Config(ConfigError::NumVcs(0))));
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    fn sweep_observed_matches_sweep_and_returns_probes() {
        let rates = [0.05, 0.15, 0.25];
        let plain = quick().sweep(&rates, None).unwrap();
        let (curve, probes) = quick()
            .sweep_observed(&rates, None, |_, _| {
                footprint_stats::TimelineProbe::new(50)
            })
            .unwrap();
        assert_eq!(plain, curve);
        assert_eq!(probes.len(), rates.len());
        // Every point's probe saw its measurement window (400 cycles at
        // stride 50, sampled from the warmup boundary onward).
        assert!(probes.iter().all(|p| !p.mesh_samples().is_empty()));
    }

    #[test]
    fn latency_population_excludes_warmup_born_packets() {
        let r = quick().injection_rate(0.2).run().unwrap();
        assert!(r.latency.measured_packets > 0);
        // Warmup-born packets drain into the window: they are counted as
        // ejections (throughput) but not in the latency population.
        assert!(r.latency.measured_packets <= r.latency.ejected_packets);
    }

    #[test]
    fn invalid_config_is_reported() {
        let err = quick().vcs(0).run().unwrap_err();
        assert!(matches!(err, ConfigError::NumVcs(0)));
        let err = quick().vcs(1).routing(RoutingSpec::Dbar).run().unwrap_err();
        assert!(matches!(err, ConfigError::TooFewVcsForRouting { .. }));
    }

    #[test]
    fn longer_links_increase_latency() {
        let short = quick().injection_rate(0.1).run().unwrap();
        let long = quick().injection_rate(0.1).link_latency(4).run().unwrap();
        assert!(
            long.latency.mean_latency > short.latency.mean_latency + 3.0,
            "short {} vs long {}",
            short.latency.mean_latency,
            long.latency.mean_latency
        );
    }

    #[test]
    fn drain_improves_delivery_ratio() {
        let no_drain = quick().injection_rate(0.2).run().unwrap();
        let with_drain = quick().injection_rate(0.2).drain(300).run().unwrap();
        assert!(with_drain.delivery_ratio() >= no_drain.delivery_ratio());
        assert!(with_drain.delivery_ratio() > 0.97);
    }
}
