//! Parallel execution of independent simulation jobs.
//!
//! Every paper experiment is a set of *independent* simulations —
//! (routing algorithm × traffic pattern × offered rate × seed) — each of
//! which owns its `Network`, workload and RNG. That makes them
//! embarrassingly parallel: this module fans them out over a scoped
//! worker pool (`std::thread::scope`, no extra dependencies) while
//! keeping results **bit-identical regardless of thread count or
//! completion order**:
//!
//! * jobs are pulled from a shared queue by index, but results are
//!   written back to their submission slot, so collection order always
//!   equals submission order;
//! * nothing about a job's inputs depends on which worker runs it — the
//!   per-job seed is derived up front with [`derive_seed`] from the
//!   experiment's base seed and the job's index.
//!
//! The pool width defaults to the machine's available parallelism and
//! can be overridden with the `FOOTPRINT_THREADS` environment variable
//! (`FOOTPRINT_THREADS=1` forces fully sequential in-thread execution,
//! which is also the fallback wherever a pool would be pointless —
//! single-job sets, single-core machines).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-pool width: the `FOOTPRINT_THREADS` environment variable when
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn num_threads() -> usize {
    if let Ok(s) = std::env::var("FOOTPRINT_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the seed for job `index` of an experiment seeded with `base`.
///
/// Uses the splitmix64 finalizer over `base` and `index` so that
/// * the same `(base, index)` always yields the same seed (results are
///   reproducible and independent of thread count), and
/// * different indices — and different bases — yield statistically
///   unrelated seeds (no accidental stream sharing between the points
///   of a sweep).
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A boxed job: runs once on some worker, produces a `T`.
type Job<'scope, T> = Box<dyn FnOnce() -> T + Send + 'scope>;

/// How one quarantined job ended: with a value, or with a captured panic.
///
/// Produced by [`JobSet::run_quarantined`]/[`JobSet::run_quarantined_on`],
/// where a panicking job is contained to its own slot instead of tearing
/// down the whole pool — one diverging simulation point must not discard
/// the completed work of its siblings (which may already be journaled to a
/// sweep checkpoint).
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job returned normally.
    Completed(T),
    /// The job panicked; the payload (downcast to a string where possible)
    /// is captured for the caller's report.
    Panicked(String),
}

impl<T> JobOutcome<T> {
    /// The completed value, or `None` if the job panicked.
    pub fn completed(self) -> Option<T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            JobOutcome::Panicked(_) => None,
        }
    }
}

/// Renders a `catch_unwind` payload as the human-readable panic message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// An ordered set of independent jobs to run on the worker pool.
///
/// Results come back in submission order, whatever the completion
/// order was:
///
/// ```
/// use footprint_core::exec::JobSet;
///
/// let mut jobs = JobSet::new();
/// for i in 0..16u64 {
///     jobs.push(move || i * i);
/// }
/// assert_eq!(jobs.run_on(4), (0..16u64).map(|i| i * i).collect::<Vec<_>>());
/// ```
#[derive(Default)]
pub struct JobSet<'scope, T> {
    jobs: Vec<Job<'scope, T>>,
}

impl<'scope, T: Send + 'scope> JobSet<'scope, T> {
    /// An empty job set.
    #[must_use]
    pub fn new() -> Self {
        JobSet { jobs: Vec::new() }
    }

    /// Appends a job. Its result slot is this submission position.
    pub fn push(&mut self, job: impl FnOnce() -> T + Send + 'scope) {
        self.jobs.push(Box::new(job));
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs all jobs on the default pool ([`num_threads`] workers) and
    /// returns their results in submission order.
    pub fn run(self) -> Vec<T> {
        let threads = num_threads();
        self.run_on(threads)
    }

    /// Runs all jobs on exactly `threads` workers (capped at the job
    /// count; `threads <= 1` runs inline on the calling thread) and
    /// returns their results in submission order.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any panicking job once the pool has
    /// joined.
    pub fn run_on(self, threads: usize) -> Vec<T> {
        run_parallel(self.jobs, threads)
    }

    /// Runs all jobs on the default pool with per-job panic isolation:
    /// a panicking job yields [`JobOutcome::Panicked`] in its slot while
    /// every other job still runs to completion.
    pub fn run_quarantined(self) -> Vec<JobOutcome<T>> {
        let threads = num_threads();
        self.run_quarantined_on(threads)
    }

    /// [`JobSet::run_quarantined`] on exactly `threads` workers.
    ///
    /// Each job runs under `catch_unwind`; the panic payload is captured
    /// into the job's result slot instead of unwinding through the pool.
    /// Results stay in submission order, so callers can attribute a
    /// panic to the job that raised it.
    pub fn run_quarantined_on(self, threads: usize) -> Vec<JobOutcome<T>> {
        let jobs: Vec<Job<'scope, JobOutcome<T>>> = self
            .jobs
            .into_iter()
            .map(|job| -> Job<'scope, JobOutcome<T>> {
                Box::new(move || {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
                        Ok(v) => JobOutcome::Completed(v),
                        Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
                    }
                })
            })
            .collect();
        run_parallel(jobs, threads)
    }
}

/// Runs `jobs` on `threads` scoped workers, returning results in job
/// order. The backing primitive behind [`JobSet::run_on`].
///
/// Jobs are pre-partitioned into contiguous chunks and workers claim
/// whole chunks from one shared counter: each claim costs one atomic
/// increment plus one uncontended lock, amortized over the batch.
/// Every worker accumulates `(start_index, results)` runs into its own
/// local buffer and the caller splices them back by index after the
/// join — there is no shared result array for workers to false-share
/// on while jobs complete.
///
/// Chunk sizes follow guided self-scheduling: each successive chunk takes
/// `remaining / (2 × workers)` jobs (at least one), so early chunks are
/// large enough to amortize claim overhead while the tail degenerates to
/// single jobs that any idle worker can steal. The previous fixed
/// `jobs / (4 × workers)` partition handed every worker equally sized
/// chunks up front; with the monotonically rising per-point cost of a
/// latency-throughput sweep (points near saturation simulate far more
/// traffic), whichever worker drew the last chunk ran all the expensive
/// points alone and the others idled — two threads measured barely
/// faster than one on exactly the sweeps parallelism is for.
fn run_parallel<'scope, T: Send>(jobs: Vec<Job<'scope, T>>, threads: usize) -> Vec<T> {
    /// A claimable chunk: `(start index, contiguous run of jobs)`, taken
    /// whole by the first worker to lock it.
    type Chunk<'scope, T> = Mutex<Option<(usize, Vec<Job<'scope, T>>)>>;
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let workers = threads.min(n);
    let mut chunks: Vec<Chunk<'scope, T>> = Vec::new();
    let mut jobs = jobs.into_iter();
    let mut start = 0;
    while start < n {
        let chunk_len = (n - start).div_ceil(workers * 2).max(1);
        let batch: Vec<Job<'scope, T>> = jobs.by_ref().take(chunk_len).collect();
        let len = batch.len();
        chunks.push(Mutex::new(Some((start, batch))));
        start += len;
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks.len() {
                            break;
                        }
                        let (first, batch) = chunks[c]
                            .lock()
                            .expect("chunk slot poisoned")
                            .take()
                            .expect("chunk claimed twice");
                        let out: Vec<T> = batch.into_iter().map(|job| job()).collect();
                        local.push((first, out));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (first, out) in local {
                for (k, v) in out.into_iter().enumerate() {
                    results[first + k] = Some(v);
                }
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every chunk ran to completion"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        for threads in [1, 2, 3, 8, 33] {
            let mut jobs = JobSet::new();
            for i in 0..32u64 {
                jobs.push(move || {
                    // Stagger completion so later jobs often finish first.
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i * 10
                });
            }
            let out = jobs.run_on(threads);
            assert_eq!(out, (0..32u64).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_job_sets() {
        let jobs: JobSet<'_, u32> = JobSet::new();
        assert!(jobs.is_empty());
        assert_eq!(jobs.run_on(8), Vec::<u32>::new());
        let mut one = JobSet::new();
        one.push(|| 7);
        assert_eq!(one.len(), 1);
        assert_eq!(one.run_on(8), vec![7]);
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let inputs = [2u64, 3, 5, 7];
        let mut jobs = JobSet::new();
        for x in &inputs {
            jobs.push(move || x * x);
        }
        assert_eq!(jobs.run_on(2), vec![4, 9, 25, 49]);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let base = 0x0F00;
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(base, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed collision across jobs");
        // Stable across calls.
        assert_eq!(derive_seed(base, 5), seeds[5]);
        // Different bases give different streams.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        // And a derived seed never trivially equals its base.
        assert!(seeds.iter().all(|&s| s != base));
    }

    #[test]
    fn quarantined_panic_spares_the_other_jobs() {
        for threads in [1, 4] {
            let mut jobs = JobSet::new();
            jobs.push(|| 1u32);
            jobs.push(|| panic!("boom at point 1"));
            jobs.push(|| 3u32);
            let outcomes = jobs.run_quarantined_on(threads);
            assert!(matches!(outcomes[0], JobOutcome::Completed(1)));
            match &outcomes[1] {
                JobOutcome::Panicked(msg) => assert!(msg.contains("boom at point 1")),
                other => panic!("expected quarantined panic, got {other:?}"),
            }
            assert!(matches!(outcomes[2], JobOutcome::Completed(3)));
        }
    }

    /// Spins for roughly `units` of work and returns a checksum the
    /// optimizer cannot discard.
    fn burn(units: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..units * 20_000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    /// Regression for the flat sweep scaling: with the old fixed
    /// partition, the worker that drew the final chunk ran all the
    /// expensive tail jobs alone, so two threads were no faster than one.
    /// Guided chunks must keep a 2-thread run of a cost-ramped ≥8-job set
    /// at least as fast as the sequential run (small tolerance for pool
    /// setup noise). Skipped on single-core machines, where there is no
    /// parallelism to regress.
    #[test]
    fn two_threads_never_slower_than_one_on_ramped_jobs() {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            eprintln!("skipping: single-core machine");
            return;
        }
        let make = || {
            let mut jobs = JobSet::new();
            for i in 1..=10u64 {
                // Cost ramps like a sweep approaching saturation.
                jobs.push(move || burn(i * i));
            }
            jobs
        };
        let time = |threads: usize| {
            // Best of two, so a one-off scheduling hiccup cannot fail CI.
            (0..2)
                .map(|_| {
                    let t = std::time::Instant::now();
                    let out = make().run_on(threads);
                    assert_eq!(out.len(), 10);
                    t.elapsed()
                })
                .min()
                .unwrap()
        };
        let seq = time(1);
        let par = time(2);
        assert!(
            par <= seq + seq / 4,
            "2 threads ({par:?}) slower than 1 ({seq:?})"
        );
    }

    #[test]
    fn panic_in_a_job_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut jobs = JobSet::new();
            jobs.push(|| 1u32);
            jobs.push(|| panic!("boom"));
            jobs.run_on(2)
        });
        assert!(result.is_err());
    }
}
