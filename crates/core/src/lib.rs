//! High-level public API of the Footprint NoC reproduction.
//!
//! This crate ties the substrates together behind one builder:
//!
//! * [`SimulationBuilder`] — configure topology, routing, traffic, load and
//!   measurement phases; run one experiment or sweep a latency-throughput
//!   curve.
//! * [`TrafficSpec`] — the paper's workloads by name (synthetic patterns,
//!   the Table 3 hotspot workload, PARSEC-like pairs, the Figure 2
//!   permutation).
//! * [`RunReport`] — per-class latency/throughput plus the §4.3 blocking
//!   purity metrics.
//!
//! * [`exec`] — the parallel experiment engine: fan independent runs
//!   out over a scoped worker pool ([`exec::JobSet`]) with
//!   deterministic per-job seeds, so sweeps use every core while
//!   staying bit-identical to sequential execution.
//!
//! * [`RunOptions`] / [`SweepOptions`] — the canonical execution options:
//!   one struct carries the probe, the stall watchdog and the fault plan,
//!   consumed by [`SimulationBuilder::run_with`] /
//!   [`SimulationBuilder::sweep_with`]. The legacy entry points
//!   (`run`, `run_probed`, `run_watched`, `sweep`, `sweep_on`) are thin
//!   shims over them, and every failure routes through [`RunError`].
//!
//! * [`Scheduler`] — which cycle loop the network runs: the active-set
//!   scheduler (default) walks only components with pending work and is
//!   bit-identical to the dense reference loop, selectable per run via
//!   [`RunOptions::scheduler`] / [`SweepOptions::scheduler`].
//!
//! * Observability — attach any [`Probe`] subscriber to a run or to every
//!   point of a sweep ([`SimulationBuilder::run_probed`],
//!   [`SimulationBuilder::sweep_observed`]), and guard long runs with the
//!   forward-progress watchdog ([`SimulationBuilder::run_watched`], which
//!   returns a [`StallDiagnostic`] bundle instead of hanging).
//!
//! * Dynamic workloads — modulate any traffic spec with on/off bursts,
//!   rate ramps or piecewise schedules ([`SimulationBuilder::modulation`],
//!   [`ModulationSpec`]), or share the mesh between named tenants with
//!   distinct patterns, rates and schedules
//!   ([`SimulationBuilder::tenants`], [`TenantSpec`]); per-tenant SLO
//!   summaries (p50/p99 latency, windowed offered/delivered) come back in
//!   [`RunReport::tenants`].
//!
//! * Fault injection — run any experiment under a deterministic
//!   [`FaultPlan`] (link/router failures with optional repair times) via
//!   [`RunOptions::faults`]; per-class delivery/drop accounting and the
//!   observed unreachable pairs come back in [`RunReport::faults`].
//!
//! Re-exported: [`RoutingSpec`] (the seven algorithms of Table 2),
//! [`PacketSize`], [`App`].
//!
//! # Example
//!
//! ```
//! use footprint_core::{SimulationBuilder, RoutingSpec, TrafficSpec};
//!
//! // Compare Footprint against DBAR on transpose traffic (tiny run).
//! let mut results = Vec::new();
//! for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
//!     let report = SimulationBuilder::mesh(4)
//!         .vcs(4)
//!         .routing(spec)
//!         .traffic(TrafficSpec::Transpose)
//!         .injection_rate(0.15)
//!         .warmup(200)
//!         .measurement(400)
//!         .run()?;
//!     results.push((spec.name(), report.latency.throughput));
//! }
//! assert_eq!(results.len(), 2);
//! # Ok::<(), footprint_core::RunError>(())
//! ```

#![warn(missing_docs)]

mod builder;
pub mod exec;
pub mod journal;
mod report;
mod snapcache;
mod traffic_spec;

pub use builder::{RunError, RunOptions, SimulationBuilder, SweepOptions};
pub use exec::{JobOutcome, JobSet};
pub use journal::SweepJournal;
pub use report::{ClassSummary, RunReport};
pub use traffic_spec::{TenantSpec, TrafficSpec};

pub use footprint_routing::RoutingSpec;
pub use footprint_sim::{
    ConfigError, EventTrace, NullProbe, Probe, Scheduler, Sentinel, SentinelReport,
    SentinelViolation, SimConfig, StallDiagnostic, StallWatchdog, UnreachablePolicy,
};
pub use footprint_stats::{
    FaultStats, PartitionReport, RecoveryStats, SweepProgress, TenantProbe, TenantSummary,
    WindowCounts,
};
pub use footprint_topology::{FaultEvent, FaultKind, FaultPlan, FaultTarget};
pub use footprint_traffic::{App, DurationDist, ModulationSpec, Modulator, PacketSize};
