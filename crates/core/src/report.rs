//! Results of a measured simulation run.

use core::fmt;
use footprint_sim::Metrics;
use footprint_stats::{FaultStats, PartitionReport, RecoveryStats, TenantSummary};

/// Summary for one traffic class over the measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassSummary {
    /// Packets generated in the window.
    pub generated_packets: u64,
    /// Packets ejected in the window.
    pub ejected_packets: u64,
    /// Flits ejected in the window.
    pub ejected_flits: u64,
    /// Ejected packets born inside the measurement window — the latency
    /// population (warmup-born packets draining into the window count in
    /// `ejected_packets` but not here).
    pub measured_packets: u64,
    /// Mean end-to-end packet latency (cycles).
    pub mean_latency: f64,
    /// Maximum packet latency (cycles).
    pub max_latency: u64,
    /// Accepted throughput, flits/node/cycle.
    pub throughput: f64,
}

impl ClassSummary {
    /// The mean packet latency in cycles (alias of `mean_latency` for a
    /// fluent reading: `report.latency.mean()`).
    pub fn mean(&self) -> f64 {
        self.mean_latency
    }
}

/// The outcome of one measured run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Endpoints in the network.
    pub nodes: usize,
    /// Offered load the run was configured with (flits/node/cycle).
    pub offered: f64,
    /// Summary over all classes.
    pub latency: ClassSummary,
    /// Per-class summaries (index = class id).
    pub classes: Vec<ClassSummary>,
    /// VC-allocation failures in the window.
    pub va_blocks: u64,
    /// Mean blocking purity (§4.3).
    pub mean_purity: f64,
    /// Degree of HoL blocking (§4.3).
    pub hol_degree: f64,
    /// Fault accounting for the run. All-zero (`FaultStats::default()`)
    /// when the run had no fault plan or the plan had no effect.
    pub faults: FaultStats,
    /// Per-tenant SLO summaries, in tenant declaration order. Empty unless
    /// the run was configured with `SimulationBuilder::tenants`.
    pub tenants: Vec<TenantSummary>,
    /// The fabric the run executed on, in `TopologySpec` display form
    /// (`"mesh:8x8"`, `"torus:8x8"`, `"ring:16"`). Empty for reports built
    /// directly from metrics without a builder.
    pub topology: String,
    /// Connectivity history under the fault plan: one epoch per distinct
    /// component structure. Empty (`PartitionReport::default()`) for a
    /// run without a fault plan.
    pub partitions: PartitionReport,
    /// Time-to-recover and windowed availability under the fault plan.
    /// Empty (`RecoveryStats::default()`) for a run without a fault plan.
    pub recovery: RecoveryStats,
}

impl RunReport {
    /// Builds a report from the simulator's metrics.
    pub fn from_metrics(metrics: &Metrics, nodes: usize, offered: f64) -> Self {
        let cycles = metrics.cycles;
        let summarize = |s: footprint_sim::ClassStats| ClassSummary {
            generated_packets: s.generated_packets,
            ejected_packets: s.ejected_packets,
            ejected_flits: s.ejected_flits,
            measured_packets: s.measured_packets,
            mean_latency: s.mean_latency(),
            max_latency: s.latency_max,
            throughput: if cycles == 0 {
                0.0
            } else {
                s.ejected_flits as f64 / (cycles as f64 * nodes as f64)
            },
        };
        // Collect every class that appeared (sparse classes padded with
        // zeros so the vector is indexable by class id).
        let mut classes = Vec::new();
        for c in 0..=u8::MAX {
            let s = metrics.class(c);
            if s.generated_packets != 0 || s.ejected_packets != 0 {
                while classes.len() < c as usize {
                    classes.push(ClassSummary::default());
                }
                classes.push(summarize(s));
            }
        }
        RunReport {
            cycles,
            nodes,
            offered,
            latency: summarize(metrics.total()),
            classes,
            va_blocks: metrics.va_blocks,
            mean_purity: metrics.mean_purity(),
            hol_degree: metrics.hol_degree(),
            faults: FaultStats::default(),
            tenants: Vec::new(),
            topology: String::new(),
            partitions: PartitionReport::default(),
            recovery: RecoveryStats::default(),
        }
    }

    /// The summary for the tenant named `name`, if the run was
    /// multi-tenant and such a tenant existed.
    pub fn tenant(&self, name: &str) -> Option<&TenantSummary> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Summary for class `c` (zeros if the class never appeared).
    pub fn class(&self, c: u8) -> ClassSummary {
        self.classes.get(c as usize).copied().unwrap_or_default()
    }

    /// Delivery ratio: ejected / generated packets over the window (can
    /// exceed 1.0 slightly when warmup packets drain into the window).
    pub fn delivery_ratio(&self) -> f64 {
        if self.latency.generated_packets == 0 {
            0.0
        } else {
            self.latency.ejected_packets as f64 / self.latency.generated_packets as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offered {:.3} → accepted {:.3} flits/node/cycle, latency {:.1} (max {}), {} blocks",
            self.offered,
            self.latency.throughput,
            self.latency.mean_latency,
            self.latency.max_latency,
            self.va_blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_sim::{EjectedPacket, PacketId};
    use footprint_topology::NodeId;

    fn metrics_with(packets: &[(u8, u64, u64)]) -> Metrics {
        let mut m = Metrics::new();
        m.cycles = 100;
        for &(class, birth, eject) in packets {
            m.record_generated(class, 1);
            m.record_ejected(&EjectedPacket {
                id: PacketId(0),
                src: NodeId(0),
                dest: NodeId(1),
                birth,
                ejected: eject,
                size: 1,
                class,
            });
        }
        m
    }

    #[test]
    fn report_summarizes_totals_and_classes() {
        let m = metrics_with(&[(0, 0, 10), (0, 0, 30), (1, 0, 50)]);
        let r = RunReport::from_metrics(&m, 4, 0.25);
        assert_eq!(r.latency.ejected_packets, 3);
        assert_eq!(r.latency.measured_packets, 3);
        assert!((r.latency.mean_latency - 30.0).abs() < 1e-9);
        assert!((r.class(0).mean_latency - 20.0).abs() < 1e-9);
        assert!((r.class(1).mean_latency - 50.0).abs() < 1e-9);
        assert_eq!(r.class(5), ClassSummary::default());
        // throughput: 3 flits / (100 × 4).
        assert!((r.latency.throughput - 0.0075).abs() < 1e-12);
        assert!((r.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let m = metrics_with(&[(0, 0, 10)]);
        let r = RunReport::from_metrics(&m, 4, 0.25);
        let s = r.to_string();
        assert!(s.contains("offered 0.250"));
        assert!(s.contains("latency 10.0"));
    }

    #[test]
    fn empty_metrics_give_zero_report() {
        let m = Metrics::new();
        let r = RunReport::from_metrics(&m, 4, 0.0);
        assert_eq!(r.latency.ejected_packets, 0);
        assert_eq!(r.delivery_ratio(), 0.0);
        assert!(r.classes.is_empty());
    }
}
